"""A stdlib HTTP endpoint for the live observability surfaces.

:class:`MetricsServer` wraps ``http.server.ThreadingHTTPServer`` around
three caller-supplied thunks — ``metrics()`` (a
:meth:`~repro.obs.metrics.MetricsRegistry.export`-format dict),
``health()`` and ``overview()`` — and serves:

- ``GET /metrics`` — Prometheus-style text lines (the export rehydrated
  through :func:`~repro.obs.metrics.registry_from_export` so one code
  path owns the text format);
- ``GET /metrics.json`` — the raw export dict as JSON;
- ``GET /health`` — the health summary as JSON, status 200 while any
  shard answers and 503 when the fleet verdict is ``down``;
- ``GET /overview`` — the per-shard dashboard rows as JSON (what
  ``repro obs top`` renders).

``port=0`` binds an ephemeral port (the resolved one is on
:attr:`MetricsServer.port`), which is how tests and the obs-smoke CI run
endpoints without colliding.  The server thread is a daemon and every
request thread is too — a forgotten endpoint never blocks interpreter
exit.  A thunk that raises answers 500 with the exception text instead
of killing the serving thread.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import registry_from_export

__all__ = ["MetricsServer"]


def _jsonable(obj):
    """JSON with a numpy fallback: scalar types from exports become
    plain Python numbers instead of raising ``TypeError``."""
    return json.dumps(
        obj,
        indent=2,
        sort_keys=True,
        default=lambda o: o.item() if hasattr(o, "item") else str(o),
    )


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    # The default handler logs every request to stderr; a scrape loop
    # would drown real output.
    def log_message(self, *args) -> None:  # noqa: D102
        pass

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        owner: "MetricsServer" = self.server.owner  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                text = registry_from_export(owner.metrics()).export_text()
                self._reply(200, text + "\n", "text/plain; charset=utf-8")
            elif path == "/metrics.json":
                self._reply(200, _jsonable(owner.metrics()), "application/json")
            elif path == "/health":
                summary = owner.health()
                status = 503 if summary.get("overall") == "down" else 200
                self._reply(status, _jsonable(summary), "application/json")
            elif path == "/overview":
                self._reply(200, _jsonable(owner.overview()), "application/json")
            else:
                self._reply(404, f"no such path {path!r}\n", "text/plain")
        except Exception as exc:  # noqa: BLE001 - must answer, not die
            self._reply(500, f"{type(exc).__name__}: {exc}\n", "text/plain")

    def _reply(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class MetricsServer:
    """Serve ``/metrics`` (+ json/health/overview) off caller thunks."""

    def __init__(
        self,
        metrics,
        health=None,
        overview=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.metrics = metrics
        self.health = health or (lambda: {"overall": "unknown"})
        self.overview = overview or (lambda: {})
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="obs-metrics-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
