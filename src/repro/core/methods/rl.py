"""RL: reinforcement-learning training-set search (Section V-B2).

The method overlays an ``eta^d`` grid on the partition's original space and
searches for the subset of cell-centre points whose key CDF best
approximates ``D``'s.  The search is the paper's MDP:

- *state*: a binary occupancy vector over the grid cells, ordered by the
  cells' ranks in the base index's mapped space; the initial state is all
  ones (a uniform ``D_S``),
- *action*: toggle one cell (add/remove its point), applied with
  probability ζ = 0.8,
- *reward*: the reduction in ``dist(D_S, D)`` (Definition 2),
- *discount*: γ = 0.9; the DQN trains every five steps on recent
  transitions (``alpha`` records).

The best state seen is returned when the distance stops improving or the
step budget ``e`` runs out.  Cell centres are synthetic points, so RL needs
the base index's ``map()`` (inapplicable to LISA, per the paper).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.methods.base import BuildMethod, MethodResult
from repro.core.methods.model_reuse import MethodFailure
from repro.indices.base import MapFn
from repro.ml.dqn import DQNAgent, DQNConfig, Transition
from repro.spatial.cdf import ks_distance

__all__ = ["ReinforcementLearningMethod"]


class ReinforcementLearningMethod(BuildMethod):
    """RL: DQN-guided search for a grid-cell training set."""

    name = "RL"
    requires_map_fn = True

    def __init__(
        self,
        eta: int = 8,
        steps: int = 300,
        alpha: int = 64,
        zeta: float = 0.8,
        gamma: float = 0.9,
        patience: int = 60,
        seed: int = 0,
    ) -> None:
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if not 0.0 < zeta <= 1.0:
            raise ValueError(f"zeta must lie in (0, 1], got {zeta}")
        self.eta = eta
        self.steps = steps
        self.alpha = alpha
        self.zeta = zeta
        self.gamma = gamma
        self.patience = patience
        self.seed = seed

    def _cell_centers(self, sorted_points: np.ndarray) -> np.ndarray:
        """Centres of the eta^d grid over the partition's bounding box."""
        d = sorted_points.shape[1]
        lo = sorted_points.min(axis=0)
        hi = sorted_points.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        axes = [lo[dim] + span[dim] * (np.arange(self.eta) + 0.5) / self.eta for dim in range(d)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.column_stack([m.ravel() for m in mesh])

    def compute_set(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None,
    ) -> MethodResult:
        if map_fn is None:
            raise ValueError("RL needs the base index's map() for cell centres")
        started = time.perf_counter()
        centers = self._cell_centers(sorted_points)
        center_keys = np.asarray(map_fn(centers), dtype=np.float64)
        # Order cells by their rank in the mapped space (MDP state layout).
        order = np.argsort(center_keys, kind="stable")
        center_keys = center_keys[order]
        n_cells = len(center_keys)

        state = np.ones(n_cells)
        dist = ks_distance(center_keys, sorted_keys, assume_sorted=True)
        best_state = state.copy()
        best_dist = dist

        agent = DQNAgent(
            state_size=n_cells,
            n_actions=n_cells,
            config=DQNConfig(gamma=self.gamma, batch_size=self.alpha),
            seed=self.seed,
        )
        rng = np.random.default_rng(self.seed)
        stale = 0
        for _step in range(self.steps):
            action = agent.select_action(state)
            next_state = state.copy()
            if rng.random() < self.zeta:
                next_state[action] = 1.0 - next_state[action]
            active = next_state > 0.5
            if not active.any():
                next_state[action] = 1.0
                active = next_state > 0.5
            next_dist = ks_distance(
                center_keys[active], sorted_keys, assume_sorted=True
            )
            reward = dist - next_dist
            agent.observe(Transition(state, action, reward, next_state))
            state, dist = next_state, next_dist
            if dist < best_dist - 1e-12:
                best_dist = dist
                best_state = state.copy()
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break

        active = best_state > 0.5
        keys = center_keys[active]
        if len(keys) < 2:
            raise MethodFailure("RL: search collapsed to fewer than 2 cells")
        ranks = self._self_ranks(len(keys))
        return MethodResult(keys, ranks, time.perf_counter() - started)
