"""Cluster assembly: build or reopen a full sharded serving tier.

``build_cluster`` is the from-scratch path: compute the shard map over
the build data, write the durable layout, partition the points, spawn one
worker per shard (each builds its own index and writes its base
snapshot + WAL under its own directory), and hand back a started
:class:`~repro.shard.router.ShardRouter`.

``open_cluster`` is the restart path: reload ``shard_map.json`` and
``cluster.json``, spawn every worker with ``recover=True`` so each shard
comes back from its latest loadable snapshot plus WAL-tail replay —
exactly the single-server recovery contract, one directory per shard.

Durable layout under the cluster directory::

    shard_map.json          boundaries + curve + bits + bounds
    cluster.json            index kind, method, config, serve knobs
    shard-000/              per-shard: build_points.npy, gen-NNNNNN.npz
    shard-001/              snapshots, wal-NNNNNN.log files
    ...
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.shard.handle import ShardHandle
from repro.shard.router import RouterConfig, ShardRouter
from repro.shard.shardmap import ShardMap
from repro.shard.worker import BUILD_POINTS_FILE, WorkerSpec, capture_env

__all__ = ["build_cluster", "open_cluster"]

_CLUSTER_FILE = "cluster.json"
_MAP_FILE = "shard_map.json"
_CLUSTER_VERSION = 1


def _shard_dir(directory: Path, shard_id: int) -> Path:
    return directory / f"shard-{shard_id:03d}"


def _spawn_all(specs: "list[WorkerSpec]", start_timeout: float) -> "list[ShardHandle]":
    """Spawn every worker, closing the ones already up if any fails."""
    handles: list[ShardHandle] = []
    try:
        for spec in specs:
            handles.append(ShardHandle(spec, start_timeout=start_timeout))
    except BaseException:
        for handle in handles:
            handle.close()
        raise
    return handles


def build_cluster(
    points: np.ndarray,
    directory: "str | Path",
    n_shards: int,
    index: str = "ZM",
    method: str = "SP",
    curve: str = "zorder",
    bits: int = 16,
    elsi: "dict | None" = None,
    serve: "dict | None" = None,
    wal: bool = True,
    env: "dict | None" = None,
    router_config: RouterConfig | None = None,
    start_timeout: float = 300.0,
) -> ShardRouter:
    """Partition, persist, spawn, and front ``points`` with a router.

    ``elsi`` / ``serve`` are keyword dicts for each worker's ``ELSIConfig``
    and ``ServeConfig``; ``env`` overrides the captured
    ``REPRO_FAULTS``/``REPRO_DTYPE``/``REPRO_PARALLELISM`` propagation.
    """
    pts = np.asarray(points, dtype=np.float64)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    shard_map = ShardMap.from_points(pts, n_shards, curve=curve, bits=bits)
    shard_map.save(directory / _MAP_FILE)
    meta = {
        "version": _CLUSTER_VERSION,
        "index": index,
        "method": method,
        "elsi": dict(elsi or {}),
        "serve": dict(serve or {}),
        "wal": bool(wal),
        "n_shards": shard_map.n_shards,
    }
    (directory / _CLUSTER_FILE).write_text(
        json.dumps(meta, indent=2, sort_keys=True)
    )
    owners = shard_map.shard_of_points(pts)
    worker_env = capture_env(env)
    specs = []
    for sid in range(shard_map.n_shards):
        shard_dir = _shard_dir(directory, sid)
        shard_dir.mkdir(parents=True, exist_ok=True)
        np.save(shard_dir / BUILD_POINTS_FILE, pts[owners == sid])
        specs.append(
            WorkerSpec(
                shard_id=sid,
                directory=str(shard_dir),
                index=index,
                method=method,
                elsi=dict(elsi or {}),
                serve=dict(serve or {}),
                env=worker_env,
                wal=bool(wal),
            )
        )
    handles = _spawn_all(specs, start_timeout)
    return ShardRouter(shard_map, handles, config=router_config)


def open_cluster(
    directory: "str | Path",
    env: "dict | None" = None,
    router_config: RouterConfig | None = None,
    salvage: bool = False,
    start_timeout: float = 300.0,
) -> ShardRouter:
    """Reopen a persisted cluster: every shard recovers from its own
    snapshots + WAL replay (``IndexServer.from_snapshot(..., wal=True)``)."""
    directory = Path(directory)
    shard_map = ShardMap.load(directory / _MAP_FILE)
    meta = json.loads((directory / _CLUSTER_FILE).read_text())
    if meta.get("version") != _CLUSTER_VERSION:
        raise ValueError(
            f"unsupported cluster version {meta.get('version')!r} "
            f"(this build reads version {_CLUSTER_VERSION})"
        )
    worker_env = capture_env(env)
    specs = [
        WorkerSpec(
            shard_id=sid,
            directory=str(_shard_dir(directory, sid)),
            index=meta["index"],
            method=meta["method"],
            elsi=dict(meta["elsi"]),
            serve=dict(meta["serve"]),
            env=worker_env,
            recover=True,
            wal=bool(meta["wal"]),
            salvage=salvage,
        )
        for sid in range(shard_map.n_shards)
    ]
    handles = _spawn_all(specs, start_timeout)
    return ShardRouter(shard_map, handles, config=router_config)
