"""SP and RSP: sampling-based training-set construction (Section V-A1).

SP uses *systematic* sampling over the sorted key order: one point every
``floor(1/rho)`` positions.  By the pigeonhole argument in the paper, the
rank gap between any point and its nearest sampled neighbour is at most
``floor(1/rho) - 1``, a bound no other sampling scheme (including random
sampling) can beat — which is why SP dominates RSP in Figure 7.

RSP is the random-sampling baseline from Li et al. [15], kept for that
comparison.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.methods.base import BuildMethod, MethodResult
from repro.indices.base import MapFn

__all__ = ["RandomSamplingMethod", "SystematicSamplingMethod"]


class SystematicSamplingMethod(BuildMethod):
    """SP: pick every ``floor(1/rho)``-th point of the sorted order."""

    name = "SP"
    requires_map_fn = False

    def __init__(self, rho: float = 0.01) -> None:
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must lie in (0, 1], got {rho}")
        self.rho = rho

    def compute_set(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None,
    ) -> MethodResult:
        n = len(sorted_keys)
        started = time.perf_counter()
        step = max(1, int(1.0 / self.rho))
        indices = np.arange(0, n, step)
        if indices[-1] != n - 1:
            # Always include the last point so the key range is covered.
            indices = np.append(indices, n - 1)
        keys = sorted_keys[indices]
        ranks = self._true_ranks(indices, n)
        return MethodResult(keys, ranks, time.perf_counter() - started)


class RandomSamplingMethod(BuildMethod):
    """RSP: uniform random sampling at the same expected size as SP."""

    name = "RSP"
    requires_map_fn = False

    def __init__(self, rho: float = 0.01, seed: int = 0) -> None:
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must lie in (0, 1], got {rho}")
        self.rho = rho
        self.seed = seed

    def compute_set(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None,
    ) -> MethodResult:
        n = len(sorted_keys)
        started = time.perf_counter()
        size = max(2, int(round(self.rho * n)))
        size = min(size, n)
        rng = np.random.default_rng(self.seed)
        indices = np.sort(rng.choice(n, size=size, replace=False))
        keys = sorted_keys[indices]
        ranks = self._true_ranks(indices, n)
        return MethodResult(keys, ranks, time.perf_counter() - started)
