"""Scatter-gather routing over the shard fleet.

The :class:`ShardRouter` is the client-facing face of the sharded tier:
it takes whole query batches, splits them along the shard map's key
ranges, fans the sub-batches to the owning workers concurrently, and
reassembles the answers in the caller's order.

Routing per query kind
----------------------
- **point batches** — each row goes to exactly the shard owning its
  curve code; one ``point_batch`` sub-request per involved shard.
- **window batches** — each window goes to every shard overlapping its
  corner-code interval (all shards under a Hilbert map); per-window
  results are the concatenation of the per-shard results in shard order.
  Note the row order within a window's result therefore differs from a
  single unsharded index's scan order — the *multiset* of points is
  identical (tests compare canonicalised forms).
- **kNN batches** — two-round scatter: round one asks each query's home
  shard for its k nearest; the kth distance bounds a ball, and round two
  queries only the other shards whose key range intersects the ball's
  bounding-rect interval (no such shard can hold anything closer than
  the current kth candidate).  The global answer is the top k of the
  union, ranked by distance with coordinates as the deterministic
  tie-break.

Failure handling (the PR 7 vocabulary, per shard)
-------------------------------------------------
- ``ServerOverloaded`` → exponential-backoff retry against the same
  shard, up to ``RouterConfig.max_retries``.
- dead worker (``ShardUnavailable``) → for *queries* the router respawns
  the shard (``from_snapshot(..., wal=True)`` recovery from its own
  directory) and retries — queries are idempotent; for *updates* the
  error surfaces: an acknowledged update is applied exactly once, and an
  unacknowledged one is reported, never silently retried across a crash
  boundary.
- wedged worker (``ShardTimeout``) → the handle poisons itself (the
  stale in-flight reply must never reach a later request), so the
  router treats it exactly like a death: idempotent queries respawn the
  shard (killing the wedged process) and retry; a timed-out *update*
  surfaces — its outcome is unknown, so it is never resent.
- ``ServerReadOnly`` → surfaces on single updates;
  :meth:`ShardRouter.apply_updates` instead degrades partially — healthy
  shards keep absorbing their updates, the read-only shard's rejections
  are itemised next to a fleet health summary.

Observability
-------------
Every scatter runs under a ``shard.scatter`` span carrying a fresh
``request_id``; when tracing is on, the span's trace context
(``trace_id`` / ``parent_span_id`` / ``request_id``) rides the RPC to
each worker, which answers with its own captured spans — adopted back
under the scatter span by the handle, so one batch renders as one tree
across every process it touched (retries, respawns, and failed branches
included as ``shard.retry`` / ``shard.respawn`` / ``error=...`` spans).
When tracing is off the scatter span is the shared no-op and the wire
carries ``None`` — workers skip capture entirely.

:meth:`ShardRouter.stats_snapshot` merges every worker's
``stats_snapshot()`` export and the router's own counters into one view
via :meth:`MetricsRegistry.merge` — counters sum and histogram buckets
add, so fleet-wide percentiles are computed over the union of all
samples.  With ``RouterConfig.telemetry_interval`` set (or
:meth:`ShardRouter.start_telemetry` called) a background
:class:`~repro.shard.telemetry.FleetTelemetry` poller replaces that
merge-on-demand path with a continuously refreshed fleet view that
also carries per-shard ``telemetry.scrape_age_seconds`` staleness and
``telemetry.shard_up`` markers.  The router additionally keeps an
:class:`~repro.obs.slo.SLOTracker` over end-to-end (router-side)
request latencies per kind, published as ``slo.*`` gauges in every
snapshot.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.trace import get_tracer, new_request_id, span as _span
from repro.serve.errors import ServerOverloaded, ServerReadOnly
from repro.shard.errors import ShardTimeout, ShardUnavailable
from repro.shard.handle import ShardHandle
from repro.shard.shardmap import ShardMap

__all__ = ["RouterConfig", "ShardRouter"]


@dataclass(frozen=True)
class RouterConfig:
    """Scatter-gather and failure-handling knobs.

    Attributes
    ----------
    request_timeout:
        Per-shard deadline for one sub-request.
    max_retries:
        Retry budget per sub-request (overload backoff and post-respawn
        retries both draw from it).
    retry_base_delay / retry_max_delay:
        Exponential-backoff window for ``ServerOverloaded`` retries.
    auto_respawn:
        Whether a dead shard is recovered (snapshots + WAL) and retried
        transparently for idempotent queries.  Off, queries raise
        :class:`~repro.shard.errors.ShardUnavailable` like updates do.
    slo_targets:
        Optional per-kind latency objectives for the router-side
        :class:`~repro.obs.slo.SLOTracker` — any form
        :func:`repro.obs.slo._parse_targets` accepts (``{"point": 0.05}``,
        ``{"knn": {"latency": 0.2, "quantile": 99.0}}``).  Quantile
        gauges are published for observed kinds even without targets;
        burn rates need targets.
    slo_window_seconds:
        Rolling-window length for the router's SLO quantiles and burn.
    telemetry_interval:
        Seconds between background fleet-telemetry scrapes.  ``None``
        (default) leaves the poller off — ``stats_snapshot`` then merges
        on demand; set, the router starts a
        :class:`~repro.shard.telemetry.FleetTelemetry` thread at
        construction.
    """

    request_timeout: float = 60.0
    max_retries: int = 3
    retry_base_delay: float = 0.01
    retry_max_delay: float = 0.5
    auto_respawn: bool = True
    slo_targets: "dict | None" = None
    slo_window_seconds: float = 60.0
    telemetry_interval: "float | None" = None

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_base_delay < 0 or self.retry_max_delay < self.retry_base_delay:
            raise ValueError(
                "need 0 <= retry_base_delay <= retry_max_delay, got "
                f"{self.retry_base_delay}/{self.retry_max_delay}"
            )
        if self.slo_window_seconds <= 0:
            raise ValueError(
                f"slo_window_seconds must be positive, got {self.slo_window_seconds}"
            )
        if self.telemetry_interval is not None and self.telemetry_interval <= 0:
            raise ValueError(
                f"telemetry_interval must be positive, got {self.telemetry_interval}"
            )


class ShardRouter:
    """Fan query batches out to shard workers; fold the answers back."""

    def __init__(
        self,
        shard_map: ShardMap,
        handles: "list[ShardHandle]",
        config: RouterConfig | None = None,
    ) -> None:
        if shard_map.n_shards != len(handles):
            raise ValueError(
                f"shard map has {shard_map.n_shards} shards but "
                f"{len(handles)} handles were provided"
            )
        self.shard_map = shard_map
        self.handles = list(handles)
        self.config = config or RouterConfig()
        self.registry = MetricsRegistry()
        self.slo = SLOTracker(
            SLOConfig(
                targets=self.config.slo_targets,
                window_seconds=self.config.slo_window_seconds,
            )
        )
        self._telemetry = None
        self._metrics_server = None
        self._closed = False
        # One respawn lock per shard: concurrent scatter threads that hit
        # the same dead worker must not both restart it.
        self._respawn_locks = [threading.Lock() for _ in handles]
        self._pool = ThreadPoolExecutor(
            max_workers=max(len(handles), 1), thread_name_prefix="shard-scatter"
        )
        if self.config.telemetry_interval is not None:
            self.start_telemetry()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None
        if self._telemetry is not None:
            self._telemetry.stop()
        self._pool.shutdown(wait=True)
        for handle in self.handles:
            handle.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One sub-request, with the failure vocabulary applied
    # ------------------------------------------------------------------
    def _call(
        self, shard_id: int, command: str, *payload,
        idempotent: bool, trace: "dict | None" = None,
    ):
        cfg = self.config
        handle = self.handles[shard_id]
        # Scatter runs on pool threads, which don't inherit the caller
        # thread's span stack — seed it from the explicit trace context so
        # retry/respawn spans opened here land under the scatter span.
        ambient = (
            get_tracer().ambient(
                trace.get("parent_span_id"), trace_id=trace.get("trace_id")
            )
            if trace is not None
            else nullcontext()
        )
        with ambient:
            attempt = 0
            while True:
                try:
                    return handle.request(
                        command, *payload,
                        timeout=cfg.request_timeout, trace=trace,
                    )
                except ServerOverloaded:
                    self.registry.counter(
                        "router.retries", shard=shard_id, reason="overloaded"
                    ).inc()
                    attempt += 1
                    if attempt > cfg.max_retries:
                        raise
                    with _span(
                        "shard.retry", shard=shard_id,
                        reason="overloaded", attempt=attempt,
                    ):
                        time.sleep(
                            min(
                                cfg.retry_base_delay * (2 ** (attempt - 1)),
                                cfg.retry_max_delay,
                            )
                        )
                except ShardUnavailable:
                    self.registry.counter("router.shard_deaths", shard=shard_id).inc()
                    if not (idempotent and cfg.auto_respawn):
                        raise
                    attempt += 1
                    if attempt > cfg.max_retries:
                        raise
                    with _span(
                        "shard.retry", shard=shard_id,
                        reason="unavailable", attempt=attempt,
                    ):
                        self._ensure_alive(shard_id)
                except ShardTimeout:
                    # The handle poisoned itself (alive() is now False): the
                    # wedged worker must be killed and respawned before the
                    # shard can answer again.
                    self.registry.counter(
                        "router.shard_timeouts", shard=shard_id
                    ).inc()
                    if not (idempotent and cfg.auto_respawn):
                        raise
                    attempt += 1
                    if attempt > cfg.max_retries:
                        raise
                    with _span(
                        "shard.retry", shard=shard_id,
                        reason="timeout", attempt=attempt,
                    ):
                        self._ensure_alive(shard_id)

    def _ensure_alive(self, shard_id: int) -> None:
        """Respawn a dead shard exactly once per death, however many
        scatter threads observe it."""
        handle = self.handles[shard_id]
        with self._respawn_locks[shard_id]:
            if handle.alive():
                return
            with _span("shard.respawn", shard=shard_id):
                handle.respawn()
            self.registry.counter("router.respawns", shard=shard_id).inc()

    def _scatter(
        self, calls: "dict[int, tuple]", idempotent: bool,
        trace: "dict | None" = None,
    ) -> dict:
        """Run ``{shard_id: (command, *payload)}`` concurrently; returns
        ``{shard_id: result}``.  Any failure propagates after all
        in-flight sub-requests finish."""
        if not calls:
            return {}
        if len(calls) == 1:
            ((sid, call),) = calls.items()
            return {
                sid: self._call(sid, *call, idempotent=idempotent, trace=trace)
            }
        futures = {
            sid: self._pool.submit(
                self._call, sid, *call, idempotent=idempotent, trace=trace
            )
            for sid, call in calls.items()
        }
        results, first_error = {}, None
        for sid, future in futures.items():
            try:
                results[sid] = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                first_error = first_error or exc
        if first_error is not None:
            raise first_error
        return results

    @staticmethod
    def _trace_ctx(scatter_span) -> "dict | None":
        """The cross-process trace context for one scatter: ``None`` when
        tracing is off (the span is the shared no-op — workers then skip
        capture), else the scatter span's trace/span ids plus a fresh
        ``request_id`` stamped on the span itself so ``repro obs trace
        --request`` finds the tree."""
        if scatter_span.span_id is None:
            return None
        request_id = new_request_id()
        scatter_span.set(request_id=request_id)
        return {
            "trace_id": scatter_span.trace_id,
            "parent_span_id": scatter_span.span_id,
            "request_id": request_id,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def point_queries(self, points: np.ndarray) -> np.ndarray:
        """Batch membership: each row answered by its owning shard."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        owners = self.shard_map.shard_of_points(pts)
        calls = {
            int(sid): ("point_batch", pts[owners == sid])
            for sid in np.unique(owners)
        }
        self.registry.counter("router.queries", kind="point").inc(len(pts))
        t0 = time.perf_counter()
        with _span(
            "shard.scatter", kind="point", n=len(pts), shards=len(calls)
        ) as sp:
            replies = self._scatter(
                calls, idempotent=True, trace=self._trace_ctx(sp)
            )
        out = np.zeros(len(pts), dtype=bool)
        for sid, hits in replies.items():
            out[owners == sid] = np.asarray(hits, dtype=bool)
        self.slo.record("point", time.perf_counter() - t0, count=len(pts))
        return out

    def window_queries(self, windows: "list") -> "list[np.ndarray]":
        """Batch windows: each split across its range-overlapping shards."""
        if not windows:
            return []
        per_shard: dict[int, list[int]] = {}
        for i, window in enumerate(windows):
            for sid in self.shard_map.shards_for_window(window):
                per_shard.setdefault(sid, []).append(i)
        calls = {
            sid: ("window_batch", [windows[i] for i in members])
            for sid, members in per_shard.items()
        }
        self.registry.counter("router.queries", kind="window").inc(len(windows))
        t0 = time.perf_counter()
        with _span(
            "shard.scatter", kind="window", n=len(windows), shards=len(calls)
        ) as sp:
            replies = self._scatter(
                calls, idempotent=True, trace=self._trace_ctx(sp)
            )
        self.slo.record("window", time.perf_counter() - t0, count=len(windows))
        d = self.shard_map.bounds.ndim
        parts: list[list[np.ndarray]] = [[] for _ in windows]
        for sid in sorted(replies):  # shard order => deterministic output
            for i, result in zip(per_shard[sid], replies[sid]):
                if len(result):
                    parts[i].append(np.asarray(result, dtype=np.float64))
        return [
            np.vstack(p) if p else np.empty((0, d), dtype=np.float64)
            for p in parts
        ]

    def knn_queries(self, points: np.ndarray, k: int) -> "list[np.ndarray]":
        """Batch kNN: home-shard round, then radius-pruned widening."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return []
        self.registry.counter("router.queries", kind="knn").inc(len(pts))
        owners = self.shard_map.shard_of_points(pts)
        calls = {
            int(sid): ("knn_batch", pts[owners == sid], k)
            for sid in np.unique(owners)
        }
        t0 = time.perf_counter()
        # One scatter span covers both kNN rounds: the widening round's
        # per-shard dispatches adopt under the same root, so the tree
        # shows the full two-round fan-out of each request.
        with _span(
            "shard.scatter", kind="knn", n=len(pts), k=k, shards=len(calls)
        ) as sp:
            trace = self._trace_ctx(sp)
            replies = self._scatter(calls, idempotent=True, trace=trace)
            candidates: list[list[np.ndarray]] = [[] for _ in pts]
            for sid, results in replies.items():
                for i, result in zip(np.flatnonzero(owners == sid), results):
                    candidates[i].append(np.asarray(result, dtype=np.float64))
            if self.n_shards > 1:
                # Round two: shards whose range intersects the ball of the
                # kth candidate distance (everything, when round one came up
                # short of k — the radius is unbounded then).
                per_shard: dict[int, list[int]] = {}
                for i, q in enumerate(pts):
                    radius = _kth_distance(q, candidates[i], k)
                    for sid in self.shard_map.shards_for_ball(q, radius):
                        if sid != owners[i]:
                            per_shard.setdefault(int(sid), []).append(i)
                if per_shard:
                    round2 = sum(len(v) for v in per_shard.values())
                    self.registry.counter("router.knn_round2").inc(round2)
                    sp.set(round2=round2)
                    calls = {
                        sid: ("knn_batch", pts[members], k)
                        for sid, members in per_shard.items()
                    }
                    replies = self._scatter(
                        calls, idempotent=True, trace=trace
                    )
                    for sid, results in replies.items():
                        for i, result in zip(per_shard[sid], results):
                            candidates[i].append(
                                np.asarray(result, dtype=np.float64)
                            )
        out = [
            _top_k(q, cands, k, self.shard_map.bounds.ndim)
            for q, cands in zip(pts, candidates)
        ]
        self.slo.record("knn", time.perf_counter() - t0, count=len(pts))
        return out

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> None:
        """Route one insert to its owning shard (at-most-once)."""
        self._update("insert", point)

    def delete(self, point: np.ndarray) -> bool:
        """Route one delete to its owning shard (at-most-once)."""
        return self._update("delete", point)

    def _update(self, op: str, point: np.ndarray):
        pt = np.asarray(point, dtype=np.float64)
        sid = int(self.shard_map.shard_of_points(pt[None, :])[0])
        t0 = time.perf_counter()
        with _span("shard.update", op=op, shard=sid) as sp:
            # A dead worker noticed *before* anything is sent is safe to
            # recover through — nothing is in flight, so routing the update
            # to the respawned shard cannot double-apply.  Only death
            # mid-request (outcome unknown) surfaces to the caller.
            if self.config.auto_respawn and not self.handles[sid].alive():
                self._ensure_alive(sid)
            try:
                result = self._call(
                    sid, op, pt, idempotent=False, trace=self._trace_ctx(sp)
                )
            except ServerReadOnly:
                self.registry.counter(
                    "router.read_only_rejections", shard=sid
                ).inc()
                raise
        self.registry.counter("router.updates", op=op).inc()
        self.slo.record("update", time.perf_counter() - t0)
        return result

    def apply_updates(self, ops: "list[tuple[str, np.ndarray]]") -> dict:
        """Apply ``(op, point)`` updates, degrading partially.

        Healthy shards absorb their updates; a shard that is read-only
        (or down) rejects its share without failing the rest.  The return
        value itemises what happened and carries a fleet health summary:
        ``{"applied": n, "rejected": [{"index", "op", "shard", "error"},
        ...], "health": ...}``.
        """
        applied, rejected = 0, []
        for i, (op, point) in enumerate(ops):
            try:
                self._update(op, point)
                applied += 1
            except (ServerReadOnly, ShardUnavailable, ShardTimeout) as exc:
                shard = getattr(exc, "shard_id", None)
                if shard is None:
                    shard = int(
                        self.shard_map.shard_of_points(
                            np.asarray(point, dtype=np.float64)[None, :]
                        )[0]
                    )
                rejected.append(
                    {
                        "index": i,
                        "op": op,
                        "shard": shard,
                        "error": type(exc).__name__,
                    }
                )
        return {
            "applied": applied,
            "rejected": rejected,
            "health": self.health_summary(),
        }

    # ------------------------------------------------------------------
    # Health and metrics
    # ------------------------------------------------------------------
    def health_summary(self) -> dict:
        """Per-shard health plus a fleet verdict.

        ``healthy`` — every shard healthy; ``degraded`` — at least one
        shard degraded/read-only/down but the fleet still answers;
        ``down`` — every shard unreachable.
        """
        shards = {}
        for handle in self.handles:
            sid = handle.shard_id
            try:
                shards[sid] = self._call(sid, "status", idempotent=False)
            except (ShardUnavailable, ShardTimeout) as exc:
                shards[sid] = {"health": "down", "error": type(exc).__name__}
        states = [s["health"] for s in shards.values()]
        if all(state == "down" for state in states):
            overall = "down"
        elif all(state == "healthy" for state in states):
            overall = "healthy"
        else:
            overall = "degraded"
        return {"overall": overall, "shards": shards}

    def stats_snapshot(self) -> dict:
        """One fleet-wide metrics export: every live shard's
        ``stats_snapshot()`` merged (counters summed, histogram buckets
        added, gauges by freshest stamp) with the router's own counters
        and ``slo.*`` gauges.  With the telemetry poller running this is
        the poller's continuously refreshed view (plus per-shard
        staleness/up markers); without it, shards are scraped on demand —
        dead or wedged ones skipped and counted on
        ``router.stats_unreachable``."""
        self.slo.publish(self.registry)
        telemetry = self._telemetry
        if telemetry is not None and telemetry.running:
            return telemetry.merged()
        merged = MetricsRegistry()
        for handle in self.handles:
            try:
                merged.merge(
                    self._call(handle.shard_id, "stats", idempotent=False)
                )
            except (ShardUnavailable, ShardTimeout):
                self.registry.counter(
                    "router.stats_unreachable", shard=handle.shard_id
                ).inc()
        # The router's own counters merge last so this very snapshot
        # already reflects any shard found unreachable above.
        merged.merge(self.registry.export())
        return merged.export()

    # ------------------------------------------------------------------
    # Live surfaces: telemetry poller, overview, /metrics endpoint
    # ------------------------------------------------------------------
    @property
    def telemetry(self):
        """The :class:`~repro.shard.telemetry.FleetTelemetry` poller, or
        ``None`` when running merge-on-demand."""
        return self._telemetry

    def start_telemetry(self, interval: "float | None" = None):
        """Start (or return) the background fleet-telemetry poller."""
        from repro.shard.telemetry import FleetTelemetry

        if self._telemetry is None:
            self._telemetry = FleetTelemetry(
                self,
                interval=interval or self.config.telemetry_interval or 1.0,
            )
        self._telemetry.start()
        return self._telemetry

    def overview(self) -> dict:
        """Per-shard dashboard rows (health, generation, queue depth,
        qps-able counters, p99, staleness) — the ``repro obs top`` feed.
        Uses the running poller's cache; without one, scrapes once."""
        from repro.shard.telemetry import FleetTelemetry

        telemetry = self._telemetry
        if telemetry is None or not telemetry.running:
            telemetry = FleetTelemetry(
                self, interval=self.config.telemetry_interval or 1.0
            )
            telemetry.scrape_now()
        return telemetry.overview()

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Start (or return) the stdlib HTTP observability endpoint
        (``/metrics``, ``/metrics.json``, ``/health``, ``/overview``)
        backed by this router's fleet view."""
        from repro.obs.httpd import MetricsServer

        if self._metrics_server is None:
            server = MetricsServer(
                metrics=self.stats_snapshot,
                health=self.health_summary,
                overview=self.overview,
                host=host,
                port=port,
            )
            server.start()
            self._metrics_server = server
        return self._metrics_server


# ----------------------------------------------------------------------
# kNN merge helpers
# ----------------------------------------------------------------------
def _kth_distance(q: np.ndarray, candidate_sets: "list[np.ndarray]", k: int) -> float:
    """Distance of the kth-best candidate so far (inf when short of k)."""
    stacked = [c for c in candidate_sets if len(c)]
    if not stacked:
        return np.inf
    merged = np.vstack(stacked)
    if len(merged) < k:
        return np.inf
    diff = merged - q
    dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    return float(np.partition(dist, k - 1)[k - 1])


def _top_k(q: np.ndarray, candidate_sets: "list[np.ndarray]", k: int, d: int):
    """Global top-k of the candidate union, ranked by distance with
    coordinates as the deterministic tie-break (shard arrival order must
    never leak into the result)."""
    stacked = [c for c in candidate_sets if len(c)]
    if not stacked:
        return np.empty((0, d), dtype=np.float64)
    merged = np.vstack(stacked)
    diff = merged - q
    dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    order = np.lexsort(tuple(merged.T[::-1]) + (dist,))
    return merged[order[: min(k, len(order))]]
