"""Machine-learning substrate for ELSI.

The paper implements all prediction models as small feed-forward networks
(FFNs) trained with Adam on an L2 loss (Section VII-B1).  PyTorch is not
available in this environment, so this package provides an equivalent
pure-NumPy stack:

- :mod:`repro.ml.ffn` — feed-forward networks with ReLU hidden layers,
- :mod:`repro.ml.adam` — the Adam optimizer,
- :mod:`repro.ml.trainer` — batch training loops,
- :mod:`repro.ml.dqn` — a deep Q-network for the RL build method,
- :mod:`repro.ml.tree` / :mod:`repro.ml.forest` — CART decision trees and
  random forests used as method-selector baselines in Figure 6(b).
"""

from repro.ml.adam import Adam
from repro.ml.dqn import DQNAgent, ReplayBuffer
from repro.ml.ffn import FFN
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.trainer import TrainConfig, train_regressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "Adam",
    "DQNAgent",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "FFN",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "ReplayBuffer",
    "TrainConfig",
    "train_regressor",
]
