"""Quickstart: build a learned spatial index with ELSI and query it.

Builds a ZM index on an OSM-like data set twice — once the conventional way
(training on all of D, the paper's OG) and once through ELSI's RS method —
then runs point, window and kNN queries on both and prints the comparison.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ELSI, ELSIConfig, ZMIndex
from repro.core.build_processor import ELSIModelBuilder
from repro.data import load_dataset
from repro.spatial.rect import Rect

N_POINTS = 20_000


def build_and_time(builder_label: str, method: str, points: np.ndarray):
    config = ELSIConfig(train_epochs=300)
    index = ZMIndex(builder=ELSIModelBuilder(config, method=method))
    started = time.perf_counter()
    index.build(points)
    seconds = time.perf_counter() - started
    # The ZM index is a two-stage RMI: train_set_size sums the training
    # pairs across all member models (stage 1 + stage 2).
    print(f"  {builder_label:<22} build: {seconds:6.2f}s   "
          f"training pairs across {index.build_stats.n_models} models: "
          f"{index.build_stats.train_set_size:>6}")
    return index


def main() -> None:
    print(f"Loading {N_POINTS:,} OSM-like points ...")
    points = load_dataset("OSM1", N_POINTS)

    print("\nBuilding the same ZM index two ways:")
    og_index = build_and_time("conventional (OG)", "OG", points)
    elsi_index = build_and_time("ELSI (RS method)", "RS", points)

    print("\nPoint queries (every indexed point must be found):")
    for label, index in (("OG", og_index), ("ELSI", elsi_index)):
        started = time.perf_counter()
        hits = sum(index.point_query(p) for p in points[:2_000])
        per_query = (time.perf_counter() - started) / 2_000 * 1e6
        print(f"  {label:<6} {hits}/2000 found, {per_query:6.1f} us/query")

    print("\nWindow query (all PoIs on a user's screen):")
    screen = Rect.centered(np.array([0.5, 0.5]), 0.05)
    for label, index in (("OG", og_index), ("ELSI", elsi_index)):
        result = index.window_query(screen)
        print(f"  {label:<6} {len(result)} points in {screen.lo} .. {screen.hi}")

    print("\nkNN query (25 nearest PoIs to the map centre):")
    for label, index in (("OG", og_index), ("ELSI", elsi_index)):
        knn = index.knn_query(np.array([0.5, 0.5]), k=25)
        mean_dist = float(np.mean(np.linalg.norm(knn - 0.5, axis=1)))
        print(f"  {label:<6} 25 neighbours, mean distance {mean_dist:.4f}")

    print("\nThe ELSI facade bundles this behind three calls:")
    elsi = ELSI(ELSIConfig(lam=0.8, train_epochs=300))
    index = elsi.build(ZMIndex, points, method="RS")
    processor = elsi.updates(index)
    processor.insert(np.array([0.42, 0.42]))
    print(f"  elsi.build(...) -> {index.name} index over {index.n_points:,} points")
    print(f"  elsi.updates(...) -> side list with {processor.n_pending} pending insert(s)")
    print(f"  processor.to_rebuild() -> {processor.to_rebuild()}")


if __name__ == "__main__":
    main()
