"""ELSI system configuration.

Groups every parameter Section V and VII introduce.  The paper's defaults
are tuned for 10^8-point data sets; the dataclass defaults here are the
same *ratios* at this repo's default experiment scale (n ~ 2e4), and every
benchmark documents the values it sweeps (Figure 7's parameter ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ELSIConfig"]


@dataclass
class ELSIConfig:
    """Tunable parameters of the ELSI system.

    Attributes
    ----------
    lam:
        The λ of Equation 2 — weight of the *build* cost score.  λ→1
        prioritises fast builds (MR wins), λ→0 prioritises fast queries
        (RS/RL/OG win).  Default 0.8 per Section VII-G1.
    w_q:
        Query frequency weight of Equation 2 (1.0 per Section VII-B1).
    rho:
        SP sampling rate (paper default 1e-4 at n=1.28e8; the same training
        set size at n=2e4 gives 1e-2).
    n_clusters:
        CL cluster count C (paper default 100).
    epsilon:
        MR CDF-cover threshold ε in (0, 1] (paper default 0.5).
    beta:
        RS partition capacity β: recursion stops when a cell has at most
        β points, so the training set has roughly n/β points.
    eta:
        RL grid resolution per dimension (η^d cells; paper default 8).
    rl_steps:
        RL search step budget e.
    rl_alpha:
        RL DQN replay batch (the paper's α).
    zeta:
        RL toggle-acceptance probability ζ (0.8 per Section V-B2).
    gamma:
        RL discount factor (0.9 per Section V-B2).
    f_u:
        Updates between rebuild-predictor invocations (Section IV-B2).
    train_epochs / hidden_size:
        FFN training epochs and hidden width for index models (paper: 500
        epochs, lr 0.01).
    parallelism:
        Build-executor backend for multi-model builds: ``serial`` (the
        reference), ``thread`` / ``process`` (pool dispatch of per-partition
        fit jobs), or ``fused`` (batched single-pass training of all leaf
        models, see :mod:`repro.perf.fused`).  The ``REPRO_PARALLELISM``
        environment variable overrides this (e.g. ``thread:4``).
    parallel_workers:
        Pool size for the thread/process backends (default: CPU count).
    dtype:
        End-to-end precision for index models *and* mapped keys:
        ``float64`` (the reference) or ``float32`` (opt-in).  Training
        always runs in float64; with ``float32`` the trained networks are
        cast down — including RSMI's per-node models, cast *before* the
        fanout routing so build- and query-time routing stay identical —
        error bounds are re-measured under the reduced precision, and the
        fused inference stacks (:mod:`repro.perf.fused_infer`) hold
        single-precision parameters.  Mapped key columns (Z-curve/CDF,
        iDistance, Flood's per-column sort keys, LISA's cell keys) are
        stored at the same dtype: the round-to-nearest cast is monotone
        and applied identically at build and probe time, so equal
        coordinates map to bit-equal keys and the re-measured bounds keep
        predict-and-scan exact — half the model *and* key memory.  The
        ``REPRO_DTYPE`` environment variable overrides this at builder
        construction; snapshots pin the key dtype they were built with.
    faults:
        Fault-injection spec armed when a server is constructed with this
        config: comma-separated ``site=kind[:times[:after]]`` entries
        (see :mod:`repro.faults`), e.g. ``"snapshot.write=error:1"`` or
        ``"wal.append=torn_write:1:5"``.  Empty disables injection.  The
        ``REPRO_FAULTS`` environment variable arms the same spec
        process-wide.
    methods:
        Method pool names to consider, in canonical order.
    """

    lam: float = 0.8
    w_q: float = 1.0
    rho: float = 0.01
    n_clusters: int = 100
    epsilon: float = 0.5
    beta: int = 100
    eta: int = 8
    rl_steps: int = 300
    rl_alpha: int = 64
    zeta: float = 0.8
    gamma: float = 0.9
    f_u: int = 1000
    train_epochs: int = 500
    hidden_size: int = 16
    parallelism: str = "serial"
    parallel_workers: int | None = None
    dtype: str = "float64"
    faults: str = ""
    seed: int = 0
    methods: tuple[str, ...] = field(
        default=("SP", "CL", "MR", "RS", "RL", "OG")
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError(f"lambda must lie in [0, 1], got {self.lam}")
        if self.w_q < 1.0:
            raise ValueError(f"w_q must be >= 1, got {self.w_q}")
        if not 0.0 < self.rho <= 1.0:
            raise ValueError(f"rho must lie in (0, 1], got {self.rho}")
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in (0, 1], got {self.epsilon}")
        if self.n_clusters < 1 or self.beta < 1 or self.eta < 2:
            raise ValueError("n_clusters, beta >= 1 and eta >= 2 required")
        if self.f_u < 1:
            raise ValueError(f"f_u must be >= 1, got {self.f_u}")
        if not self.methods:
            raise ValueError("the method pool cannot be empty")
        from repro.perf.executor import BACKENDS

        if self.parallelism not in BACKENDS:
            raise ValueError(
                f"parallelism must be one of {BACKENDS}, got {self.parallelism!r}"
            )
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1, got {self.parallel_workers}"
            )
        from repro.perf.fused_infer import FUSION_DTYPES

        if self.dtype not in FUSION_DTYPES:
            raise ValueError(
                f"dtype must be one of {sorted(FUSION_DTYPES)}, got {self.dtype!r}"
            )
        if self.faults:
            from repro.faults.registry import parse_fault_spec

            parse_fault_spec(self.faults)  # validates; arming is the server's job
