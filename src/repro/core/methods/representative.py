"""RS: the representative-set method (Section V-B1, Algorithm 2).

Recursively partitions the original space into ``2^d`` equal cells until
each holds at most β points (a quadtree partitioning when d = 2), then
takes the *median point in the mapped space* of every non-empty cell.
Because every data point shares a cell with its representative, the
training set tracks the data's density in both the original and the mapped
space — the property that puts RS at the fast-query end of Figure 7's
Pareto fronts at a fraction of CL's build cost.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.methods.base import BuildMethod, MethodResult
from repro.indices.base import MapFn
from repro.spatial.quadtree import QuadTree

__all__ = ["RepresentativeSetMethod"]


class RepresentativeSetMethod(BuildMethod):
    """RS: one median-in-mapped-space point per quadtree cell."""

    name = "RS"
    requires_map_fn = False

    def __init__(self, beta: int = 100) -> None:
        if beta < 1:
            raise ValueError(f"beta must be >= 1, got {beta}")
        self.beta = beta

    def compute_set(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None,
    ) -> MethodResult:
        n = len(sorted_keys)
        started = time.perf_counter()
        # Leaf point_indices index into the key-sorted arrays, so the median
        # of a leaf's indices is the cell's median point in the mapped space,
        # and its index is directly the point's rank in D (Algorithm 2 line 2
        # picks "the median point in D" of the final partition).
        tree = QuadTree(sorted_points, max_points=self.beta)
        selected: list[int] = []
        for leaf in tree.leaves():
            idx = np.sort(leaf.point_indices)
            selected.append(int(idx[len(idx) // 2]))
        indices = np.array(sorted(set(selected)), dtype=np.int64)
        keys = sorted_keys[indices]
        ranks = self._true_ranks(indices, n)
        return MethodResult(keys, ranks, time.perf_counter() - started)
