"""Piecewise-linear approximation (PLA) with a provable error bound.

The paper notes (Section IV-A) that learned indices such as PGM use
piecewise-linear approximations of the CDF, "which allows a theoretical
bound on the query error based on the approximation error", and leaves
extending that to learned spatial indices as future work.  This module
implements that extension's substrate: a streaming PLA that guarantees
``|f(x) - y| <= epsilon`` for every training pair, using the classic
shrinking-slope-corridor algorithm (O'Rourke 1981; the same construction
PGM builds on).

A :class:`PiecewiseLinearModel` quacks like the FFN for prediction
(``predict(x) -> y`` over 2-D input), so it drops into
:class:`repro.indices.base.TrainedModel` unchanged — giving base indices
*theoretical* error bounds instead of empirical ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PiecewiseLinearModel", "fit_pla"]


@dataclass(frozen=True)
class _Segment:
    """One linear piece: valid from ``start`` (key space).

    Evaluated in anchor form ``y = slope * (x - anchor_x) + anchor_y``
    rather than slope/intercept form: when two keys sit a few ulps apart
    the corridor slope can reach ~1e15, and ``anchor_y - slope * anchor_x``
    would cancel catastrophically (the intercept's ulp dwarfs epsilon).
    Anchor form keeps every rounding at the scale of the y-range.
    """

    start: float
    slope: float
    anchor_x: float
    anchor_y: float


class PiecewiseLinearModel:
    """An epsilon-guaranteed piecewise-linear regressor over sorted keys.

    Use :func:`fit_pla` to construct.  ``predict`` matches the FFN call
    convention (2-D input, per-row output).
    """

    def __init__(self, segments: list[_Segment], epsilon: float) -> None:
        if not segments:
            raise ValueError("a PLA needs at least one segment")
        self.segments = segments
        self.epsilon = epsilon
        self._starts = np.array([s.start for s in segments])
        self._slopes = np.array([s.slope for s in segments])
        self._anchors_x = np.array([s.anchor_x for s in segments])
        self._anchors_y = np.array([s.anchor_y for s in segments])

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Per-row prediction; accepts (n,), (n, 1) like the FFN."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.ndim == 2:
            arr = arr[:, 0]
        idx = np.clip(np.searchsorted(self._starts, arr, side="right") - 1, 0, None)
        return self._slopes[idx] * (arr - self._anchors_x[idx]) + self._anchors_y[idx]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.predict(x)


def fit_pla(
    xs: np.ndarray, ys: np.ndarray, epsilon: float
) -> PiecewiseLinearModel:
    """Fit a PLA over sorted ``xs`` guaranteeing ``|f(x_i) - y_i| <= epsilon``.

    Greedy corridor construction: each segment starts at a point and keeps
    a feasible slope interval ``[lo, hi]``; every new point shrinks it to
    the slopes that pass within ±epsilon of the point.  When the interval
    empties, a new segment begins.  This yields the minimum number of
    segments among single-pass algorithms for the given anchor choice, and
    the guarantee holds by construction for all *training* points —
    exactly the PGM-style bound.
    """
    x = np.asarray(xs, dtype=np.float64).ravel()
    y = np.asarray(ys, dtype=np.float64).ravel()
    if len(x) == 0:
        raise ValueError("cannot fit a PLA on an empty data set")
    if len(x) != len(y):
        raise ValueError(f"{len(x)} keys vs {len(y)} targets")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if np.any(np.diff(x) < 0):
        raise ValueError("keys must be sorted ascending")

    segments: list[_Segment] = []
    anchor_x, anchor_y = x[0], y[0]
    lo, hi = -np.inf, np.inf
    start = x[0]

    def close_segment(last_index: int) -> None:
        if not np.isfinite(lo) and not np.isfinite(hi):
            slope = 0.0
        elif not np.isfinite(hi):
            slope = lo
        elif not np.isfinite(lo):
            slope = hi
        else:
            slope = lo / 2.0 + hi / 2.0  # avoids overflow of (lo + hi)
        segments.append(
            _Segment(start=start, slope=slope, anchor_x=anchor_x, anchor_y=anchor_y)
        )

    # Gaps too small to divide by without overflow behave as duplicates.
    tiny = np.finfo(np.float64).tiny * 4.0

    for i in range(1, len(x)):
        dx = x[i] - anchor_x
        if dx <= tiny:
            # (Near-)duplicate key: the model will predict ~anchor_y here,
            # so the point is feasible only within epsilon vertically.
            if abs(y[i] - anchor_y) <= epsilon:
                continue
            close_segment(i - 1)
            anchor_x, anchor_y = x[i], y[i]
            lo, hi = -np.inf, np.inf
            start = x[i]
            continue
        new_lo = (y[i] - epsilon - anchor_y) / dx
        new_hi = (y[i] + epsilon - anchor_y) / dx
        lo2, hi2 = max(lo, new_lo), min(hi, new_hi)
        if lo2 <= hi2:
            lo, hi = lo2, hi2
        else:
            close_segment(i - 1)
            anchor_x, anchor_y = x[i], y[i]
            lo, hi = -np.inf, np.inf
            start = x[i]
    close_segment(len(x) - 1)
    return PiecewiseLinearModel(segments, epsilon)
