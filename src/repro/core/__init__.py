"""ELSI — the paper's primary contribution (Sections IV–VI).

- :mod:`repro.core.config` — system parameters,
- :mod:`repro.core.methods` — the six-method training-set pool (Section V),
- :mod:`repro.core.build_processor` — Algorithm 1 as a pluggable builder,
- :mod:`repro.core.scorer` — the two-FFN method scorer and Equation 2,
- :mod:`repro.core.selector` — scorer training + the Fig. 6(b) baselines,
- :mod:`repro.core.update_processor` — side-list updates + rebuild predictor,
- :mod:`repro.core.costs` — the Section VI cost model,
- :mod:`repro.core.elsi` — the system facade.
"""

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.costs import CostModel
from repro.core.elsi import ELSI
from repro.core.scorer import MethodScorer, ScorerSample
from repro.core.selector import (
    DatasetRecord,
    TreeSelector,
    best_method,
    collect_selector_data,
    records_to_samples,
    selector_accuracy,
    train_ffn_selector,
)
from repro.core.update_processor import (
    RebuildPredictor,
    UpdateProcessor,
    train_rebuild_predictor,
)

__all__ = [
    "ELSI",
    "ELSIConfig",
    "ELSIModelBuilder",
    "CostModel",
    "DatasetRecord",
    "MethodScorer",
    "RebuildPredictor",
    "ScorerSample",
    "TreeSelector",
    "UpdateProcessor",
    "best_method",
    "collect_selector_data",
    "records_to_samples",
    "selector_accuracy",
    "train_ffn_selector",
    "train_rebuild_predictor",
]
