"""Tiny-scale structural tests for the experiment drivers.

The benchmark suite exercises the drivers at full scale; these tests pin
their *contracts* (keys, shapes, invariants) at a seconds-scale n so driver
regressions surface in the unit suite.
"""

import numpy as np
import pytest

from repro.bench.experiments import (
    Context,
    DATASET_NAMES,
    fig07_pareto,
    fig10_point_query,
    fig12_window,
    fig15_updates,
    table2_ablation,
)
from repro.bench.harness import ExperimentScale


@pytest.fixture(scope="module")
def ctx():
    tiny = ExperimentScale(
        name="tiny",
        n=500,
        n_point_queries=30,
        n_window_queries=8,
        n_knn_queries=4,
        k=5,
        selector_cardinalities=(300,),
        selector_deltas=(0.0, 0.6),
        train_epochs=50,
        rl_steps=25,
    )
    return Context(tiny)


def test_fig07_rows_structure(ctx):
    rows = fig07_pareto(ctx)
    indices = {r["index"] for r in rows}
    assert indices == {"ZM", "ML", "RSMI", "LISA"}
    # LISA has no CL/RL rows (inapplicable).
    lisa_methods = {r["method"] for r in rows if r["index"] == "LISA"}
    assert "CL" not in lisa_methods and "RL" not in lisa_methods
    for r in rows:
        assert r["build_seconds"] > 0
        assert r["query_us"] > 0


def test_fig10_covers_all_cells(ctx):
    result = fig10_point_query(ctx)
    assert set(result) == set(DATASET_NAMES)
    expected_indices = {
        "Grid", "KDB", "HRR", "RR*",
        "ML", "ML-F", "LISA", "LISA-F", "RSMI", "RSMI-F",
    }
    for name, row in result.items():
        assert set(row) == expected_indices, name
        assert all(v > 0 for v in row.values())


def test_fig12_recall_bounds(ctx):
    result = fig12_window(ctx)
    for name in DATASET_NAMES:
        for label, recall in result["recall"][name].items():
            assert 0.0 <= recall <= 1.0, (name, label)
        assert result["recall"][name]["ML"] == 1.0  # exact by design


def test_table2_na_cells(ctx):
    result = table2_ablation(ctx)
    assert result["build_seconds"]["LISA"]["CL"] is None
    assert result["build_seconds"]["LISA"]["RL"] is None
    assert result["build_seconds"]["ZM"]["CL"] is not None
    for index_name, row in result["build_seconds"].items():
        assert row["ELSI"] is not None and row["ELSI"] > 0


def test_fig15_metrics_structure(ctx):
    result = fig15_updates(ctx, insert_ratios=(0.05, 0.2))
    assert set(result) == {"ML-F", "ML-R", "LISA-F", "LISA-R", "RSMI-F", "RSMI-R", "RR*"}
    for label, series in result.items():
        assert [m["ratio"] for m in series] == [0.05, 0.2]
        for m in series:
            assert m["insert_us"] >= 0
            assert m["point_us"] > 0
        if label.endswith("-F") or label == "RR*":
            assert not any(m["rebuilt"] for m in series)
