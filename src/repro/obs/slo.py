"""Rolling-window SLO tracking: latency quantiles and error-budget burn.

An SLO here is "quantile ``q`` of per-request latency stays under
``latency`` seconds" per request kind (``point`` / ``window`` / ``knn`` /
``update``).  The tracker keeps a rolling window of per-kind latency
samples in time-sliced log-bucket histograms (the same doubling buckets
as :class:`~repro.obs.metrics.Histogram`, so quantile estimates are
upper bounds by at most one doubling) and derives two things:

- **quantile estimators** — p50/p99/p999 over everything inside the
  window, recomputed from the summed slice buckets on demand;
- **burn rate** — the fraction of windowed requests that violated the
  target, divided by the error budget the objective allows
  (``1 - quantile/100``).  Burn 1.0 means the budget is being spent
  exactly as fast as it accrues; sustained burn above
  ``burn_threshold`` is what walks a server's health to ``degraded``.

Recording is O(1) per call (a bucket increment after locating the live
slice); quantiles and burn are computed only when published.  Publishing
(:meth:`SLOTracker.publish`) writes ``slo.p50_seconds`` /
``slo.p99_seconds`` / ``slo.p999_seconds`` / ``slo.burn_rate`` /
``slo.window_requests`` gauges (labelled ``kind=...``) into a
:class:`~repro.obs.metrics.MetricsRegistry`, which is how the fleet view
and the ``/metrics`` endpoint see them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["SLOConfig", "SLOTarget", "SLOTracker", "DEFAULT_KINDS"]

#: The request kinds the serving tier records (a tracker accepts any
#: string kind; these are the conventional ones).
DEFAULT_KINDS = ("point", "window", "knn", "update")

_BASE = 1e-6
_N_BUCKETS = 28


@dataclass(frozen=True)
class SLOTarget:
    """One latency objective: ``quantile`` % of requests under ``latency``."""

    latency: float
    quantile: float = 99.0

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError(f"target latency must be positive, got {self.latency}")
        if not 0.0 < self.quantile < 100.0:
            raise ValueError(
                f"target quantile must be in (0, 100), got {self.quantile}"
            )

    @property
    def budget(self) -> float:
        """The error budget: the request fraction allowed over target."""
        return 1.0 - self.quantile / 100.0


def _parse_targets(spec: "dict | None") -> dict:
    """Normalise a target spec: ``{kind: seconds}`` or ``{kind: {"latency":
    s, "quantile": q}}`` or ``{kind: SLOTarget}`` → ``{kind: SLOTarget}``."""
    targets: dict[str, SLOTarget] = {}
    for kind, value in (spec or {}).items():
        if isinstance(value, SLOTarget):
            targets[kind] = value
        elif isinstance(value, dict):
            targets[kind] = SLOTarget(**value)
        else:
            targets[kind] = SLOTarget(latency=float(value))
    return targets


@dataclass(frozen=True)
class SLOConfig:
    """Targets plus the rolling-window shape.

    Attributes
    ----------
    targets:
        ``{kind: target}`` — see :func:`_parse_targets` for accepted
        forms.  Kinds without a target still get quantile gauges; burn
        is only computed where a target exists.
    window_seconds:
        How much history the quantiles and burn rate cover.
    n_slices:
        Ring granularity: the window is ``n_slices`` equal time slices,
        expired whole — so the effective window wobbles by one slice.
    burn_threshold:
        Burn rate at or above which :meth:`SLOTracker.burning` reports
        the kind (the server's health-walk trigger).
    """

    targets: "dict | None" = None
    window_seconds: float = 60.0
    n_slices: int = 12
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {self.window_seconds}"
            )
        if self.n_slices < 2:
            raise ValueError(f"n_slices must be >= 2, got {self.n_slices}")
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be positive, got {self.burn_threshold}"
            )


class _Window:
    """One kind's rolling window: a ring of time slices, each a bucket
    array + violation count, expired wholesale as time advances."""

    __slots__ = ("slice_seconds", "n_slices", "slices")

    def __init__(self, window_seconds: float, n_slices: int) -> None:
        self.slice_seconds = window_seconds / n_slices
        self.n_slices = n_slices
        # {slice index: [buckets, n, violations, total]}
        self.slices: dict[int, list] = {}

    def _advance(self, now: float) -> int:
        current = int(now / self.slice_seconds)
        horizon = current - self.n_slices + 1
        for idx in [i for i in self.slices if i < horizon]:
            del self.slices[idx]
        return current

    def record(self, now: float, seconds: float, count: int, violated: bool) -> None:
        idx = self._advance(now)
        cell = self.slices.get(idx)
        if cell is None:
            cell = self.slices[idx] = [
                np.zeros(_N_BUCKETS, dtype=np.int64), 0, 0, 0.0,
            ]
        bucket = 0
        scaled = seconds / _BASE
        while scaled > 1.0 and bucket < _N_BUCKETS - 1:
            scaled /= 2.0
            bucket += 1
        cell[0][bucket] += count
        cell[1] += count
        if violated:
            cell[2] += count
        cell[3] += seconds * count

    def totals(self, now: float) -> tuple[np.ndarray, int, int, float]:
        self._advance(now)
        buckets = np.zeros(_N_BUCKETS, dtype=np.int64)
        n = violations = 0
        total = 0.0
        for cell in self.slices.values():
            buckets += cell[0]
            n += cell[1]
            violations += cell[2]
            total += cell[3]
        return buckets, n, violations, total


def _quantile(buckets: np.ndarray, n: int, q: float) -> float:
    if n == 0:
        return 0.0
    rank = max(1, int(np.ceil(q / 100.0 * n)))
    bucket = int(np.searchsorted(np.cumsum(buckets), rank))
    return _BASE * (2.0 ** (bucket + 1))


class SLOTracker:
    """Per-kind rolling latency windows with targets and burn rates."""

    def __init__(self, config: "SLOConfig | dict | None" = None) -> None:
        if isinstance(config, dict):
            config = SLOConfig(targets=config)
        self.config = config or SLOConfig()
        self.targets = _parse_targets(self.config.targets)
        self._lock = threading.Lock()
        self._windows: dict[str, _Window] = {}

    # ------------------------------------------------------------------
    def record(self, kind: str, seconds: float, count: int = 1) -> None:
        """Record that ``count`` requests of ``kind`` each took ``seconds``."""
        if count < 1:
            return
        target = self.targets.get(kind)
        violated = target is not None and seconds > target.latency
        now = time.monotonic()
        with self._lock:
            window = self._windows.get(kind)
            if window is None:
                window = self._windows[kind] = _Window(
                    self.config.window_seconds, self.config.n_slices
                )
            window.record(now, float(seconds), int(count), violated)

    # ------------------------------------------------------------------
    def _kind_totals(self, kind: str) -> tuple[np.ndarray, int, int, float]:
        with self._lock:
            window = self._windows.get(kind)
            if window is None:
                return np.zeros(_N_BUCKETS, dtype=np.int64), 0, 0, 0.0
            return window.totals(time.monotonic())

    def quantiles(self, kind: str) -> dict:
        """``{"p50": s, "p99": s, "p999": s, "n": count}`` over the window."""
        buckets, n, _violations, _total = self._kind_totals(kind)
        return {
            "p50": _quantile(buckets, n, 50.0),
            "p99": _quantile(buckets, n, 99.0),
            "p999": _quantile(buckets, n, 99.9),
            "n": n,
        }

    def burn_rate(self, kind: str) -> float:
        """Windowed violation fraction over the error budget (0 without a
        target or without samples)."""
        target = self.targets.get(kind)
        if target is None:
            return 0.0
        _buckets, n, violations, _total = self._kind_totals(kind)
        if n == 0:
            return 0.0
        return (violations / n) / target.budget

    def burning(self) -> list[str]:
        """Kinds whose burn rate is at or past the threshold (sorted)."""
        return sorted(
            kind
            for kind in self.targets
            if self.burn_rate(kind) >= self.config.burn_threshold
        )

    # ------------------------------------------------------------------
    def kinds(self) -> list[str]:
        with self._lock:
            observed = set(self._windows)
        return sorted(observed | set(self.targets))

    def publish(self, registry) -> None:
        """Write per-kind quantile + burn gauges into ``registry``."""
        for kind in self.kinds():
            q = self.quantiles(kind)
            registry.gauge("slo.p50_seconds", kind=kind).set(q["p50"])
            registry.gauge("slo.p99_seconds", kind=kind).set(q["p99"])
            registry.gauge("slo.p999_seconds", kind=kind).set(q["p999"])
            registry.gauge("slo.window_requests", kind=kind).set(q["n"])
            if kind in self.targets:
                registry.gauge("slo.burn_rate", kind=kind).set(
                    self.burn_rate(kind)
                )

    def snapshot(self) -> dict:
        """JSON-able per-kind summary (quantiles, burn, target)."""
        out: dict[str, dict] = {}
        for kind in self.kinds():
            entry = dict(self.quantiles(kind))
            target = self.targets.get(kind)
            if target is not None:
                entry["target_latency"] = target.latency
                entry["target_quantile"] = target.quantile
                entry["burn_rate"] = self.burn_rate(kind)
            out[kind] = entry
        return out
