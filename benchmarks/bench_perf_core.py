"""Core perf microbenchmark: parallel build backends + batch-query engine.

Measures (1) multi-model index build time under every executor backend and
(2) batch point-query throughput against the per-query loop, then writes a
machine-readable ``BENCH_core.json`` — the repo's perf trajectory seed.

Run from the repo root (scale via ``REPRO_SCALE=smoke|default|large``):

    PYTHONPATH=src REPRO_SCALE=default python benchmarks/bench_perf_core.py

Each result record carries ``op``, ``n``, ``backend``, ``seconds`` and
``speedup`` (vs the serial backend for builds, vs the scalar loop for
queries).  Thread/process speedups reflect the host's core count — on a
single-core CI runner they hover near 1.0x and the ``fused`` backend
(vectorised multi-model training) carries the build win.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.bench.harness import ExperimentScale
from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import FloodIndex, LISAIndex, MLIndex, ZMIndex

#: RMI stage-2 fan-out for the build benchmark (the issue's "multi-model
#: build, branching >= 8").
BRANCHING = 16
BUILD_BACKENDS = ("serial", "thread", "process", "fused")
QUERY_INDICES = (ZMIndex, MLIndex, LISAIndex, FloodIndex)


def _build_index(points: np.ndarray, backend: str, scale: ExperimentScale):
    config = ELSIConfig(train_epochs=scale.train_epochs, parallelism=backend)
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=BRANCHING
    )
    started = time.perf_counter()
    index.build(points)
    return index, time.perf_counter() - started


def _models_identical(a, b) -> bool:
    return all(
        m1.err_l == m2.err_l
        and m1.err_u == m2.err_u
        and all(np.array_equal(w1, w2) for w1, w2 in zip(m1.net.weights, m2.net.weights))
        and all(np.array_equal(b1, b2) for b1, b2 in zip(m1.net.biases, m2.net.biases))
        for m1, m2 in zip(a.model.models, b.model.models)
    )


def bench_build(points: np.ndarray, scale: ExperimentScale) -> list[dict]:
    records = []
    serial_index, serial_seconds = _build_index(points, "serial", scale)
    records.append(
        {
            "op": "build",
            "n": len(points),
            "backend": "serial",
            "seconds": serial_seconds,
            "speedup": 1.0,
            "identical_to_serial": True,
        }
    )
    for backend in BUILD_BACKENDS[1:]:
        try:
            index, seconds = _build_index(points, backend, scale)
        except Exception as exc:  # e.g. process pools unavailable in a sandbox
            records.append(
                {
                    "op": "build",
                    "n": len(points),
                    "backend": backend,
                    "seconds": None,
                    "speedup": None,
                    "error": str(exc),
                }
            )
            continue
        records.append(
            {
                "op": "build",
                "n": len(points),
                "backend": backend,
                "seconds": seconds,
                "speedup": serial_seconds / seconds,
                "identical_to_serial": _models_identical(serial_index, index),
            }
        )
    return records


def bench_queries(points: np.ndarray, scale: ExperimentScale) -> list[dict]:
    rng = np.random.default_rng(7)
    b = max(scale.n_point_queries, 200)
    batch = np.vstack(
        [
            points[rng.integers(0, len(points), size=b)],  # hits
            rng.random((b, 2)) * 2.0,  # mostly misses
        ]
    )
    records = []
    for cls in QUERY_INDICES:
        config = ELSIConfig(train_epochs=scale.train_epochs)
        index = cls(builder=ELSIModelBuilder(config, method="SP")).build(points)
        started = time.perf_counter()
        loop = np.array([index.point_query(p) for p in batch], dtype=bool)
        loop_seconds = time.perf_counter() - started
        started = time.perf_counter()
        vectorised = index.point_queries(batch)
        batch_seconds = time.perf_counter() - started
        if not np.array_equal(loop, vectorised):
            raise AssertionError(f"{cls.name}: batch results diverge from the loop")
        records.append(
            {
                "op": f"point_queries[{cls.name}]",
                "n": len(batch),
                "backend": "loop",
                "seconds": loop_seconds,
                "speedup": 1.0,
            }
        )
        records.append(
            {
                "op": f"point_queries[{cls.name}]",
                "n": len(batch),
                "backend": "batch",
                "seconds": batch_seconds,
                "speedup": loop_seconds / batch_seconds,
            }
        )
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_core.json", help="where to write the results"
    )
    args = parser.parse_args()

    scale = ExperimentScale.from_env(default="default")
    from repro.data import load_dataset

    points = load_dataset("OSM1", scale.n)
    print(f"scale={scale.name} n={scale.n} cpus={os.cpu_count()}")

    results = bench_build(points, scale) + bench_queries(points, scale)
    for r in results:
        seconds = "failed" if r["seconds"] is None else f"{r['seconds']:.3f}s"
        speedup = "-" if r["speedup"] is None else f"{r['speedup']:.2f}x"
        print(f"{r['op']:24s} {r['backend']:8s} {seconds:>10s} {speedup:>8s}")

    payload = {
        "benchmark": "bench_perf_core",
        "scale": scale.name,
        "n": scale.n,
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
