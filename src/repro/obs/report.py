"""Trace analysis: load a JSONL trace, summarise phases, render span trees.

The ``python -m repro obs report`` CLI is a thin wrapper over this module:
:func:`load_trace` parses the JSON-lines file ``REPRO_TRACE`` produced,
:func:`phase_totals` aggregates wall-clock per span name (the per-phase
cost breakdown — method selection vs. training vs. error bounds vs. query
refinement, the decomposition Pai et al. show explains learned-index
performance), and :func:`render_tree` prints the nested span structure.

Spans land in the file at *exit* time, so children precede parents on
disk; tree construction keys off the recorded parent ids, not file order.
"""

from __future__ import annotations

import json

from repro.obs.trace import SpanRecord

__all__ = [
    "build_tree",
    "check_cross_process",
    "load_trace",
    "missing_spans",
    "phase_totals",
    "render_report",
    "render_tree",
    "request_ids",
    "request_spans",
]


def load_trace(path: str) -> list[SpanRecord]:
    """Parse a JSONL trace file into span records (file order)."""
    records: list[SpanRecord] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(SpanRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed span line: {exc}") from exc
    return records


def build_tree(
    records: list[SpanRecord],
) -> tuple[list[SpanRecord], dict[str, list[SpanRecord]]]:
    """Return ``(roots, children_by_parent_id)``, both sorted by start time.

    A span whose parent never completed (ring-buffer eviction, crash
    mid-span, an adopted batch whose adoptive parent was evicted) is
    promoted to a root with an ``orphan=true`` attribute rather than
    dropped — the span is real work; only its causal link is lost.
    """
    by_id = {r.span_id: r for r in records}
    roots: list[SpanRecord] = []
    children: dict[str, list[SpanRecord]] = {}
    for r in records:
        if r.parent_id is not None and r.parent_id in by_id:
            children.setdefault(r.parent_id, []).append(r)
        else:
            if r.parent_id is not None:
                r.attrs.setdefault("orphan", True)
            roots.append(r)
    roots.sort(key=lambda r: r.start)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.start)
    return roots, children


def phase_totals(records: list[SpanRecord]) -> dict[str, dict]:
    """Aggregate per span name: count, total/mean/max seconds, self seconds.

    ``self_seconds`` subtracts the time attributed to a span's (recorded)
    children, so nested phases don't double-count in the breakdown.
    """
    child_time: dict[str, float] = {}
    for r in records:
        if r.parent_id is not None:
            child_time[r.parent_id] = child_time.get(r.parent_id, 0.0) + r.duration
    totals: dict[str, dict] = {}
    for r in records:
        entry = totals.setdefault(
            r.name,
            {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0, "self_seconds": 0.0},
        )
        entry["count"] += 1
        entry["total_seconds"] += r.duration
        entry["self_seconds"] += max(0.0, r.duration - child_time.get(r.span_id, 0.0))
        if r.duration > entry["max_seconds"]:
            entry["max_seconds"] = r.duration
    for entry in totals.values():
        entry["mean_seconds"] = entry["total_seconds"] / entry["count"]
    return totals


def missing_spans(records: list[SpanRecord], required: list[str]) -> list[str]:
    """The required span names absent from the trace (CI smoke assertion)."""
    present = {r.name for r in records}
    return [name for name in required if name not in present]


def request_ids(records: list[SpanRecord]) -> list[str]:
    """Every distinct ``request_id`` attribute in the trace (span order)."""
    seen: dict[str, None] = {}
    for r in records:
        rid = r.attrs.get("request_id")
        if rid is not None:
            seen.setdefault(str(rid), None)
    return list(seen)


def request_spans(records: list[SpanRecord], request_id: str) -> list[SpanRecord]:
    """One request's spans: every span tagged with the id, plus all of
    their descendants (the cross-process tree the router adopted)."""
    children: dict[str, list[SpanRecord]] = {}
    for r in records:
        if r.parent_id is not None:
            children.setdefault(r.parent_id, []).append(r)
    tagged = [r for r in records if str(r.attrs.get("request_id")) == request_id]
    keep: dict[str, SpanRecord] = {}
    frontier = list(tagged)
    while frontier:
        rec = frontier.pop()
        if rec.span_id in keep:
            continue
        keep[rec.span_id] = rec
        frontier.extend(children.get(rec.span_id, ()))
    return [r for r in records if r.span_id in keep]


def check_cross_process(
    records: list[SpanRecord], root_name: str, child_name: str
) -> "str | None":
    """CI assertion for cross-process propagation: some ``root_name`` span
    must have a ``child_name`` descendant from a *different pid* sharing
    the root's ``trace_id``.  Returns an error message, or None on pass."""
    children: dict[str, list[SpanRecord]] = {}
    for r in records:
        if r.parent_id is not None:
            children.setdefault(r.parent_id, []).append(r)
    roots = [r for r in records if r.name == root_name]
    if not roots:
        return f"no {root_name!r} spans in the trace"
    saw_child = saw_remote = False
    for root in roots:
        frontier = list(children.get(root.span_id, ()))
        seen: set[str] = set()
        while frontier:
            rec = frontier.pop()
            if rec.span_id in seen:
                continue
            seen.add(rec.span_id)
            frontier.extend(children.get(rec.span_id, ()))
            if rec.name != child_name:
                continue
            saw_child = True
            if rec.pid != root.pid:
                saw_remote = True
                if rec.trace_id == root.trace_id and root.trace_id is not None:
                    return None
    if not saw_child:
        return (
            f"no {root_name!r} span has a {child_name!r} descendant "
            "(trace context did not reach the workers)"
        )
    if not saw_remote:
        return (
            f"every {child_name!r} descendant of {root_name!r} ran in the "
            "same process (no cross-process spans were adopted)"
        )
    return (
        f"cross-process {child_name!r} spans exist but none shares its "
        f"{root_name!r} root's trace_id"
    )


def _format_attrs(attrs: dict, limit: int = 4) -> str:
    if not attrs:
        return ""
    shown = list(attrs.items())[:limit]
    text = ", ".join(f"{k}={v}" for k, v in shown)
    if len(attrs) > limit:
        text += ", ..."
    return f" [{text}]"


def render_tree(
    records: list[SpanRecord],
    max_depth: int = 12,
    min_seconds: float = 0.0,
    max_children: int = 20,
) -> str:
    """The nested span structure as an indented text tree."""
    roots, children = build_tree(records)
    lines: list[str] = []

    def emit(record: SpanRecord, depth: int) -> None:
        if record.duration < min_seconds and depth > 0:
            return
        indent = "  " * depth
        lines.append(
            f"{indent}{record.name}  {record.duration * 1e3:9.3f} ms"
            f"{_format_attrs(record.attrs)}"
        )
        if depth + 1 >= max_depth:
            return
        kids = children.get(record.span_id, [])
        for child in kids[:max_children]:
            emit(child, depth + 1)
        if len(kids) > max_children:
            lines.append(f"{'  ' * (depth + 1)}... ({len(kids) - max_children} more)")

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def render_phase_table(records: list[SpanRecord]) -> str:
    """The per-phase cost breakdown as an aligned text table."""
    totals = phase_totals(records)
    if not totals:
        return "(no spans)"
    rows = sorted(totals.items(), key=lambda kv: -kv[1]["total_seconds"])
    name_w = max(len("phase"), max(len(name) for name in totals))
    header = (
        f"{'phase':<{name_w}}  {'count':>7}  {'total':>10}  {'self':>10}"
        f"  {'mean':>10}  {'max':>10}"
    )
    lines = [header, "-" * len(header)]
    for name, entry in rows:
        lines.append(
            f"{name:<{name_w}}  {entry['count']:>7d}"
            f"  {entry['total_seconds'] * 1e3:>8.2f}ms"
            f"  {entry['self_seconds'] * 1e3:>8.2f}ms"
            f"  {entry['mean_seconds'] * 1e3:>8.2f}ms"
            f"  {entry['max_seconds'] * 1e3:>8.2f}ms"
        )
    return "\n".join(lines)


def render_report(
    records: list[SpanRecord],
    max_depth: int = 12,
    min_seconds: float = 0.0,
) -> str:
    """Phase breakdown followed by the span tree — the CLI's output."""
    n_processes = len({r.pid for r in records})
    parts = [
        f"{len(records)} spans from {n_processes} process(es)",
        "",
        "Per-phase cost breakdown",
        render_phase_table(records),
        "",
        "Span tree",
        render_tree(records, max_depth=max_depth, min_seconds=min_seconds),
    ]
    return "\n".join(parts)
