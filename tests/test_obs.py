"""Tests for the observability subsystem (repro.obs: metrics + tracing)."""

import json

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    build_tree,
    load_trace,
    missing_spans,
    phase_totals,
    render_report,
    render_tree,
)
from repro.obs.trace import SpanRecord, Tracer, get_tracer, span, traced
from repro.perf.executor import ENV_VAR, MapExecutor, resolve_executor


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


@pytest.fixture
def tracer():
    """The process-wide tracer, enabled for the test and reset afterwards."""
    t = get_tracer()
    t.enable()
    t.reset()
    yield t
    t.disable()
    t.reset()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_records_name_duration_attrs(tracer):
    with span("unit.work", n=7):
        pass
    records = tracer.find("unit.work")
    assert len(records) == 1
    rec = records[0]
    assert rec.attrs == {"n": 7}
    assert rec.duration >= 0.0
    assert rec.parent_id is None


def test_span_nesting_links_parents(tracer):
    with span("outer") as outer:
        with span("inner") as inner:
            with span("leaf"):
                pass
    leaf = tracer.find("leaf")[0]
    mid = tracer.find("inner")[0]
    top = tracer.find("outer")[0]
    assert leaf.parent_id == inner.span_id
    assert mid.parent_id == outer.span_id
    assert top.parent_id is None


def test_span_set_attaches_attrs_in_flight(tracer):
    with span("work", phase="start") as s:
        s.set(result=42)
    rec = tracer.find("work")[0]
    assert rec.attrs == {"phase": "start", "result": 42}


def test_traced_decorator(tracer):
    @traced("decorated.call", tag="x")
    def double(v):
        return 2 * v

    assert double(21) == 42
    rec = tracer.find("decorated.call")[0]
    assert rec.attrs == {"tag": "x"}


def test_disabled_span_is_shared_noop():
    t = get_tracer()
    assert not t.enabled
    a = span("anything", n=1)
    b = span("else")
    assert a is b  # the shared no-op: no allocation on the disabled path
    with a as s:
        s.set(ignored=True)  # must be callable and do nothing
    assert t.spans() == []


def test_ring_buffer_caps_retention():
    t = Tracer(ring_size=4)
    t.enable()
    for i in range(10):
        with t.span("tick", i=i):
            pass
    kept = t.spans()
    assert len(kept) == 4
    assert [r.attrs["i"] for r in kept] == [6, 7, 8, 9]


def test_jsonl_sink_streams_spans(tmp_path, tracer):
    path = tmp_path / "trace.jsonl"
    tracer.enable(path=str(path))
    with span("sinked", k=1):
        pass
    tracer.disable()  # flush + close
    lines = [json.loads(l) for l in path.read_text().splitlines() if l.strip()]
    assert [l["name"] for l in lines] == ["sinked"]
    assert lines[0]["attrs"] == {"k": 1}


def test_span_record_round_trips_through_dicts():
    rec = SpanRecord(
        name="x", span_id="1-2", parent_id=None, start=1.0,
        duration=0.5, attrs={"a": 1}, pid=7, thread="main",
    )
    clone = SpanRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
    assert clone.to_dict() == rec.to_dict()


def test_capture_redirects_and_adopt_reparents(tracer):
    with tracer.capture() as captured:
        with tracer.span("worker.root"):
            with tracer.span("worker.child"):
                pass
    assert tracer.spans() == []  # nothing published while capturing
    assert {r.name for r in captured} == {"worker.root", "worker.child"}

    shipped = [r.to_dict() for r in captured]  # what crosses the pickle boundary
    tracer.adopt(shipped, parent_id="parent-span")
    root = tracer.find("worker.root")[0]
    child = tracer.find("worker.child")[0]
    assert root.parent_id == "parent-span"
    assert child.parent_id == root.span_id  # intra-batch links preserved


# ----------------------------------------------------------------------
# Executor tracing (thread + process workers)
# ----------------------------------------------------------------------
def test_thread_map_chunks_parent_under_map_span(tracer):
    ex = MapExecutor(backend="thread", max_workers=2, chunk_size=3)
    assert ex.map(_square, list(range(9))) == [x * x for x in range(9)]
    map_spans = tracer.find("perf.map")
    assert len(map_spans) == 1
    assert map_spans[0].attrs["backend"] == "thread"
    chunks = tracer.find("perf.chunk")
    assert len(chunks) == 3
    assert all(c.parent_id == map_spans[0].span_id for c in chunks)


def test_process_map_worker_spans_survive_pickling(tracer):
    import os

    ex = MapExecutor(backend="process", max_workers=2, chunk_size=2)
    assert ex.map(_square, list(range(8))) == [x * x for x in range(8)]
    map_spans = tracer.find("perf.map")
    assert len(map_spans) == 1
    assert "utilisation" in map_spans[0].attrs
    chunks = tracer.find("perf.chunk")
    assert len(chunks) == 4
    assert all(c.parent_id == map_spans[0].span_id for c in chunks)
    # The chunk spans really came from worker processes.
    assert all(c.pid != os.getpid() for c in chunks)


def test_disabled_map_takes_untraced_path():
    t = get_tracer()
    assert not t.enabled
    ex = MapExecutor(backend="thread", max_workers=2)
    assert ex.map(_square, list(range(5))) == [x * x for x in range(5)]
    assert t.spans() == []


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_bucket_edges():
    h = Histogram(base=1.0, n_buckets=5)
    # Bucket 0 is [0, base]; bucket i covers (base*2**(i-1), base*2**i].
    assert h.bucket_index(0.0) == 0
    assert h.bucket_index(1.0) == 0
    assert h.bucket_index(1.0001) == 1
    assert h.bucket_index(2.0) == 1
    assert h.bucket_index(4.0) == 2
    assert h.bucket_index(8.0) == 3
    # Everything past the last boundary lands in the final bucket.
    assert h.bucket_index(1e9) == 4
    assert h.bucket_bounds(0) == (0.0, 1.0)
    assert h.bucket_bounds(2) == (2.0, 4.0)
    with pytest.raises(IndexError):
        h.bucket_bounds(5)


def test_histogram_stats_and_percentiles():
    h = Histogram(base=1.0, n_buckets=8)
    h.record_many([0.5, 1.5, 3.0, 3.5, 100.0])
    assert h.count == 5
    assert h.max == 100.0
    assert h.mean == pytest.approx(108.5 / 5)
    # Percentiles are pessimistic bucket-bound estimates (within a doubling).
    assert h.percentile(50) == 8.0
    assert h.percentile(99) == 256.0  # last bucket of an 8-bucket base-1 histogram
    assert Histogram().percentile(99) == 0.0  # empty histogram


def test_histogram_merge_adds_samples():
    a = Histogram(base=1.0, n_buckets=6)
    b = Histogram(base=1.0, n_buckets=6)
    a.record_many([0.5, 2.0])
    b.record_many([4.0, 9.0])
    a.merge(b)
    assert a.count == 4
    assert a.total == pytest.approx(15.5)
    assert a.max == 9.0
    np.testing.assert_array_equal(
        a.counts, Histogram(base=1.0, n_buckets=6).counts + [1, 1, 1, 0, 1, 0]
    )


def test_histogram_merge_rejects_shape_mismatch():
    a = Histogram(base=1.0, n_buckets=6)
    with pytest.raises(ValueError, match="merge"):
        a.merge(Histogram(base=2.0, n_buckets=6))
    with pytest.raises(ValueError, match="merge"):
        a.merge(Histogram(base=1.0, n_buckets=7))


def test_histogram_validates_construction():
    with pytest.raises(ValueError, match="base"):
        Histogram(base=0.0)
    with pytest.raises(ValueError, match="n_buckets"):
        Histogram(n_buckets=0)


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
def test_registry_get_or_create_identity():
    r = MetricsRegistry()
    c1 = r.counter("reqs", kind="point")
    c2 = r.counter("reqs", kind="point")
    c3 = r.counter("reqs", kind="window")
    assert c1 is c2
    assert c1 is not c3
    c1.inc(3)
    assert r.counter("reqs", kind="point").value == 3


def test_registry_rejects_kind_and_shape_mismatch():
    r = MetricsRegistry()
    r.counter("thing")
    with pytest.raises(ValueError, match="already registered"):
        r.gauge("thing")
    r.histogram("lat", base=1e-6, n_buckets=28)
    with pytest.raises(ValueError, match="already registered"):
        r.histogram("lat", base=1.0, n_buckets=28)


def test_counter_rejects_negative_increment():
    c = Counter()
    with pytest.raises(ValueError, match="only go up"):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge()
    g.set(5)
    g.inc(2)
    g.dec(3)
    assert g.value == 4.0


def test_registry_export_formats():
    r = MetricsRegistry()
    r.counter("jobs", backend="thread").inc(4)
    r.gauge("depth").set(2)
    r.histogram("lat", base=1.0, n_buckets=4).record(3.0)
    dump = r.export()
    assert dump["jobs"] == [
        {"labels": {"backend": "thread"}, "kind": "counter", "value": 4.0}
    ]
    assert dump["depth"][0]["value"] == 2.0
    assert dump["lat"][0]["value"]["count"] == 1
    text = r.export_text()
    assert 'jobs{backend="thread"} 4' in text
    assert "lat_count 1" in text
    assert "lat_buckets" not in text  # structural keys stay out of the text form
    assert json.loads(r.export_json())["depth"][0]["kind"] == "gauge"


def test_registry_merge_sums_counters_and_adds_histogram_buckets():
    a, b, fleet = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    a.counter("serve.requests", kind="point").inc(10)
    b.counter("serve.requests", kind="point").inc(5)
    b.counter("serve.requests", kind="knn").inc(2)
    a.histogram("lat", base=1.0, n_buckets=6).record_many([0.5, 2.0])
    b.histogram("lat", base=1.0, n_buckets=6).record_many([4.0, 9.0])
    fleet.merge(a.export())
    fleet.merge(b.export())
    assert fleet.counter("serve.requests", kind="point").value == 15
    assert fleet.counter("serve.requests", kind="knn").value == 2
    merged = fleet.histogram("lat", base=1.0, n_buckets=6)
    assert merged.count == 4
    assert merged.total == pytest.approx(15.5)
    assert merged.max == 9.0
    np.testing.assert_array_equal(merged.counts, [1, 1, 1, 0, 1, 0])
    # The merged p99 is computed over the union of samples — the thing
    # per-server summary snapshots could never provide.
    assert merged.percentile(99) == 32.0


def test_registry_merge_gauges_keep_newest_stamp():
    a, b, fleet = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    a.gauge("serve.health_state").set(0)
    b.gauge("serve.health_state").set(2)  # set later -> newer stamp
    fleet.merge(b.export())
    fleet.merge(a.export())  # older snapshot merged second must not win
    assert fleet.gauge("serve.health_state").value == 2.0


def test_registry_merge_rejects_summary_only_histograms():
    fleet = MetricsRegistry()
    with pytest.raises(ValueError, match="buckets"):
        fleet.merge(
            {"lat": [{"labels": {}, "kind": "histogram",
                      "value": {"count": 1, "mean": 1.0, "max": 1.0,
                                "p50": 1.0, "p99": 1.0}}]}
        )


def test_registry_merge_roundtrips_through_json():
    a, fleet = MetricsRegistry(), MetricsRegistry()
    a.counter("jobs").inc(3)
    a.gauge("depth").set(7)
    a.histogram("lat", base=1.0, n_buckets=4).record(2.5)
    fleet.merge(json.loads(a.export_json()))
    assert fleet.counter("jobs").value == 3
    assert fleet.gauge("depth").value == 7.0
    assert fleet.histogram("lat", base=1.0, n_buckets=4).count == 1


# ----------------------------------------------------------------------
# Report (trace loading + rendering)
# ----------------------------------------------------------------------
def _rec(name, span_id, parent_id=None, start=0.0, duration=1.0, **attrs):
    return SpanRecord(
        name=name, span_id=span_id, parent_id=parent_id, start=start,
        duration=duration, attrs=attrs, pid=1, thread="main",
    )


def test_build_tree_orphans_become_roots():
    records = [
        _rec("child", "c", parent_id="gone"),
        _rec("root", "r", start=1.0),
        _rec("kid", "k", parent_id="r", start=2.0),
    ]
    roots, children = build_tree(records)
    assert [r.name for r in roots] == ["child", "root"]
    assert [r.name for r in children["r"]] == ["kid"]


def test_phase_totals_self_time_excludes_children():
    records = [
        _rec("build", "b", duration=1.0),
        _rec("build.train", "t", parent_id="b", duration=0.7),
    ]
    totals = phase_totals(records)
    assert totals["build"]["self_seconds"] == pytest.approx(0.3)
    assert totals["build.train"]["total_seconds"] == pytest.approx(0.7)
    assert totals["build"]["count"] == 1


def test_missing_spans():
    records = [_rec("build", "b"), _rec("query.refine", "q")]
    assert missing_spans(records, ["build", "serve.batch"]) == ["serve.batch"]
    assert missing_spans(records, ["build", "query.refine"]) == []


def test_render_report_mentions_phases_and_attrs():
    records = [
        _rec("build", "b", duration=1.0, index="ZM"),
        _rec("build.train", "t", parent_id="b", duration=0.7, method="SP"),
    ]
    text = render_report(records)
    assert "Per-phase cost breakdown" in text
    assert "Span tree" in text
    assert "build.train" in text
    assert "index=ZM" in text
    tree = render_tree(records, max_depth=1)
    assert "build.train" not in tree  # depth cut honoured


def test_load_trace_round_trip_and_errors(tmp_path):
    good = tmp_path / "trace.jsonl"
    good.write_text(
        json.dumps(_rec("build", "b").to_dict()) + "\n\n"
        + json.dumps(_rec("kid", "k", parent_id="b").to_dict()) + "\n"
    )
    records = load_trace(str(good))
    assert [r.name for r in records] == ["build", "kid"]

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"name": "x"}\nnot json\n')
    with pytest.raises(ValueError, match="malformed span line"):
        load_trace(str(bad))


# ----------------------------------------------------------------------
# REPRO_PARALLELISM spec parsing
# ----------------------------------------------------------------------
def test_from_spec_rejects_malformed_values():
    with pytest.raises(ValueError, match="accepted forms"):
        MapExecutor.from_spec("")
    with pytest.raises(ValueError, match="unknown backend"):
        MapExecutor.from_spec("gpu:4")
    with pytest.raises(ValueError, match="integer"):
        MapExecutor.from_spec("thread:4.5")
    with pytest.raises(ValueError, match="positive"):
        MapExecutor.from_spec("thread:0")
    with pytest.raises(ValueError, match="positive"):
        MapExecutor.from_spec("process:-2")


def test_resolve_executor_names_env_var_on_bad_spec(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "warp:9")
    with pytest.raises(ValueError, match=ENV_VAR):
        resolve_executor(None)


# ----------------------------------------------------------------------
# Distributed tracing: trace ids, adoption, the atomic JSONL sink
# ----------------------------------------------------------------------
def test_trace_id_root_is_own_id_and_descendants_inherit(tracer):
    with span("outer") as outer:
        with span("inner"):
            pass
    top = tracer.find("outer")[0]
    mid = tracer.find("inner")[0]
    assert top.trace_id == top.span_id
    assert mid.trace_id == top.trace_id
    with span("second"):
        pass
    other = tracer.find("second")[0]
    assert other.trace_id != top.trace_id  # each root starts a new trace


def test_ambient_seeds_parent_and_trace_id(tracer):
    with tracer.ambient("remote-parent", trace_id="remote-trace"):
        with span("seeded"):
            pass
    rec = tracer.find("seeded")[0]
    assert rec.parent_id == "remote-parent"
    assert rec.trace_id == "remote-trace"


def test_ambient_without_trace_id_uses_parent(tracer):
    with tracer.ambient("remote-parent"):
        with span("seeded"):
            pass
    assert tracer.find("seeded")[0].trace_id == "remote-parent"


def test_adopt_stamps_trace_id_over_whole_batch(tracer):
    with tracer.capture() as captured:
        with tracer.span("w.root"):
            with tracer.span("w.child"):
                pass
    tracer.adopt(
        [r.to_dict() for r in captured],
        parent_id="caller-span",
        trace_id="caller-trace",
    )
    root = tracer.find("w.root")[0]
    child = tracer.find("w.child")[0]
    assert root.parent_id == "caller-span"
    assert root.trace_id == "caller-trace"
    assert child.trace_id == "caller-trace"  # non-roots stamped too


def test_disabled_span_has_no_trace_identity():
    t = get_tracer()
    assert not t.enabled
    with span("anything") as s:
        # The shared no-op carries no ids — the router keys its "skip the
        # cross-process trace context entirely" fast path on exactly this.
        assert s.span_id is None
        assert s.trace_id is None


def test_new_request_ids_are_unique():
    from repro.obs.trace import new_request_id

    ids = {new_request_id() for _ in range(100)}
    assert len(ids) == 100


def test_error_spans_tag_exception_type(tracer):
    with pytest.raises(RuntimeError):
        with span("doomed"):
            raise RuntimeError("boom")
    rec = tracer.find("doomed")[0]
    assert rec.attrs["error"] == "RuntimeError"


def test_jsonl_sink_concurrent_writers_stay_line_atomic(tmp_path, tracer):
    # Many threads streaming spans into one REPRO_TRACE file must never
    # interleave or truncate each other's lines: the sink writes each
    # record as a single os.write to an O_APPEND fd.
    import threading as _threading

    path = tmp_path / "concurrent.jsonl"
    old_ring = tracer.ring_size
    tracer.enable(path=str(path), ring_size=16)  # small ring: sink is the record
    n_threads, n_spans = 8, 150
    padding = "x" * 200  # fat lines make torn writes easy to catch

    def worker(tid):
        for i in range(n_spans):
            with span("atomic.check", tid=tid, i=i, pad=padding):
                pass

    threads = [
        _threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    tracer.disable()
    tracer.ring_size = old_ring  # don't leak the shrunken ring to other tests
    lines = path.read_text().splitlines()
    assert len(lines) == n_threads * n_spans
    seen = set()
    for line in lines:
        rec = json.loads(line)  # raises on any torn/interleaved line
        assert rec["name"] == "atomic.check"
        assert rec["attrs"]["pad"] == padding
        seen.add((rec["attrs"]["tid"], rec["attrs"]["i"]))
    assert len(seen) == n_threads * n_spans  # no line lost or duplicated


def test_build_tree_marks_adopted_orphans():
    # An adopted span whose parent fell out of the ring is promoted to a
    # root *and* tagged, so the report distinguishes it from real roots.
    records = [
        _rec("adopted", "a", parent_id="evicted"),
        _rec("root", "r", start=1.0),
    ]
    roots, _children = build_tree(records)
    by_name = {r.name: r for r in roots}
    assert by_name["adopted"].attrs.get("orphan") is True
    assert "orphan" not in by_name["root"].attrs
    assert "orphan=True" in render_report(records)


# ----------------------------------------------------------------------
# MetricsRegistry.merge edge cases (the fleet-fold contract)
# ----------------------------------------------------------------------
def test_registry_merge_disjoint_series_is_union():
    a, b, fleet = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    a.counter("only.a").inc(1)
    b.gauge("only.b").set(2.0)
    fleet.merge(a.export())
    fleet.merge(b.export())
    exported = fleet.export()
    assert set(exported) == {"only.a", "only.b"}
    assert fleet.counter("only.a").value == 1
    assert fleet.gauge("only.b").value == 2.0


def test_registry_merge_gauge_stamp_tie_incoming_wins():
    fleet = MetricsRegistry()
    fleet.merge({"g": [{"labels": {}, "kind": "gauge", "value": 1.0,
                        "updated_at": 100.0}]})
    fleet.merge({"g": [{"labels": {}, "kind": "gauge", "value": 2.0,
                        "updated_at": 100.0}]})
    assert fleet.gauge("g").value == 2.0  # >= : equal stamps take incoming


def test_registry_merge_empty_export_is_identity():
    fleet = MetricsRegistry()
    fleet.counter("kept").inc(3)
    before = fleet.export()
    fleet.merge({})
    fleet.merge(MetricsRegistry().export())
    assert fleet.export() == before


def test_registry_merge_histogram_boundary_mismatch_rejected():
    fleet = MetricsRegistry()
    fleet.histogram("lat", base=1.0, n_buckets=4).record(2.0)
    incoming = MetricsRegistry()
    incoming.histogram("lat", base=2.0, n_buckets=4).record(2.0)
    with pytest.raises(ValueError, match="base"):
        fleet.merge(incoming.export())
    wider = MetricsRegistry()
    wider.histogram("lat", base=1.0, n_buckets=8).record(2.0)
    with pytest.raises(ValueError, match="n_buckets"):
        fleet.merge(wider.export())


def test_registry_from_export_reproduces_text_lines():
    from repro.obs.metrics import registry_from_export

    source = MetricsRegistry()
    source.counter("serve.requests", kind="point").inc(5)
    source.gauge("depth").set(2.0)
    clone = registry_from_export(source.export())
    assert clone.export_text() == source.export_text()


def test_histogram_record_count_batches():
    h = Histogram(base=1.0, n_buckets=4)
    h.record(2.0, count=10)
    assert h.count == 10
    assert h.total == pytest.approx(20.0)
