"""Unit tests for Hilbert curve codes."""

import itertools

import numpy as np
import pytest

from repro.spatial.hilbert import hilbert_decode, hilbert_encode, hilbert_values
from repro.spatial.rect import Rect


def test_round_trip_2d():
    rng = np.random.default_rng(0)
    coords = rng.integers(0, 2**16, (500, 2))
    decoded = hilbert_decode(hilbert_encode(coords), d=2)
    np.testing.assert_array_equal(decoded, coords.astype(np.uint64))


def test_round_trip_3d():
    rng = np.random.default_rng(1)
    coords = rng.integers(0, 2**8, (300, 3))
    decoded = hilbert_decode(hilbert_encode(coords, bits=8), d=3, bits=8)
    np.testing.assert_array_equal(decoded, coords.astype(np.uint64))


def test_bijective_small_grid():
    grid = np.array(list(itertools.product(range(8), range(8))))
    codes = hilbert_encode(grid, bits=3)
    assert sorted(codes.tolist()) == list(range(64))


@pytest.mark.parametrize("bits", [1, 2, 3, 4])
def test_adjacency_2d(bits):
    """Consecutive Hilbert codes are spatially adjacent — the curve's
    defining property and the reason HRR's packed leaves have tight MBRs."""
    size = 2**bits
    grid = np.array(list(itertools.product(range(size), range(size))))
    codes = hilbert_encode(grid, bits=bits)
    order = np.argsort(codes)
    steps = np.abs(np.diff(grid[order].astype(np.int64), axis=0)).sum(axis=1)
    assert np.all(steps == 1)


def test_adjacency_3d():
    grid = np.array(list(itertools.product(range(4), repeat=3)))
    codes = hilbert_encode(grid, bits=2)
    order = np.argsort(codes)
    steps = np.abs(np.diff(grid[order].astype(np.int64), axis=0)).sum(axis=1)
    assert np.all(steps == 1)


def test_locality_beats_morton():
    """Average |Δcoords| between successive curve positions is smaller for
    Hilbert than for Morton on the same grid (Hilbert has no long jumps)."""
    from repro.spatial.zcurve import morton_encode

    grid = np.array(list(itertools.product(range(16), range(16))))
    for encode in (hilbert_encode,):
        codes = encode(grid, bits=4)
        order = np.argsort(codes)
        h_jump = np.abs(np.diff(grid[order].astype(np.int64), axis=0)).sum(axis=1).max()
    z_codes = morton_encode(grid, bits=4)
    z_order = np.argsort(z_codes)
    z_jump = np.abs(np.diff(grid[z_order].astype(np.int64), axis=0)).sum(axis=1).max()
    assert h_jump == 1
    assert z_jump > 1


def test_empty_input():
    assert len(hilbert_encode(np.empty((0, 2), dtype=int))) == 0


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        hilbert_encode(np.array([[-1, 0]]))
    with pytest.raises(ValueError):
        hilbert_encode(np.array([[0, 2**4]]), bits=4)


def test_hilbert_values_continuous():
    pts = np.random.default_rng(2).random((100, 2))
    vals = hilbert_values(pts, Rect.unit(2), bits=8)
    assert vals.dtype == np.uint64
    assert len(vals) == 100
