"""A PGM-style model builder: piecewise-linear CDFs with *provable* bounds.

The paper (Section IV-A) observes that indices like the PGM-index get
theoretical query-error bounds from piecewise-linear CDF approximation and
defers extending this to learned spatial indices to future work.  This
module is that extension: :class:`PGMBuilder` is a drop-in
:class:`~repro.indices.base.ModelBuilder` whose models carry error bounds
derived *by construction* —

    err <= ceil(epsilon * (n - 1)) + 1 + (longest duplicate-key run)

— no full-data prediction pass needed (the ``M(n)`` term of Section VI-B
disappears).  Because every base index treats the model as an opaque
``predict``, PGM-built models work in ZM, ML-Index, RSMI and LISA
unchanged; they can also be combined with ELSI's reduced training sets by
fitting the PLA on a method's ``D_S`` (at the cost of the guarantee
degrading from proof to measurement, so this builder keeps the OG-style
full fit).
"""

from __future__ import annotations

import time

import numpy as np

from repro.indices.base import BuildStats, MapFn, ModelBuilder, TrainedModel
from repro.ml.pla import fit_pla

__all__ = ["PGMBuilder"]


def _longest_duplicate_run(sorted_keys: np.ndarray) -> int:
    """Length of the longest run of equal keys (0 when all distinct)."""
    if len(sorted_keys) < 2:
        return 0
    change = np.flatnonzero(np.diff(sorted_keys) != 0)
    boundaries = np.concatenate([[-1], change, [len(sorted_keys) - 1]])
    return int(np.max(np.diff(boundaries)) - 1)


class PGMBuilder(ModelBuilder):
    """Build index models as epsilon-guaranteed piecewise-linear CDFs.

    Parameters
    ----------
    epsilon_positions:
        The guarantee in *address* units: the PLA's rank error stays within
        this many positions (plus rounding and duplicate-run slack).
    """

    def __init__(self, epsilon_positions: int = 32) -> None:
        if epsilon_positions < 1:
            raise ValueError(
                f"epsilon_positions must be >= 1, got {epsilon_positions}"
            )
        self.epsilon_positions = epsilon_positions

    def build_model(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        stats: BuildStats,
        map_fn: MapFn | None = None,
    ) -> TrainedModel:
        n = len(sorted_keys)
        if n == 0:
            raise ValueError("cannot build a model over an empty partition")
        started = time.perf_counter()
        key_lo, key_hi = float(sorted_keys[0]), float(sorted_keys[-1])
        span = key_hi - key_lo
        normalised = (
            (sorted_keys - key_lo) / span if span > 0 else np.zeros(n)
        )
        ranks = np.arange(n, dtype=np.float64) / max(n - 1, 1)
        epsilon_norm = self.epsilon_positions / max(n - 1, 1)
        pla = fit_pla(normalised, ranks, epsilon_norm)
        stats.train_seconds += time.perf_counter() - started

        model = TrainedModel(
            net=pla,
            key_lo=key_lo,
            key_hi=key_hi,
            n_indexed=n,
            method_name="PGM",
            train_set_size=n,
        )
        # Bounds by construction: epsilon in positions, +1 for rounding to
        # integer addresses, + the longest equal-key run (the PLA predicts
        # one value per key; duplicates share it).
        slack = self.epsilon_positions + 1 + _longest_duplicate_run(sorted_keys)
        model.err_l = slack
        model.err_u = slack
        stats.train_set_size += n
        stats.n_models += 1
        stats.methods_used["PGM"] = stats.methods_used.get("PGM", 0) + 1
        return model
