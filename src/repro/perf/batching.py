"""Fused, dtype-aware batch refinement kernels.

The per-query loop each index used to run — ``store.scan`` per key, then a
NumPy membership test over the scanned slice — costs one interpreter
round-trip per query plus a full slice materialisation.  The kernels here
replace both with single-pass vectorised refinement over the whole batch:

1. **Group + charge**: per-query predicted scan ranges are clipped, merged
   into disjoint groups and charged to the store's block-read accounting in
   one vectorised call (:meth:`~repro.storage.blocks.BlockStore.charge_block_reads`)
   — overlapping ranges (common under RMI error bounds and insert widening)
   are read and charged once, exactly as the previous per-group
   ``store.scan`` loop did, but without materialising the group slices
   (batch membership never used the gathered rows).
2. **Fused gather + predicate**: every query's candidate run is flattened
   into one row-index vector and refined with a *progressive* per-dimension
   predicate — each dimension's comparison narrows the surviving rows before
   the next gathers — instead of gathering an (n, d) slab and reducing with
   ``np.all``.  Survivors are committed with one fancy-index assignment.
3. **Dtype-aware boundaries**: ``searchsorted`` runs in the store's key
   dtype.  Query-side boundary values are cast through the same
   round-to-nearest conversion the stored keys went through; because the
   cast is monotone (x >= y implies f32(x) >= f32(y)), the cast boundaries
   bracket a *superset* of the true candidates, and the exact float64
   coordinate / rectangle predicates eliminate the extras.  Searching a
   float32 key column with float32 boundaries halves the binary-search
   memory traffic instead of silently promoting every probe to float64.

Results are exactly what the scalar loops produce: the same predicates over
the same (or superset) candidate sets, with false candidates removed by the
exact coordinate checks.
"""

from __future__ import annotations

import numpy as np

from repro.storage.blocks import BlockStore

__all__ = [
    "batch_point_membership",
    "batch_window_refine",
    "cast_boundaries",
    "merge_ranges",
]

#: Flattened-run chunk bound for the window kernel: caps peak gather memory
#: (row indices + per-dimension masks) while keeping each chunk big enough
#: to amortise the NumPy dispatch overhead.
_WINDOW_CHUNK_ROWS = 1 << 22

#: Run length above which a window takes the contiguous-slice path instead
#: of joining the flattened gather.  Long runs are dominated by the
#: predicate itself, where contiguous column reads beat materialising an
#: int64 row-index vector and fancy-gathering through it; short runs are
#: dominated by per-window dispatch overhead, which the flattened kernel
#: amortises across the whole batch.
_SLICE_RUN_ROWS = 2048


def cast_boundaries(values: np.ndarray, key_dtype: np.dtype) -> np.ndarray:
    """Cast query-side boundary keys to the store's key dtype.

    Round-to-nearest casting is monotone, so for any stored key ``s``
    (already in ``key_dtype``) and float64 boundary ``a``: ``s >= a``
    implies ``s >= cast(a)`` and ``s <= b`` implies ``s <= cast(b)`` —
    the cast interval brackets a superset of the true candidates.  This is
    the whole "bound inflation" needed for quantised key columns; no
    directed rounding required.
    """
    return np.asarray(values).astype(key_dtype, copy=False)


def merge_ranges(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge half-open integer ranges into disjoint sorted groups.

    Empty ranges (``hi <= lo``) are dropped.  Returns the merged groups'
    ``(starts, ends)`` arrays, sorted ascending.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    keep = hi > lo
    lo, hi = lo[keep], hi[keep]
    if len(lo) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = np.argsort(lo, kind="stable")
    lo, hi = lo[order], hi[order]
    running_end = np.maximum.accumulate(hi)
    # A range starts a new group when it begins past everything seen so far.
    new_group = np.empty(len(lo), dtype=bool)
    new_group[0] = True
    new_group[1:] = lo[1:] > running_end[:-1]
    starts = lo[new_group]
    group_last = np.append(np.flatnonzero(new_group)[1:] - 1, len(lo) - 1)
    ends = running_end[group_last]
    return starts, ends


def _flatten_runs(
    cand_lo: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row indices and owner ids for every query's candidate run, flattened.

    Rows within a run stay in ascending (scan) order and runs follow query
    order, so ``owner`` is non-decreasing.
    """
    total = int(counts.sum())
    owner = np.repeat(np.arange(len(counts)), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
    rows = np.arange(total) - np.repeat(offsets, counts) + np.repeat(cand_lo, counts)
    return rows, owner


def batch_point_membership(
    store: BlockStore,
    lo: np.ndarray,
    hi: np.ndarray,
    query_keys: np.ndarray,
    query_points: np.ndarray,
    atol: float = 0.0,
) -> np.ndarray:
    """One membership bool per query, given per-query scan ranges.

    Parameters
    ----------
    store:
        The key-sorted store; merged groups are charged through
        :meth:`~repro.storage.blocks.BlockStore.charge_block_reads` so
        block-read accounting reflects the fused gathers.
    lo, hi:
        Per-query half-open scan ranges (model prediction ± error bounds,
        already widened for inserts); clipped to the store here.
    query_keys:
        Mapped key per query (same mapping — including any dtype cast —
        that keyed the store).
    query_points:
        (b, d) query coordinates; a query hits iff some row in its range
        has a key within ``atol`` of ``query_keys`` and equal coordinates.
    """
    n = len(store)
    b = len(query_keys)
    out = np.zeros(b, dtype=bool)
    # Serving-path edge cases: an empty request batch has nothing to do,
    # and a single-point batch degenerates to the scalar predict-and-scan
    # (one store.scan, no range merging or flattened-run bookkeeping).
    if n == 0 or b == 0:
        return out
    lo = np.clip(np.asarray(lo, dtype=np.int64), 0, n)
    hi = np.clip(np.asarray(hi, dtype=np.int64), 0, n)
    if b == 1:
        pts, keys, _ids = store.scan(int(lo[0]), int(hi[0]))
        if len(pts):
            match = np.abs(keys.astype(np.float64) - float(query_keys[0])) <= atol
            out[0] = bool(np.any(match & np.all(pts == query_points[0], axis=1)))
        return out

    # Charge block reads once per merged group — same accounting as the old
    # per-group store.scan loop, with no slice materialisation.
    store.charge_block_reads(*merge_ranges(lo, hi))

    # Candidate runs: rows whose key matches, intersected with the range.
    # searchsorted runs in the store's key dtype; boundary values go through
    # the same monotone cast as the stored keys (see cast_boundaries).
    key_dtype = store.keys.dtype
    if atol == 0.0:
        probe = cast_boundaries(query_keys, key_dtype)
        run_lo = np.searchsorted(store.keys, probe, side="left")
        run_hi = np.searchsorted(store.keys, probe, side="right")
    else:
        keys64 = np.asarray(query_keys, dtype=np.float64)
        run_lo = np.searchsorted(
            store.keys, cast_boundaries(keys64 - atol, key_dtype), side="left"
        )
        run_hi = np.searchsorted(
            store.keys, cast_boundaries(keys64 + atol, key_dtype), side="right"
        )
    cand_lo = np.maximum(run_lo, lo)
    cand_hi = np.minimum(run_hi, hi)
    counts = np.maximum(cand_hi - cand_lo, 0)
    if int(counts.sum()) == 0:
        return out

    d = store.points.shape[1]
    if int(counts.max()) == 1:
        # Unique-key fast path (the common case away from duplicate keys):
        # every run is a single row, so no flattening bookkeeping is needed.
        sel = counts > 0
        rows = cand_lo[sel]
        equal = np.ones(len(rows), dtype=bool)
        for dim in range(d):
            equal &= store.points[rows, dim] == query_points[sel, dim]
        out[sel] = equal
        return out

    rows, owner = _flatten_runs(cand_lo, counts)
    # Progressive per-dimension narrowing: each comparison shrinks the
    # surviving rows before the next dimension gathers, so mismatches
    # (the overwhelming majority) are touched exactly once.
    for dim in range(d):
        keep = store.points[rows, dim] == query_points[owner, dim]
        rows = rows[keep]
        owner = owner[keep]
        if len(rows) == 0:
            return out
    out[owner] = True
    return out


def batch_window_refine(
    store: BlockStore,
    lo: np.ndarray,
    hi: np.ndarray,
    win_lo: np.ndarray,
    win_hi: np.ndarray,
) -> list[np.ndarray]:
    """Fused rectangle refinement over per-window scan ranges.

    Replaces the per-window ``store.scan`` + ``Rect.contains_points`` loop
    — the dominant cost of batch window queries at the 1e6-point scale —
    with a hybrid single-pass kernel: windows with long scan runs
    (>= ``_SLICE_RUN_ROWS``) narrow progressively over their contiguous
    slice, and the remaining short runs are flattened into one gather and
    refined with a shared per-dimension predicate.

    Parameters
    ----------
    store:
        Key-sorted store; block reads are charged per merged group.
    lo, hi:
        Per-window half-open scan ranges over the sorted order (already
        exact boundary ranks or conservative supersets); clipped here.
    win_lo, win_hi:
        (w, d) closed rectangle bounds per window, in float64.

    Returns one ``(m_i, d)`` float64 array per window, rows in scan (key)
    order — exactly what scanning and filtering each window individually
    produces, because the flattened runs preserve scan order and the
    predicate is the same closed-interval test ``lo <= x <= hi``.
    """
    n = len(store)
    w = len(lo)
    d = store.points.shape[1]
    empty = np.empty((0, d))
    if w == 0:
        return []
    lo = np.clip(np.asarray(lo, dtype=np.int64), 0, n)
    hi = np.clip(np.asarray(hi, dtype=np.int64), 0, n)
    win_lo = np.asarray(win_lo, dtype=np.float64)
    win_hi = np.asarray(win_hi, dtype=np.float64)
    if w == 1:
        # Contiguity fast path: a single window is one contiguous slice.
        pts, _keys, _ids = store.scan(int(lo[0]), int(hi[0]))
        if len(pts) == 0:
            return [empty]
        mask = np.ones(len(pts), dtype=bool)
        for dim in range(d):
            mask &= (pts[:, dim] >= win_lo[0, dim]) & (pts[:, dim] <= win_hi[0, dim])
        return [pts[mask]]

    store.charge_block_reads(*merge_ranges(lo, hi))
    counts = np.maximum(hi - lo, 0)
    results: list[np.ndarray] = [empty] * w

    # Long runs: progressive narrowing over the contiguous slice — the
    # first dimension's predicate runs on a strided column view with
    # scalar bounds (no row-index vector, no owner gathers), and later
    # dimensions only touch its survivors.
    big = np.flatnonzero(counts >= _SLICE_RUN_ROWS)
    for i in big:
        pts = store.points[lo[i] : hi[i]]
        keep = np.flatnonzero(
            (pts[:, 0] >= win_lo[i, 0]) & (pts[:, 0] <= win_hi[i, 0])
        )
        for dim in range(1, d):
            vals = pts[keep, dim]
            keep = keep[(vals >= win_lo[i, dim]) & (vals <= win_hi[i, dim])]
            if len(keep) == 0:
                break
        if len(keep):
            results[i] = pts[keep]
    if len(big):
        counts = counts.copy()
        counts[big] = 0
        if int(counts.sum()) == 0:
            return results

    # Chunk over windows so the flattened row vector stays bounded; each
    # chunk is still thousands of windows at serving batch sizes.
    boundaries = np.concatenate(([0], np.cumsum(counts)))
    start = 0
    while start < w:
        end = start + 1
        while end < w and boundaries[end + 1] - boundaries[start] <= _WINDOW_CHUNK_ROWS:
            end += 1
        chunk_counts = counts[start:end]
        if int(chunk_counts.sum()) == 0:
            start = end
            continue
        rows, owner = _flatten_runs(lo[start:end], chunk_counts)
        owner += start
        for dim in range(d):
            keep = (store.points[rows, dim] >= win_lo[owner, dim]) & (
                store.points[rows, dim] <= win_hi[owner, dim]
            )
            rows = rows[keep]
            owner = owner[keep]
            if len(rows) == 0:
                break
        if len(rows):
            # owner is non-decreasing, so each window's survivors form one
            # contiguous segment of `rows`, still in scan order.
            hits = np.bincount(owner - start, minlength=end - start)
            gathered = store.points[rows]
            splits = np.cumsum(hits)[:-1]
            for off, part in enumerate(np.split(gathered, splits)):
                if len(part):
                    results[start + off] = part
        start = end
    return results
