"""Training loops for the FFNs used across ELSI.

The paper trains with a learning rate of 0.01 for 500 epochs using Adam and
an L2 loss (Section VII-B1).  Those are the defaults in :class:`TrainConfig`.
Training cost is the quantity ELSI reduces — ``T(n)`` in the Section VI cost
model — so the loop reports elapsed time and epochs alongside the loss.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.ml.adam import Adam
from repro.ml.ffn import FFN

__all__ = ["TrainConfig", "TrainResult", "train_regressor"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters for :func:`train_regressor`.

    ``epochs=500`` and ``lr=0.01`` follow the paper.  ``batch_size=None``
    means full-batch training, which is what small training sets (the whole
    point of ELSI) make affordable.  ``tolerance`` allows early stopping once
    the loss improvement stalls, bounding wasted epochs on tiny sets.
    """

    epochs: int = 500
    lr: float = 0.01
    batch_size: int | None = None
    tolerance: float = 1e-9
    patience: int = 50
    seed: int = 0


@dataclass(frozen=True)
class TrainResult:
    """Outcome of a training run."""

    final_loss: float
    epochs_run: int
    elapsed_seconds: float
    loss_history: tuple[float, ...]


def train_regressor(
    model: FFN,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig | None = None,
) -> TrainResult:
    """Train ``model`` to regress ``y`` on ``x`` with Adam + L2 loss.

    Mutates ``model`` in place and returns a :class:`TrainResult` with the
    loss trajectory, so callers (e.g. the method scorer's ground-truth
    collection) can record the training cost.
    """
    cfg = config or TrainConfig()
    x2 = np.asarray(x, dtype=np.float64)
    y2 = np.asarray(y, dtype=np.float64)
    if x2.ndim == 1:
        x2 = x2[:, None]
    if y2.ndim == 1:
        y2 = y2[:, None]
    n = x2.shape[0]
    if n == 0:
        raise ValueError("cannot train on an empty data set")
    if y2.shape[0] != n:
        raise ValueError(f"x has {n} rows but y has {y2.shape[0]}")

    optimizer = Adam(model.parameters(), lr=cfg.lr)
    rng = np.random.default_rng(cfg.seed)
    history: list[float] = []
    best_loss = np.inf
    stale_epochs = 0
    started = time.perf_counter()
    epochs_run = 0

    for epoch in range(cfg.epochs):
        epochs_run = epoch + 1
        if cfg.batch_size is None or cfg.batch_size >= n:
            loss, grads = model.loss_and_gradients(x2, y2)
            optimizer.step(grads)
        else:
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, cfg.batch_size):
                batch = order[start : start + cfg.batch_size]
                loss, grads = model.loss_and_gradients(x2[batch], y2[batch])
                optimizer.step(grads)
                losses.append(loss)
            loss = float(np.mean(losses))
        history.append(loss)

        if loss < best_loss - cfg.tolerance:
            best_loss = loss
            stale_epochs = 0
        else:
            stale_epochs += 1
            if stale_epochs >= cfg.patience:
                break

    elapsed = time.perf_counter() - started
    return TrainResult(
        final_loss=history[-1],
        epochs_run=epochs_run,
        elapsed_seconds=elapsed,
        loss_history=tuple(history),
    )
