"""Shared R-tree machinery for the HRR and RR* competitors.

Both indices store points in leaf nodes with MBRs and answer queries by MBR
pruning; they differ only in construction (Hilbert bulk-loading vs. R*-style
insertion).  This module holds the node structure and the exact query
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import BestFirstKNN
from repro.spatial.rect import Rect

__all__ = ["RTreeNode", "rtree_knn", "rtree_point_query", "rtree_window_query"]


@dataclass
class RTreeNode:
    """An R-tree node: leaves hold points, internal nodes hold children."""

    mbr: Rect
    children: list["RTreeNode"] = field(default_factory=list)
    points: np.ndarray | None = None
    level: int = 0  # 0 = leaf

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def recompute_mbr(self) -> None:
        """Tighten the MBR to the current contents."""
        if self.is_leaf:
            assert self.points is not None and len(self.points) > 0
            self.mbr = Rect.bounding(self.points)
        else:
            assert self.children
            mbr = self.children[0].mbr
            for child in self.children[1:]:
                mbr = mbr.union(child.mbr)
            self.mbr = mbr

    def count_points(self) -> int:
        if self.is_leaf:
            return 0 if self.points is None else len(self.points)
        return sum(c.count_points() for c in self.children)


def rtree_point_query(root: RTreeNode, point: np.ndarray) -> bool:
    """Exact membership test with MBR pruning."""
    q = np.asarray(point, dtype=np.float64)
    stack = [root]
    while stack:
        node = stack.pop()
        if not node.mbr.contains_point(q):
            continue
        if node.is_leaf:
            assert node.points is not None
            if len(node.points) and np.any(np.all(node.points == q, axis=1)):
                return True
        else:
            stack.extend(node.children)
    return False


def rtree_window_query(root: RTreeNode, window: Rect) -> np.ndarray:
    """Exact window query with MBR pruning."""
    results: list[np.ndarray] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if not node.mbr.intersects(window):
            continue
        if node.is_leaf:
            assert node.points is not None
            if len(node.points):
                inside = node.points[window.contains_points(node.points)]
                if len(inside):
                    results.append(inside)
        else:
            stack.extend(node.children)
    if not results:
        return np.empty((0, window.ndim))
    return np.vstack(results)


def rtree_knn(root: RTreeNode, point: np.ndarray, k: int) -> np.ndarray:
    """Exact best-first kNN over node MINDIST bounds."""
    search = BestFirstKNN(point, k)
    search.push(root.mbr.min_distance_sq(point), root)
    while True:
        payload = search.pop()
        if payload is None:
            return search.results()
        node: RTreeNode = payload
        if node.is_leaf:
            assert node.points is not None
            if len(node.points):
                search.push_points(node.points)
        else:
            for child in node.children:
                search.push(child.mbr.min_distance_sq(point), child)
