"""Geometric and statistical substrate shared by every index in the repo.

- :mod:`repro.spatial.rect` — axis-aligned rectangle (MBR) algebra,
- :mod:`repro.spatial.zcurve` — d-dimensional Morton (Z-order) codes,
- :mod:`repro.spatial.hilbert` — d-dimensional Hilbert codes,
- :mod:`repro.spatial.cdf` — empirical CDFs and the Kolmogorov–Smirnov
  dissimilarity of Section III (Definition 2),
- :mod:`repro.spatial.quadtree` — 2^d-ary space partitioning (Algorithm 2),
- :mod:`repro.spatial.kmeans` — Lloyd's k-means with k-means++ seeding,
- :mod:`repro.spatial.idistance` — the iDistance mapping used by ML-Index.
"""

from repro.spatial.cdf import dissimilarity, empirical_cdf, ks_distance, similarity
from repro.spatial.hilbert import hilbert_decode, hilbert_encode
from repro.spatial.kmeans import KMeansResult, kmeans
from repro.spatial.quadtree import QuadTree, QuadTreeNode
from repro.spatial.rect import Rect
from repro.spatial.zcurve import morton_decode, morton_encode

__all__ = [
    "KMeansResult",
    "QuadTree",
    "QuadTreeNode",
    "Rect",
    "dissimilarity",
    "empirical_cdf",
    "hilbert_decode",
    "hilbert_encode",
    "kmeans",
    "ks_distance",
    "morton_decode",
    "morton_encode",
    "similarity",
]
