"""Unit tests for block storage."""

import numpy as np
import pytest

from repro.storage.blocks import BlockStore


@pytest.fixture()
def store():
    rng = np.random.default_rng(0)
    pts = rng.random((250, 2))
    keys = rng.random(250)
    return BlockStore(pts, keys, block_size=50), pts, keys


def test_sorted_by_key(store):
    s, _pts, _keys = store
    assert np.all(np.diff(s.keys) >= 0)


def test_points_follow_keys(store):
    s, pts, keys = store
    order = np.argsort(keys, kind="stable")
    np.testing.assert_array_equal(s.points, pts[order])
    np.testing.assert_array_equal(s.ids, order)


def test_n_blocks(store):
    s, _, _ = store
    assert s.n_blocks == 5


def test_scan_clipping(store):
    s, _, _ = store
    pts, keys, ids = s.scan(-10, 10_000)
    assert len(pts) == 250
    pts, keys, ids = s.scan(200, 100)
    assert len(pts) == 0


def test_scan_key_range_inclusive(store):
    s, _, _ = store
    pts, keys, _ids = s.scan_key_range(0.25, 0.75)
    assert np.all((keys >= 0.25) & (keys <= 0.75))
    # Every qualifying key is returned.
    assert len(keys) == int(((s.keys >= 0.25) & (s.keys <= 0.75)).sum())


def test_block_reads_accounting(store):
    s, _, _ = store
    s.reset_block_reads()
    s.scan(0, 50)  # exactly one block
    assert s.block_reads == 1
    s.scan(49, 51)  # straddles two blocks
    assert s.block_reads == 3
    s.scan(10, 10)  # empty
    assert s.block_reads == 3


def test_rank_of_key(store):
    s, _, _ = store
    key = s.keys[100]
    assert s.keys[s.rank_of_key(key)] == key


def test_block_of(store):
    s, _, _ = store
    assert s.block_of(0) == 0
    assert s.block_of(50) == 1
    with pytest.raises(IndexError):
        s.block_of(250)


def test_duplicate_keys_kept():
    pts = np.array([[0.1, 0.1], [0.2, 0.2], [0.3, 0.3]])
    keys = np.array([5.0, 5.0, 5.0])
    s = BlockStore(pts, keys)
    scanned, _, _ = s.scan_key_range(5.0, 5.0)
    assert len(scanned) == 3


def test_invalid_inputs():
    pts = np.zeros((3, 2))
    with pytest.raises(ValueError):
        BlockStore(pts, np.zeros(2))
    with pytest.raises(ValueError):
        BlockStore(pts, np.zeros(3), block_size=0)
    with pytest.raises(ValueError):
        BlockStore(pts, np.zeros(3), ids=np.zeros(2, dtype=np.int64))


def test_custom_ids():
    pts = np.array([[0.2, 0.2], [0.1, 0.1]])
    keys = np.array([2.0, 1.0])
    ids = np.array([70, 71])
    s = BlockStore(pts, keys, ids=ids)
    np.testing.assert_array_equal(s.ids, [71, 70])
