"""Query-path metric helpers shared by the index implementations.

The predicted-error distribution — how wide the scan ranges are that the
models hand the refinement step — is the per-query face of the paper's
|Error| column.  :func:`record_range_widths` folds a batch of predicted
range widths into a registry histogram, and is a single boolean check when
observability is disabled so the query hot paths stay unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.trace import enabled

__all__ = ["record_range_widths"]

#: Range widths are point counts, so bucket from 1 upwards (1, 2, 4, ...).
_WIDTH_BASE = 1.0
_WIDTH_BUCKETS = 28


def record_range_widths(
    index_name: str, lo: np.ndarray, hi: np.ndarray
) -> None:
    """Record ``hi - lo`` scan-range widths for one predicted batch.

    No-op unless tracing/observability is enabled; the widths land in the
    ``query.predicted_range_width`` histogram labelled by index.
    """
    if not enabled():
        return
    widths = np.maximum(np.asarray(hi) - np.asarray(lo), 0)
    if len(widths) == 0:
        return
    hist = get_registry().histogram(
        "query.predicted_range_width",
        base=_WIDTH_BASE,
        n_buckets=_WIDTH_BUCKETS,
        index=index_name,
    )
    hist.record_many(widths)
