"""The ELSI build processor: Algorithm 1's ``compute_set`` + ``train`` path.

:class:`ELSIModelBuilder` is a :class:`~repro.indices.base.ModelBuilder`
that a base index uses in place of OG training.  Per model it:

1. picks a build method — fixed (``method=``), learned (``selector=``, the
   method scorer of Section IV-B1), or uniformly random (``random_choice=``,
   the "Rand" ablation of Table II);
2. runs the method's ``compute_set`` to obtain the reduced training set
   ``D_S`` (falling back SP → OG if the method fails, e.g. MR with no match
   within ε);
3. trains the index model on ``D_S`` — or loads MR's pre-trained weights;
4. measures the empirical error bounds over the *full* partition, which is
   the ``M(n)`` term of Section VI-B and what keeps predict-and-scan exact.

All component times are recorded in the index's
:class:`~repro.indices.base.BuildStats` for the Table I decomposition.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import ELSIConfig
from repro.core.methods.base import BuildMethod, MethodResult, make_method_pool
from repro.core.methods.model_reuse import MethodFailure
from repro.indices.base import (
    BuildStats,
    MapFn,
    ModelBuilder,
    TrainedModel,
    fit_cdf_model,
)
from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig
from repro.spatial.cdf import uniform_dissimilarity

__all__ = ["ELSIModelBuilder"]


class ELSIModelBuilder(ModelBuilder):
    """ELSI's drop-in builder for any map-and-sort base index.

    Parameters
    ----------
    config:
        System parameters (method pool, λ, FFN hyperparameters, ...).
    selector:
        A trained method selector (``select(n, dist_u, applicable, lam, w_q)
        -> name``); when given, it drives method choice per model.
    method:
        Fixed method name; overrides the selector.
    random_choice:
        Pick uniformly among applicable methods (the Table II "Rand"
        ablation).
    """

    def __init__(
        self,
        config: ELSIConfig | None = None,
        selector=None,
        method: str | None = None,
        random_choice: bool = False,
    ) -> None:
        self.config = config or ELSIConfig()
        self.selector = selector
        self.fixed_method = method
        self.random_choice = random_choice
        self._rng = np.random.default_rng(self.config.seed)
        self.pool: list[BuildMethod] = make_method_pool(self.config)
        self._by_name = {m.name: m for m in self.pool}
        if method is not None and method not in self._by_name:
            raise ValueError(f"method {method!r} not in pool {sorted(self._by_name)}")
        if selector is None and method is None and not random_choice:
            # Sensible untrained default: SP is the cheapest safe reduction.
            self.fixed_method = "SP"

    # ------------------------------------------------------------------
    def _choose(self, sorted_keys: np.ndarray, map_fn: MapFn | None) -> BuildMethod:
        """Pick the build method for this partition (scorer invocation)."""
        applicable = [m for m in self.pool if m.applicable(map_fn)]
        if not applicable:
            raise RuntimeError("no applicable build method for this partition")
        if self.fixed_method is not None:
            chosen = self._by_name[self.fixed_method]
            if chosen.applicable(map_fn):
                return chosen
            # Fixed method inapplicable here (e.g. CL for LISA): fall back.
            return self._by_name.get("SP", applicable[0])
        if self.random_choice:
            return applicable[int(self._rng.integers(len(applicable)))]
        assert self.selector is not None
        dist_u = uniform_dissimilarity(sorted_keys, assume_sorted=True)
        name = self.selector.select(
            n=len(sorted_keys),
            dist_u=dist_u,
            methods=[m.name for m in applicable],
            lam=self.config.lam,
            w_q=self.config.w_q,
        )
        return self._by_name[name]

    def _fallback_chain(self, first: BuildMethod, map_fn: MapFn | None):
        """The chosen method, then SP, then OG (always applicable)."""
        chain = [first]
        for name in ("SP", "OG"):
            method = self._by_name.get(name)
            if method is not None and method is not first and method.applicable(map_fn):
                chain.append(method)
        return chain

    # ------------------------------------------------------------------
    def build_model(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        stats: BuildStats,
        map_fn: MapFn | None = None,
    ) -> TrainedModel:
        n = len(sorted_keys)
        if n == 0:
            raise ValueError("cannot build a model over an empty partition")

        select_started = time.perf_counter()
        chosen = self._choose(sorted_keys, map_fn)
        stats.extra_seconds += time.perf_counter() - select_started

        result: MethodResult | None = None
        used: BuildMethod = chosen
        for method in self._fallback_chain(chosen, map_fn):
            try:
                result = method.compute_set(sorted_keys, sorted_points, map_fn)
                used = method
                break
            except MethodFailure:
                continue
        if result is None:
            raise RuntimeError("every build method failed, including OG")
        stats.extra_seconds += result.extra_seconds

        key_lo, key_hi = float(sorted_keys[0]), float(sorted_keys[-1])
        if result.pretrained_state is not None:
            # MR: load the pre-trained network; no online training (T = 0).
            net = FFN([1, self.config.hidden_size, 1], seed=self.config.seed)
            net.load_state_dict(result.pretrained_state)
            model = TrainedModel(
                net=net,
                key_lo=key_lo,
                key_hi=key_hi,
                n_indexed=n,
                method_name=used.name,
                train_set_size=len(result.train_keys),
            )
        else:
            train_config = TrainConfig(
                epochs=self.config.train_epochs, seed=self.config.seed
            )
            model, train_seconds = fit_cdf_model(
                result.train_keys,
                result.train_ranks,
                key_lo=key_lo,
                key_hi=key_hi,
                n_indexed=n,
                hidden=self.config.hidden_size,
                train_config=train_config,
                method_name=used.name,
                seed=self.config.seed,
            )
            stats.train_seconds += train_seconds

        bound_started = time.perf_counter()
        model.measure_error_bounds(sorted_keys)
        stats.error_bound_seconds += time.perf_counter() - bound_started

        stats.train_set_size += len(result.train_keys)
        stats.n_models += 1
        stats.methods_used[used.name] = stats.methods_used.get(used.name, 0) + 1
        return model
