"""The ELSI system facade (Figure 3).

Ties the pieces together behind the paper's three APIs:

- ``build``: construct a base index through the ELSI build processor
  (Algorithm 1), with the method chosen per model by the trained selector,
  a fixed method, or the Rand ablation;
- ``update``: wrap a built index in the update processor (side list +
  rebuild predictor);
- ``to_rebuild``: exposed through the returned
  :class:`~repro.core.update_processor.UpdateProcessor`.

Typical use::

    elsi = ELSI(ELSIConfig(lam=0.8))
    elsi.train_selector(lambda b: ZMIndex(builder=b))   # one-off preparation
    index = elsi.build(ZMIndex, points)                 # fast build
    processor = elsi.updates(index)                     # side-list updates
"""

from __future__ import annotations

import numpy as np

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.scorer import MethodScorer
from repro.core.selector import collect_selector_data, train_ffn_selector
from repro.core.update_processor import RebuildPredictor, UpdateProcessor
from repro.indices.base import LearnedSpatialIndex
from repro.obs.trace import span as _span

__all__ = ["ELSI"]


class ELSI:
    """The efficient-learning-of-spatial-indices system.

    Parameters
    ----------
    config:
        System parameters (λ, w_Q, method pool, method hyperparameters).
    selector:
        A pre-trained method scorer; ``train_selector`` fits one in-process.
    rebuild_predictor:
        A pre-trained rebuild predictor for the update processor.
    """

    def __init__(
        self,
        config: ELSIConfig | None = None,
        selector: MethodScorer | None = None,
        rebuild_predictor: RebuildPredictor | None = None,
    ) -> None:
        self.config = config or ELSIConfig()
        self.selector = selector
        self.rebuild_predictor = rebuild_predictor

    # ------------------------------------------------------------------
    # Preparation (offline, one-off — Section VII-B2)
    # ------------------------------------------------------------------
    def train_selector(
        self,
        index_factory,
        cardinalities: tuple[int, ...] = (500, 1_000, 2_000, 5_000, 10_000),
        deltas: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
        n_queries: int = 200,
        seed: int = 0,
    ) -> MethodScorer:
        """Collect ground truth and fit the FFN method scorer."""
        records = collect_selector_data(
            index_factory,
            config=self.config,
            cardinalities=cardinalities,
            deltas=deltas,
            n_queries=n_queries,
            seed=seed,
        )
        self.selector = train_ffn_selector(
            records, method_names=tuple(self.config.methods), seed=seed
        )
        return self.selector

    # ------------------------------------------------------------------
    # Build (Algorithm 1 behind a base index)
    # ------------------------------------------------------------------
    def builder(
        self, method: str | None = None, random_choice: bool = False
    ) -> ELSIModelBuilder:
        """An ELSI model builder to hand to any base index constructor.

        Without arguments, uses the trained selector when available, else
        the SP default.  ``method`` forces a fixed method, ``random_choice``
        gives the Table II "Rand" ablation.
        """
        selector = None if (method or random_choice) else self.selector
        return ELSIModelBuilder(
            self.config,
            selector=selector,
            method=method,
            random_choice=random_choice,
        )

    def build(
        self,
        index_class: type[LearnedSpatialIndex],
        points: np.ndarray,
        method: str | None = None,
        random_choice: bool = False,
        **index_kwargs,
    ) -> LearnedSpatialIndex:
        """Build ``index_class`` on ``points`` through the build processor."""
        pts = np.asarray(points, dtype=np.float64)
        with _span(
            "build", index=index_class.name, n=len(pts), method=method or "auto"
        ):
            index = index_class(
                builder=self.builder(method=method, random_choice=random_choice),
                **index_kwargs,
            )
            index.build(pts)
        return index

    # ------------------------------------------------------------------
    # Updates (Figure 3's update / to_rebuild APIs)
    # ------------------------------------------------------------------
    def updates(
        self, index: LearnedSpatialIndex, auto_rebuild: bool = False
    ) -> UpdateProcessor:
        """Wrap a built index in ELSI's update processor."""
        return UpdateProcessor(
            index,
            config=self.config,
            predictor=self.rebuild_predictor,
            auto_rebuild=auto_rebuild,
        )
