"""Tests for write-ahead durability: framing, replay, crash recovery.

The centrepiece is the randomized crash-recovery property test: a server
with a WAL absorbs a randomized schedule of updates, snapshots, and
rebuilds, "crashes" at random points (the server object is discarded;
recovery may use the disk only), and after every recovery the server must
report **every acknowledged update**, with query results bit-identical to
an uncrashed reference.  The process-level version of the same property
(``os._exit`` mid-stream) runs in ``benchmarks/chaos_smoke.py``.
"""

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.update_processor import UpdateProcessor
from repro.faults import get_fault_registry
from repro.faults.chaos import make_schedule, verify_recovery
from repro.indices import ZMIndex
from repro.serve import (
    DEGRADED,
    FSYNC_POLICIES,
    HEALTHY,
    IndexServer,
    ServeConfig,
    WALCorruption,
    WriteAheadLog,
)


def _append_n(wal: WriteAheadLog, n: int, start: float = 0.0) -> None:
    for i in range(n):
        wal.append("insert", np.array([start + i / 100.0, 0.5]))


class TestFraming:
    def test_append_replay_round_trip(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off") as wal:
            s1 = wal.append("insert", np.array([0.1, 0.2]))
            s2 = wal.append("delete", np.array([0.3, 0.4]))
        records = WriteAheadLog.replay_file(tmp_path / "wal-000000.log")
        assert [(r.seq, r.op) for r in records] == [(s1, "insert"), (s2, "delete")]
        np.testing.assert_array_equal(records[0].point, [0.1, 0.2])
        assert records[0].point.dtype == np.float64

    def test_bad_op_and_closed_log_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off")
        with pytest.raises(ValueError):
            wal.append("upsert", np.array([0.1, 0.2]))
        wal.close()
        with pytest.raises(ValueError):
            wal.append("insert", np.array([0.1, 0.2]))

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, fsync_policy="sometimes")
        for policy in FSYNC_POLICIES:
            WriteAheadLog(tmp_path / policy, fsync_policy=policy).close()

    def test_batch_policy_appends(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="batch", batch_every=2) as wal:
            _append_n(wal, 5)
        assert len(WriteAheadLog.replay_file(wal.path)) == 5


class TestTornAndCorrupt:
    def test_torn_tail_dropped_silently(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off") as wal:
            _append_n(wal, 3)
            path = wal.path
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # crash mid-append: torn final record
        records = WriteAheadLog.replay_file(path)
        assert [r.seq for r in records] == [1, 2]

    def test_torn_header_dropped_silently(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off") as wal:
            _append_n(wal, 2)
            path = wal.path
        path.write_bytes(path.read_bytes() + b"\x07\x00")  # 2 stray bytes
        assert len(WriteAheadLog.replay_file(path)) == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off") as wal:
            _append_n(wal, 3)
            path = wal.path
        data = bytearray(path.read_bytes())
        # Flip a payload byte of the *second* record: a complete-but-wrong
        # record with valid data behind it is corruption, not a torn tail.
        record_len = len(data) // 3
        data[record_len + 12] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WALCorruption):
            WriteAheadLog.replay_file(path)
        salvaged = WriteAheadLog.replay_file(path, salvage=True)
        assert [r.seq for r in salvaged] == [1]

    def test_implausible_length_is_corruption(self, tmp_path):
        path = tmp_path / "wal-000000.log"
        path.write_bytes(b"\xff\xff\xff\x7f" + b"\x00" * 64)
        with pytest.raises(WALCorruption):
            WriteAheadLog.replay_file(path)
        assert WriteAheadLog.replay_file(path, salvage=True) == []


class TestRotation:
    def test_seq_continues_across_rotations_and_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off")
        _append_n(wal, 3)
        wal.rotate(1)
        assert wal.depth == 0
        _append_n(wal, 2)
        wal.close()
        reopened = WriteAheadLog(tmp_path, generation=1, fsync_policy="off")
        assert reopened.last_seq == 5
        assert reopened.depth == 2
        seq = reopened.append("insert", np.array([0.9, 0.9]))
        reopened.close()
        assert seq == 6
        records = WriteAheadLog.replay_dir(tmp_path)
        assert [r.seq for r in records] == [1, 2, 3, 4, 5, 6]

    def test_replay_dir_orders_by_generation(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off")
        _append_n(wal, 2)
        wal.rotate(2)
        _append_n(wal, 2)
        wal.close()
        records = WriteAheadLog.replay_dir(tmp_path, from_generation=2)
        assert [r.seq for r in records] == [3, 4]

    def test_carried_records_dedup_on_replay(self, tmp_path):
        """A record carried across a rotation (re-appended under its
        original seq) replays exactly once, whichever logs survive."""
        wal = WriteAheadLog(tmp_path, fsync_policy="off")
        _append_n(wal, 3)  # seqs 1..3 in gen 0
        wal.rotate(1)
        wal.append("insert", np.array([0.02, 0.5]), seq=3, sync=False)
        wal.sync()
        assert wal.append("insert", np.array([0.9, 0.9])) == 4
        wal.close()
        # Both logs present: the carried seq 3 appears once, from gen 0.
        assert [r.seq for r in WriteAheadLog.replay_dir(tmp_path)] == [1, 2, 3, 4]
        # Old log compacted away: the carried copy in gen 1 covers seq 3.
        tail = WriteAheadLog.replay_dir(tmp_path, from_generation=1)
        assert [r.seq for r in tail] == [3, 4]

    def test_remove_through_spares_current(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off")
        _append_n(wal, 1)
        wal.rotate(1)
        _append_n(wal, 1)
        wal.rotate(2)
        removed = wal.remove_through(2)
        wal.close()
        assert [p.name for p in removed] == ["wal-000000.log", "wal-000001.log"]
        assert wal.generations() == [2]


@pytest.fixture(scope="module")
def small_index(osm_points):
    config = ELSIConfig(train_epochs=60)
    return ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(
        osm_points[:600]
    )


class TestCrashRecovery:
    """Acknowledged updates survive crashes: snapshot + WAL tail."""

    def _open(self, snapshots, index=None, **kwargs):
        config = ELSIConfig(train_epochs=60)
        factory = lambda: ZMIndex(builder=ELSIModelBuilder(config, method="SP"))  # noqa: E731
        common = dict(
            config=ServeConfig(auto_rebuild=False),
            elsi_config=config,
            index_factory=factory,
            wal=True,
            **kwargs,
        )
        if index is not None:
            return IndexServer(index, snapshots=snapshots, **common)
        return IndexServer.from_snapshot(snapshots, **common)

    def test_recovery_without_rebuild(self, small_index, tmp_path):
        server = self._open(str(tmp_path), index=small_index)
        fresh = np.array([0.123, 0.456])
        server.insert(fresh)
        server.close()
        restored = self._open(str(tmp_path))
        with restored:
            assert restored.generation == 0
            assert restored.point_query(fresh)
        restored.close()

    def test_recovery_after_rebuild_and_tail(self, small_index, tmp_path):
        server = self._open(str(tmp_path), index=small_index)
        before = np.array([0.21, 0.22])
        server.insert(before)
        server.rebuild_now()
        after = np.array([0.31, 0.32])
        server.insert(after)
        gen = server.generation
        server.close()
        restored = self._open(str(tmp_path))
        with restored:
            assert restored.generation == gen
            assert restored.point_query(before)
            assert restored.point_query(after)
        restored.close()

    def test_during_rebuild_update_survives_recovery(self, small_index, tmp_path):
        """An update acknowledged while a rebuild is in flight must be
        carried into the new generation's WAL: the post-rebuild snapshot
        holds only the base index, so without the carry a crash after
        compaction silently drops the fsynced, acknowledged update."""
        server = self._open(str(tmp_path), index=small_index)
        get_fault_registry().arm(
            "rebuild.worker", kind="delay", times=1, delay_seconds=0.4
        )
        worker = threading.Thread(target=server.rebuild_now)
        worker.start()
        deadline = time.time() + 10.0
        while not server._rebuilding and time.time() < deadline:
            time.sleep(0.005)
        assert server._rebuilding, "rebuild never entered its in-flight window"
        mid = np.array([0.777, 0.888])
        server.insert(mid)  # acknowledged while the rebuild is in flight
        worker.join()
        assert server.generation == 1
        server.close()
        # The new generation's log must contain the carried record — the
        # gen-1 snapshot alone does not include it.
        carried = WriteAheadLog.replay_file(Path(tmp_path) / "wal-000001.log")
        assert any(np.array_equal(r.point, mid) for r in carried)
        restored = self._open(str(tmp_path))
        with restored:
            assert restored.generation == 1
            assert restored.point_query(mid)
        restored.close()

    def test_fallback_to_previous_generation_after_compaction(
        self, small_index, tmp_path
    ):
        """If the newest snapshot is unloadable, recovery falls back one
        generation — and the retained previous-generation WAL makes the
        fallback lossless (carried records dedup by seq)."""
        server = self._open(str(tmp_path), index=small_index)
        before = np.array([0.21, 0.22])
        server.insert(before)
        server.rebuild_now()  # gen 1: snapshot saved, wal-0 retained
        after = np.array([0.31, 0.32])
        server.insert(after)
        server.close()
        assert (Path(tmp_path) / "wal-000000.log").exists()
        snap = Path(tmp_path) / "gen-000001.npz"
        snap.write_bytes(snap.read_bytes()[: snap.stat().st_size // 2])
        restored = self._open(str(tmp_path))
        with restored:
            assert restored.health == HEALTHY  # coverage intact: no gap
            assert restored.point_query(before)
            assert restored.point_query(after)
        restored.close()

    def test_strict_replay_raises_salvage_degrades(self, small_index, tmp_path):
        """Mid-file corruption of acknowledged records fails recovery
        loudly by default; salvage=True recovers best-effort but the
        server comes up degraded instead of reporting clean health."""
        server = self._open(str(tmp_path), index=small_index)
        server.insert(np.array([0.11, 0.12]))
        server.insert(np.array([0.13, 0.14]))
        server.close()
        wal_path = Path(tmp_path) / "wal-000000.log"
        data = bytearray(wal_path.read_bytes())
        data[12] ^= 0xFF  # corrupt the first record's payload, not the tail
        wal_path.write_bytes(bytes(data))
        with pytest.raises(WALCorruption):
            self._open(str(tmp_path))
        restored = self._open(str(tmp_path), salvage=True)
        assert restored.health == DEGRADED
        restored.close()

    def test_fallback_past_wal_horizon_degrades(self, small_index, tmp_path):
        """Falling back to a generation whose WAL was already compacted
        away cannot be lossless — recovery must say so via health."""
        server = self._open(str(tmp_path), index=small_index)
        server.insert(np.array([0.41, 0.42]))
        server.rebuild_now()  # gen 1
        server.close()
        # Simulate over-aggressive compaction plus a bad newest snapshot:
        # the fallback generation's deltas are gone.
        (Path(tmp_path) / "wal-000000.log").unlink()
        snap = Path(tmp_path) / "gen-000001.npz"
        snap.write_bytes(snap.read_bytes()[: snap.stat().st_size // 2])
        restored = self._open(str(tmp_path))
        assert restored.health == DEGRADED
        restored.close()

    @pytest.mark.parametrize("seed", [0, 7])
    def test_crash_recovery_property(self, small_index, osm_points, tmp_path, seed):
        """Randomized schedule of updates/rebuilds/crashes: after every
        recovery the server reports every acknowledged update, and query
        results are bit-identical to an uncrashed reference."""
        base = osm_points[:600]
        schedule = make_schedule(base, 36, seed)
        rng = np.random.default_rng(seed)
        crash_points = sorted(
            int(c) for c in rng.choice(np.arange(4, 36), size=2, replace=False)
        )
        rebuild_at = int(rng.integers(2, 36))

        server = self._open(str(tmp_path), index=small_index)
        reference = UpdateProcessor(small_index, ELSIConfig(train_epochs=60))
        applied = 0
        try:
            for i, (op, point) in enumerate(schedule):
                if i == rebuild_at:
                    server.rebuild_now()
                if i in crash_points:
                    # Crash: the old handle is gone, recovery reads disk.
                    server.close()
                    server = self._open(str(tmp_path))
                    m = verify_recovery(
                        base, schedule, applied,
                        server._gen.processor.current_points(),
                    )
                    assert m == applied, "recovered more/less than acknowledged"
                if op == "insert":
                    server.insert(point)
                    reference.insert(point)
                else:
                    server.delete(point)
                    reference.delete(point)
                applied += 1
            server.close()
            server = self._open(str(tmp_path))
            m = verify_recovery(
                base, schedule, applied, server._gen.processor.current_points()
            )
            assert m == len(schedule)
            # Bit-identical query results vs the uncrashed reference.
            probes = np.vstack([base[:50], [p for _, p in schedule]])
            np.testing.assert_array_equal(
                server._gen.processor.point_queries(probes),
                reference.point_queries(probes),
            )
        finally:
            server.close()
