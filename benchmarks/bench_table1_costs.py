"""Table I — build-cost decomposition on OSM1 with ZM.

Prints the analytical formulas of Section VI-B next to the measured
training / extra seconds and the |Error| = err_l + err_u column.

Paper shapes to hold: MR trains nothing online (smallest training time);
CL's extra cost dominates the other reductions; every reduction trains
faster than OG; |Error| stays at the same magnitude across methods.
"""

from repro.bench.experiments import table1_cost_decomposition
from repro.bench.harness import format_table


def test_table1_cost_decomposition(ctx, benchmark):
    rows = benchmark.pedantic(
        table1_cost_decomposition, args=(ctx,), rounds=1, iterations=1
    )

    print()
    table = [
        [
            r["method"],
            r["training_formula"],
            f"{r['training_seconds']:.3f}",
            r["extra_formula"],
            f"{r['extra_seconds']:.3f}",
            r["error_width"],
            r["train_set_size"],
        ]
        for r in rows
    ]
    print(format_table(
        ["method", "T formula", "T (s)", "extra formula", "extra (s)", "|Error|", "|D_S|"],
        table,
        title="Table I: cost decomposition on OSM1 (ZM)",
    ))

    by = {r["method"]: r for r in rows}
    assert by["MR"]["training_seconds"] == 0.0
    assert by["OG"]["training_seconds"] == max(r["training_seconds"] for r in rows)
    for method in ("SP", "CL", "MR", "RS", "RL"):
        assert by[method]["training_seconds"] < by["OG"]["training_seconds"]
        assert by[method]["train_set_size"] < by["OG"]["train_set_size"]
    # |Error| at the same magnitude as OG (within ~4x).
    for method in ("SP", "CL", "MR", "RS", "RL"):
        assert by[method]["error_width"] < 4 * by["OG"]["error_width"] + 100
    # CL's extra time dominates the other reduction methods'.
    assert by["CL"]["extra_seconds"] >= max(
        by[m]["extra_seconds"] for m in ("SP", "RS")
    )
