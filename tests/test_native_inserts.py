"""Tests for the built-in insertion procedures (Section IV-B2, Figure 1).

Built-in inserts must keep every query correct (widened scans preserve the
predict-and-scan invariant) while degrading performance — and RSMI's local
rebuilds must produce exactly the unbalanced deepening of Figure 1.
"""

import numpy as np
import pytest

from repro.core.config import ELSIConfig
from repro.core.build_processor import ELSIModelBuilder
from repro.core.update_processor import UpdateProcessor
from repro.data import load_dataset
from repro.data.generators import skewed, uniform
from repro.indices import LISAIndex, MLIndex, RSMIIndex, ZMIndex
from repro.queries.evaluate import brute_force_window, window_recall
from repro.spatial.rect import Rect

INDEX_CASES = [
    pytest.param(ZMIndex, {}, id="ZM"),
    pytest.param(MLIndex, {}, id="ML"),
    pytest.param(RSMIIndex, {"leaf_capacity": 400}, id="RSMI"),
    pytest.param(LISAIndex, {}, id="LISA"),
]


@pytest.fixture(scope="module")
def base_points():
    return load_dataset("OSM1", 2_000)


@pytest.fixture(scope="module")
def insert_points():
    return skewed(800, seed=9)


def _build(cls, kwargs, points):
    config = ELSIConfig(train_epochs=80)
    return cls(builder=ELSIModelBuilder(config, method="SP"), **kwargs).build(points)


@pytest.mark.parametrize("cls,kwargs", [p.values for p in INDEX_CASES], ids=[p.id for p in INDEX_CASES])
class TestNativeInsertCorrectness:
    def test_inserted_points_found(self, cls, kwargs, base_points, insert_points):
        index = _build(cls, kwargs, base_points)
        for p in insert_points:
            index.insert(p)
        assert index.n_points == len(base_points) + len(insert_points)
        assert all(index.point_query(p) for p in insert_points[::37])

    def test_original_points_still_found(self, cls, kwargs, base_points, insert_points):
        index = _build(cls, kwargs, base_points)
        for p in insert_points:
            index.insert(p)
        assert all(index.point_query(p) for p in base_points[::97])

    def test_window_sees_inserted_points(self, cls, kwargs, base_points, insert_points):
        index = _build(cls, kwargs, base_points)
        for p in insert_points:
            index.insert(p)
        everything = np.vstack([base_points, insert_points])
        rng = np.random.default_rng(2)
        recalls = []
        for _ in range(15):
            center = insert_points[rng.integers(len(insert_points))]
            window = Rect.centered(center, 0.06)
            got = index.window_query(window)
            recalls.append(window_recall(got, brute_force_window(everything, window)))
        assert np.mean(recalls) > 0.9

    def test_indexed_points_includes_inserts(self, cls, kwargs, base_points, insert_points):
        index = _build(cls, kwargs, base_points)
        for p in insert_points[:100]:
            index.insert(p)
        assert len(index.indexed_points()) == len(base_points) + 100

    def test_knn_after_inserts(self, cls, kwargs, base_points, insert_points):
        index = _build(cls, kwargs, base_points)
        q = np.array([0.91, 0.0123])
        index.insert(q)
        got = index.knn_query(q, 3)
        assert any(np.allclose(row, q) for row in got)


class TestFigure1Mechanism:
    def test_rsmi_local_rebuild_deepens_hot_region(self, base_points):
        """Skewed insertions into one region create new local models there
        (Figure 1's M_{2,0}, M_{3,x}): tree depth and model count grow."""
        index = _build(RSMIIndex, {"leaf_capacity": 300}, base_points)
        depth_before = index.depth()
        models_before = index.n_models()
        burst = np.clip(
            np.random.default_rng(5).normal([0.2, 0.2], 0.01, (1_500, 2)), 0, 1
        )
        for p in burst:
            index.insert(p)
        assert index.n_models() > models_before
        assert index.depth() >= depth_before
        # Everything remains queryable after the local rebuilds.
        assert all(index.point_query(p) for p in burst[::101])
        assert all(index.point_query(p) for p in base_points[::199])

    def test_scan_cost_grows_without_rebuild(self, base_points):
        """ZM's widened scan ranges make point queries scan more points as
        built-in inserts accumulate — the degradation of Figure 15(b)."""
        index = _build(ZMIndex, {}, base_points)
        index.query_stats.reset()
        for p in base_points[:100]:
            index.point_query(p)
        before = index.query_stats.points_scanned / 100
        for p in skewed(1_000, seed=3):
            index.insert(p)
        index.query_stats.reset()
        for p in base_points[:100]:
            index.point_query(p)
        after = index.query_stats.points_scanned / 100
        assert after > before

    def test_rebuild_restores_scan_cost(self, base_points):
        """A full rebuild resets the widened bounds — why rebuilds pay off."""
        config = ELSIConfig(train_epochs=80)
        index = _build(ZMIndex, {}, base_points)
        processor = UpdateProcessor(index, config, native=True)
        for p in skewed(1_000, seed=4):
            processor.insert(p)
        aged = processor.index
        aged.query_stats.reset()
        for p in base_points[:100]:
            aged.point_query(p)
        aged_scan = aged.query_stats.points_scanned / 100

        processor.rebuild()
        fresh = processor.index
        fresh.query_stats.reset()
        for p in base_points[:100]:
            fresh.point_query(p)
        fresh_scan = fresh.query_stats.points_scanned / 100
        assert fresh_scan < aged_scan


class TestNativeModeProcessor:
    def test_native_insert_goes_to_index(self, base_points):
        config = ELSIConfig(train_epochs=80)
        index = _build(ZMIndex, {}, base_points)
        processor = UpdateProcessor(index, config, native=True)
        p = np.array([0.111, 0.222])
        processor.insert(p)
        assert processor.n_pending == 0  # no side list in native mode
        assert index.point_query(p)  # the index itself holds the point
        assert processor.point_query(p)

    def test_native_current_points(self, base_points):
        config = ELSIConfig(train_epochs=80)
        index = _build(ZMIndex, {}, base_points)
        processor = UpdateProcessor(index, config, native=True)
        for p in uniform(50, seed=8):
            processor.insert(p)
        assert len(processor.current_points()) == len(base_points) + 50
        assert processor.n_effective == len(base_points) + 50

    def test_native_delete_then_query(self, base_points):
        config = ELSIConfig(train_epochs=80)
        index = _build(ZMIndex, {}, base_points)
        processor = UpdateProcessor(index, config, native=True)
        assert processor.delete(base_points[11])
        assert not processor.point_query(base_points[11])
        assert len(processor.current_points()) == len(base_points) - 1

    def test_rebuild_uses_index_factory(self, base_points):
        config = ELSIConfig(train_epochs=80)
        factory = lambda: RSMIIndex(  # noqa: E731
            builder=ELSIModelBuilder(config, method="SP"), leaf_capacity=123
        )
        index = factory().build(base_points)
        processor = UpdateProcessor(index, config, native=True, index_factory=factory)
        processor.insert(np.array([0.5, 0.5]))
        processor.rebuild()
        assert processor.index.leaf_capacity == 123

    def test_unsupported_insert_raises(self):
        from repro.indices.base import LearnedSpatialIndex

        class Stub(LearnedSpatialIndex):
            name = "stub"

            def build(self, points):
                raise NotImplementedError

            def point_query(self, point):
                raise NotImplementedError

            def window_query(self, window):
                raise NotImplementedError

            def knn_query(self, point, k):
                raise NotImplementedError

            def indexed_points(self):
                raise NotImplementedError

            def map(self, points):
                raise NotImplementedError

        with pytest.raises(NotImplementedError):
            Stub().insert(np.zeros(2))


class TestBlockStoreInsert:
    def test_insert_keeps_sorted(self):
        rng = np.random.default_rng(0)
        pts = rng.random((50, 2))
        keys = rng.random(50)
        from repro.storage.blocks import BlockStore

        store = BlockStore(pts, keys)
        for _ in range(30):
            p = rng.random(2)
            store.insert(p, float(rng.random()))
        assert np.all(np.diff(store.keys) >= 0)
        assert len(store) == 80

    def test_insert_position_returned(self):
        from repro.storage.blocks import BlockStore

        store = BlockStore(np.zeros((2, 2)), np.array([1.0, 3.0]))
        pos = store.insert(np.array([0.5, 0.5]), 2.0)
        assert pos == 1
        assert store.keys[1] == 2.0

    def test_dim_mismatch_rejected(self):
        from repro.storage.blocks import BlockStore

        store = BlockStore(np.zeros((2, 2)), np.array([1.0, 3.0]))
        with pytest.raises(ValueError):
            store.insert(np.zeros(3), 2.0)
