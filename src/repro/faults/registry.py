"""Deterministic fault injection: named sites, armable fault specs.

Production failure paths are unreachable from ordinary tests — a snapshot
write that tears, a WAL append that hits a full disk, a rebuild worker
that dies — so the serving stack declares *injection sites* (one string
name per failure point) and calls :func:`fault_check` as it passes each
one.  Tests and the chaos harness (:mod:`repro.faults.chaos`) arm a site
with a :class:`FaultSpec` — raise, delay, or tear the write — and the
next ``fault_check`` hits fire it, deterministically, for exactly the
armed number of triggers.

The registry is process-global (:func:`get_fault_registry`) so a fault
armed in a test thread fires inside the server's worker threads.  Arming
comes from three equivalent sources:

- the API: ``get_fault_registry().arm("wal.append", kind="error")``;
- the ``REPRO_FAULTS`` environment variable, parsed once when the global
  registry is created (``site=kind[:times[:after]]``, comma-separated);
- ``ELSIConfig.faults``, the same spec string, armed by ``IndexServer``
  at construction.

Every trigger increments both a per-registry counter and the process-wide
observability counter ``faults.triggered{site=...}``, so chaos runs can
assert that the faults they armed actually fired (and export the report
through ``repro/obs``).  When nothing is armed, ``fault_check`` is one
dict emptiness test — safe to leave in hot paths.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry

__all__ = [
    "ENV_FAULTS",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultSpec",
    "InjectedFault",
    "FaultRegistry",
    "fault_check",
    "get_fault_registry",
    "parse_fault_spec",
]

ENV_FAULTS = "REPRO_FAULTS"

#: The failure points the serving stack declares.  Arming an unknown site
#: is an error (it would silently never fire).
FAULT_SITES = (
    "snapshot.write",
    "wal.append",
    "rebuild.worker",
    "serve.dispatch",
    "index.query",
)

#: ``error`` raises :class:`InjectedFault`; ``delay`` sleeps
#: ``delay_seconds`` then continues; ``torn_write`` instructs write sites
#: to leave a partial record on disk and then fail (simulating a crash
#: mid-write) — sites without torn-write semantics treat it as ``error``.
FAULT_KINDS = ("error", "delay", "torn_write")


class InjectedFault(RuntimeError):
    """The exception raised by an armed ``error``/``torn_write`` fault."""


@dataclass
class FaultSpec:
    """One armed fault: what happens at ``site`` and how many times.

    Attributes
    ----------
    site:
        Injection-site name (one of :data:`FAULT_SITES`).
    kind:
        ``error`` / ``delay`` / ``torn_write`` (:data:`FAULT_KINDS`).
    times:
        Triggers before the spec disarms itself; ``0`` means unlimited.
    after:
        Hits to let pass before the first trigger (fire on the
        ``after+1``-th passage), for targeting e.g. the third append.
    delay_seconds:
        Sleep length for ``delay`` faults.
    """

    site: str
    kind: str = "error"
    times: int = 1
    after: int = 0
    delay_seconds: float = 0.01
    _hits: int = field(default=0, repr=False)
    _fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: {FAULT_SITES}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: {FAULT_KINDS}"
            )
        if self.times < 0 or self.after < 0:
            raise ValueError("times and after must be >= 0")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")


def parse_fault_spec(spec: str) -> list[FaultSpec]:
    """Parse a ``site=kind[:times[:after]]`` comma-separated spec string.

    Examples: ``"wal.append=error"``, ``"snapshot.write=torn_write:1"``,
    ``"rebuild.worker=error:2,serve.dispatch=delay"``.
    """
    out: list[FaultSpec] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad fault spec {part!r}: expected site=kind[:times[:after]]"
            )
        site, _, rhs = part.partition("=")
        pieces = rhs.split(":")
        if not pieces or not pieces[0]:
            raise ValueError(f"bad fault spec {part!r}: missing kind")
        kind = pieces[0]
        try:
            times = int(pieces[1]) if len(pieces) > 1 else 1
            after = int(pieces[2]) if len(pieces) > 2 else 0
        except ValueError as exc:
            raise ValueError(
                f"bad fault spec {part!r}: times/after must be integers"
            ) from exc
        if len(pieces) > 3:
            raise ValueError(f"bad fault spec {part!r}: too many ':' fields")
        out.append(FaultSpec(site=site.strip(), kind=kind, times=times, after=after))
    return out


class FaultRegistry:
    """Thread-safe registry of armed faults, checked at injection sites."""

    def __init__(self, env: "str | None" = None) -> None:
        self._lock = threading.Lock()
        self._specs: dict[str, FaultSpec] = {}
        self._triggered: dict[str, int] = {}
        if env:
            self.arm_spec(env)

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(
        self,
        site: str,
        kind: str = "error",
        times: int = 1,
        after: int = 0,
        delay_seconds: float = 0.01,
    ) -> FaultSpec:
        """Arm ``site``; replaces any spec already armed there."""
        spec = FaultSpec(
            site=site, kind=kind, times=times, after=after,
            delay_seconds=delay_seconds,
        )
        with self._lock:
            self._specs[site] = spec
        return spec

    def arm_spec(self, spec: str) -> list[FaultSpec]:
        """Arm every fault in a ``REPRO_FAULTS``-format spec string."""
        specs = parse_fault_spec(spec)
        with self._lock:
            for s in specs:
                self._specs[s.site] = s
        return specs

    def disarm(self, site: "str | None" = None) -> None:
        """Disarm one site, or everything when ``site`` is None."""
        with self._lock:
            if site is None:
                self._specs.clear()
            else:
                self._specs.pop(site, None)

    def reset(self) -> None:
        """Disarm everything and zero the trigger counts (test teardown)."""
        with self._lock:
            self._specs.clear()
            self._triggered.clear()

    def armed(self) -> dict[str, FaultSpec]:
        with self._lock:
            return dict(self._specs)

    # ------------------------------------------------------------------
    # Checking (the hot-path call)
    # ------------------------------------------------------------------
    def check(self, site: str) -> "str | None":
        """Pass injection site ``site``; fires the armed fault, if any.

        Returns ``"torn_write"`` when a torn-write fault fired (the call
        site performs the partial write, then raises
        :class:`InjectedFault`); raises :class:`InjectedFault` directly
        for ``error`` faults; sleeps for ``delay`` faults.  Returns None
        when nothing fired.
        """
        if not self._specs:  # fast path: nothing armed anywhere
            return None
        with self._lock:
            spec = self._specs.get(site)
            if spec is None:
                return None
            spec._hits += 1
            if spec._hits <= spec.after:
                return None
            spec._fired += 1
            if spec.times and spec._fired >= spec.times:
                del self._specs[site]
            self._triggered[site] = self._triggered.get(site, 0) + 1
            kind = spec.kind
            delay = spec.delay_seconds
        get_registry().counter("faults.triggered", site=site, kind=kind).inc()
        if kind == "delay":
            time.sleep(delay)
            return None
        if kind == "torn_write":
            return "torn_write"
        raise InjectedFault(f"injected fault at {site}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def triggered(self, site: "str | None" = None) -> int:
        """Trigger count for one site (or the total across all sites)."""
        with self._lock:
            if site is not None:
                return self._triggered.get(site, 0)
            return sum(self._triggered.values())

    def report(self) -> dict:
        """JSON-able summary: per-site trigger counts + still-armed specs."""
        with self._lock:
            return {
                "triggered": dict(self._triggered),
                "armed": {
                    site: {"kind": s.kind, "times": s.times, "fired": s._fired}
                    for site, s in self._specs.items()
                },
            }


_global_lock = threading.Lock()
_global_registry: "FaultRegistry | None" = None


def get_fault_registry() -> FaultRegistry:
    """The process-global registry (arms ``REPRO_FAULTS`` on first use)."""
    global _global_registry
    with _global_lock:
        if _global_registry is None:
            _global_registry = FaultRegistry(env=os.environ.get(ENV_FAULTS))
        return _global_registry


def fault_check(site: str) -> "str | None":
    """Module-level :meth:`FaultRegistry.check` against the global registry."""
    registry = _global_registry
    if registry is None:
        registry = get_fault_registry()
    return registry.check(site)
