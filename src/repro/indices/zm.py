"""ZM: the Z-order model index (Wang et al., MDM 2019).

Map-and-sort: points map to Morton (Z-curve) codes and are stored in code
order.  Predict-and-scan: a learned CDF (an :class:`~repro.indices.rmi.RMIModel`)
predicts a code's storage address, and a bounded scan completes the lookup.

Window queries are exact: every point inside window ``[lo, hi]`` has a
Morton code within ``[z(lo), z(hi)]``, so scanning that code interval and
filtering by the rectangle cannot miss results.  The scan boundaries come
from model predictions refined by a galloping search
(:func:`locate_rank`), keeping predict-and-scan behaviour while
guaranteeing correctness for non-indexed boundary keys.
"""

from __future__ import annotations

import time

import numpy as np

from repro.indices.base import LearnedSpatialIndex, ModelBuilder
from repro.indices.rmi import RMIModel
from repro.obs.query_obs import record_range_widths
from repro.obs.trace import span as _span
from repro.perf.batching import batch_point_membership, batch_window_refine
from repro.spatial.rect import Rect
from repro.spatial.zcurve import zvalues
from repro.storage.blocks import BlockStore

__all__ = ["ZMIndex", "locate_rank"]


def locate_rank(
    sorted_keys: np.ndarray, key: float, hint: tuple[int, int], side: str = "left"
) -> int:
    """Exact insertion rank of ``key``, starting from a predicted range.

    ``hint`` is the model's search range.  If the true boundary lies outside
    it (possible for keys that were never indexed, where the empirical error
    bounds give no guarantee), the bracket grows by doubling — so the cost
    stays proportional to the prediction error, not to ``n``.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    n = len(sorted_keys)
    if n == 0:
        return 0
    lo = max(0, min(hint[0], n - 1))
    hi = max(lo + 1, min(n, hint[1]))

    # Grow the bracket downward until the boundary cannot be left of `lo`:
    # for both sides it suffices that sorted_keys[lo - 1] < key (left) or
    # <= key (right); use the conservative strict comparison for both.
    step = max(1, hi - lo)
    while lo > 0 and sorted_keys[lo - 1] >= key:
        lo = max(0, lo - step)
        step *= 2
    # Grow upward until the boundary cannot be right of `hi`.
    step = max(1, hi - lo)
    while hi < n and (
        sorted_keys[hi - 1] < key if side == "left" else sorted_keys[hi - 1] <= key
    ):
        hi = min(n, hi + step)
        step *= 2
    return int(lo + np.searchsorted(sorted_keys[lo:hi], key, side=side))


class ZMIndex(LearnedSpatialIndex):
    """The ZM learned spatial index.

    Parameters
    ----------
    builder:
        Model builder (OG by default; pass ELSI's build processor to get
        the accelerated build).
    bits:
        Morton code resolution per dimension.
    branching:
        Stage-2 fan-out of the RMI (1 = a single model).
    """

    name = "ZM"

    def __init__(
        self,
        builder: ModelBuilder | None = None,
        block_size: int = 100,
        bits: int = 16,
        branching: int = 8,
    ) -> None:
        super().__init__(builder, block_size)
        self.bits = bits
        self.branching = branching
        self.store: BlockStore | None = None
        self.model: RMIModel | None = None
        #: Built-in insertions since the build; scan ranges widen by this
        #: count to keep predict-and-scan correct without retraining.
        self._native_inserts = 0

    # ------------------------------------------------------------------
    def map(self, points: np.ndarray) -> np.ndarray:
        """The base index's ``map()``: Morton codes as float keys.

        Codes are cast to the configured key dtype here, so build-time
        store keys and query-time probe keys go through the identical
        (monotone) quantisation — equal coordinates always produce
        bit-equal keys, and error bounds measured over the cast keys keep
        predict-and-scan exact.
        """
        self._check_built()
        assert self.bounds is not None
        return zvalues(points, self.bounds, self.bits, dtype=self.key_dtype)

    def build(self, points: np.ndarray) -> "ZMIndex":
        pts = self._prepare_points(points)
        started = time.perf_counter()
        self.bounds = Rect.bounding(pts)
        self.n_points = len(pts)
        keys = zvalues(pts, self.bounds, self.bits, dtype=self.key_dtype)
        self.store = BlockStore(pts, keys, block_size=self.block_size)
        self.build_stats.prepare_seconds += time.perf_counter() - started

        self.model = RMIModel(self.builder, branching=self.branching)
        self.model.fit(
            self.store.keys, self.store.points, self.build_stats, map_fn=self.map
        )
        return self

    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> None:
        self._check_built()
        assert self.store is not None
        q = np.asarray(point, dtype=np.float64)
        key = float(self.map(q[None, :])[0])
        self.store.insert(q, key)
        self._native_inserts += 1
        self.n_points += 1

    def point_query(self, point: np.ndarray) -> bool:
        self._check_built()
        assert self.store is not None and self.model is not None
        q = np.asarray(point, dtype=np.float64)
        key = float(self.map(q[None, :])[0])
        lo, hi = self.model.search_range(key)
        lo = max(lo - self._native_inserts, 0)
        hi += self._native_inserts
        pts, keys, _ids = self.store.scan(lo, hi)
        self.query_stats.queries += 1
        self.query_stats.model_invocations += 1
        self.query_stats.points_scanned += len(pts)
        match = keys == key
        return bool(np.any(match & np.all(pts == q, axis=1)))

    def window_query(self, window: Rect) -> np.ndarray:
        self._check_built()
        assert self.store is not None and self.model is not None
        corners = np.vstack([window.lo_array, window.hi_array])
        z_lo, z_hi = self.map(corners)
        lo = locate_rank(self.store.keys, z_lo, self.model.search_range(z_lo), "left")
        hi = locate_rank(self.store.keys, z_hi, self.model.search_range(z_hi), "right")
        pts, _keys, _ids = self.store.scan(lo, hi)
        self.query_stats.queries += 1
        self.query_stats.model_invocations += 2
        self.query_stats.points_scanned += len(pts)
        if len(pts) == 0:
            return pts
        return pts[window.contains_points(pts)]

    def point_queries(self, points: np.ndarray) -> np.ndarray:
        """Vectorised batch lookup: one model forward pass for all keys and
        one fused gather per group of overlapping scan ranges."""
        self._check_built()
        assert self.store is not None and self.model is not None
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        with _span("query.point_batch", index=self.name, queries=len(pts)):
            with _span("query.model_predict", index=self.name, queries=len(pts)):
                keys = self.map(pts)
                lo, hi = self.model.search_ranges(keys)
            lo = np.maximum(lo - self._native_inserts, 0)
            hi = np.minimum(hi + self._native_inserts, len(self.store))
            record_range_widths(self.name, lo, hi)
            self.query_stats.queries += len(pts)
            self.query_stats.model_invocations += len(pts)
            self.query_stats.points_scanned += int(np.maximum(hi - lo, 0).sum())
            with _span("query.refine", index=self.name, queries=len(pts)):
                return batch_point_membership(self.store, lo, hi, keys, pts)

    def window_queries(self, windows: "list[Rect]") -> list[np.ndarray]:
        """Vectorised batch window queries.

        The per-window ``locate_rank`` + scan + ``contains_points`` loop is
        replaced by two batched ``searchsorted`` calls over the cast key
        column (the exact global ranks the scalar path's model-hinted
        galloping search converges to — the model pass is skipped entirely)
        and one fused rectangle-refinement kernel over all windows' scan
        ranges (:func:`~repro.perf.batching.batch_window_refine`).  Results
        are identical to looping :meth:`window_query`.
        """
        self._check_built()
        assert self.store is not None and self.model is not None
        if not windows:
            return []
        with _span("query.window_batch", index=self.name, windows=len(windows)):
            w = len(windows)
            win_lo = np.vstack([win.lo_array for win in windows])
            win_hi = np.vstack([win.hi_array for win in windows])
            z = self.map(np.vstack([win_lo, win_hi]))
            with _span("query.refine", index=self.name, queries=w):
                lo = np.searchsorted(self.store.keys, z[:w], side="left")
                hi = np.searchsorted(self.store.keys, z[w:], side="right")
                record_range_widths(self.name, lo, hi)
                self.query_stats.queries += w
                self.query_stats.points_scanned += int(np.maximum(hi - lo, 0).sum())
                return batch_window_refine(self.store, lo, hi, win_lo, win_hi)

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        return self._knn_by_expanding_window(point, k)

    def knn_queries(self, points: np.ndarray, k: int) -> list[np.ndarray]:
        return self._knn_by_expanding_window_batch(points, k)

    def indexed_points(self) -> np.ndarray:
        """Every indexed point in storage (key) order."""
        self._check_built()
        assert self.store is not None
        return self.store.points

    # ------------------------------------------------------------------
    @property
    def error_width(self) -> int:
        """Worst-model ``err_l + err_u`` (Table I)."""
        self._check_built()
        assert self.model is not None
        return self.model.max_error_width
