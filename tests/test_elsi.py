"""Unit tests for the ELSI system facade and ELSIConfig validation."""

import numpy as np
import pytest

from repro.core import ELSI, ELSIConfig
from repro.core.build_processor import ELSIModelBuilder
from repro.indices import LISAIndex, MLIndex, RSMIIndex, ZMIndex


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ELSIConfig()
        assert cfg.lam == 0.8
        assert cfg.w_q == 1.0
        assert cfg.zeta == 0.8
        assert cfg.gamma == 0.9
        assert cfg.methods == ("SP", "CL", "MR", "RS", "RL", "OG")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lam": 1.5},
            {"lam": -0.1},
            {"w_q": 0.5},
            {"rho": 0.0},
            {"epsilon": 1.5},
            {"eta": 1},
            {"f_u": 0},
            {"methods": ()},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ELSIConfig(**kwargs)


class TestFacade:
    @pytest.fixture()
    def elsi(self, fast_config):
        return ELSI(fast_config)

    @pytest.mark.parametrize("cls", [ZMIndex, MLIndex, RSMIIndex, LISAIndex])
    def test_build_every_base_index(self, elsi, osm_points, cls):
        index = elsi.build(cls, osm_points, method="SP")
        assert index.n_points == len(osm_points)
        assert all(index.point_query(p) for p in osm_points[:50])

    def test_builder_without_selector_defaults_to_sp(self, elsi):
        builder = elsi.builder()
        assert isinstance(builder, ELSIModelBuilder)
        assert builder.fixed_method == "SP"

    def test_builder_with_trained_selector(self, elsi, osm_points):
        class FakeSelector:
            def select(self, n, dist_u, methods, lam, w_q):
                return "RS"

        elsi.selector = FakeSelector()
        index = elsi.build(ZMIndex, osm_points)
        assert "RS" in index.build_stats.methods_used

    def test_random_choice_builder(self, elsi):
        builder = elsi.builder(random_choice=True)
        assert builder.random_choice

    def test_updates_wrapper(self, elsi, osm_points):
        index = elsi.build(ZMIndex, osm_points, method="SP")
        proc = elsi.updates(index)
        proc.insert(np.array([0.5, 0.501]))
        assert proc.point_query(np.array([0.5, 0.501]))

    def test_train_selector_small_grid(self, elsi):
        scorer = elsi.train_selector(
            lambda b: ZMIndex(builder=b, branching=1),
            cardinalities=(300,),
            deltas=(0.0, 0.5),
            n_queries=30,
        )
        assert elsi.selector is scorer
        choice = scorer.select(300, 0.2, list(elsi.config.methods), lam=0.8)
        assert choice in elsi.config.methods

    def test_build_kwargs_forwarded(self, elsi, osm_points):
        index = elsi.build(RSMIIndex, osm_points, method="SP", leaf_capacity=500)
        assert index.leaf_capacity == 500
