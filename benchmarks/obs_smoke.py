"""Observability smoke: a tiny traced build + query + serve + rebuild run.

Run with the trace sink enabled::

    REPRO_TRACE=obs_trace.jsonl PYTHONPATH=src python benchmarks/obs_smoke.py

Exercises every instrumented path — ELSI build (method selection, training
set, FFN training, error bounds), batch point/window/knn queries, the
executor, and a serve session with a generation rebuild — then writes the
metric registries to ``obs_metrics.json``.  CI renders the trace with
``python -m repro obs report`` and asserts the acceptance-criteria spans
are present (see ``.github/workflows/ci.yml``).
"""

import json
import os
import sys

import numpy as np

from repro.core.config import ELSIConfig
from repro.core.elsi import ELSI
from repro.indices.zm import ZMIndex
from repro.serve.server import IndexServer
from repro.spatial.rect import Rect

N_POINTS = 3_000


def main() -> int:
    if not os.environ.get("REPRO_TRACE"):
        print("warning: REPRO_TRACE is not set; no trace file will be written")

    rng = np.random.default_rng(0)
    pts = rng.random((N_POINTS, 2))
    elsi = ELSI(ELSIConfig(lam=0.5, train_epochs=80))

    index = elsi.build(ZMIndex, pts)
    index.point_queries(pts[:128])
    index.window_queries(
        [Rect((0.1, 0.1), (0.2, 0.2)), Rect((0.4, 0.4), (0.6, 0.6))]
    )
    index.knn_queries(pts[:8], 5)

    # The level-wise RSMI build: rsmi.fit_level spans with one perf.map
    # dispatch per tree level, plus traced point/window queries.
    from repro.indices.rsmi import RSMIIndex

    rsmi = RSMIIndex(builder=elsi.builder(), leaf_capacity=500).build(pts)
    rsmi.point_query(pts[0])
    rsmi.window_query(Rect((0.3, 0.3), (0.5, 0.5)))
    # Batch overrides: the shared-DFS window walk (rsmi.window_batch) and
    # expanding-window kNN riding on it.
    rsmi.window_queries([Rect((0.1, 0.1), (0.25, 0.25)), Rect((0.6, 0.6), (0.8, 0.8))])
    rsmi.knn_queries(pts[:4], 3)

    server = IndexServer(index, index_factory=lambda: ZMIndex(builder=elsi.builder()))
    with server:
        replies = [server.submit_point(p) for p in pts[:32]]
        window_reply = server.submit_window(Rect((0.2, 0.2), (0.35, 0.35)))
        for reply in replies:
            reply.wait(30)
        window_reply.wait(30)
        server.insert(np.array([0.42, 0.42]))
        server.rebuild_now()
        metrics = server.stats_snapshot()

    with open("obs_metrics.json", "w") as fh:
        json.dump(metrics, fh, indent=2, sort_keys=True)
    print(f"wrote obs_metrics.json ({len(metrics)} metric families)")
    trace_path = os.environ.get("REPRO_TRACE")
    if trace_path and os.path.exists(trace_path):
        with open(trace_path) as fh:
            n_spans = sum(1 for line in fh if line.strip())
        print(f"wrote {trace_path} ({n_spans} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
