"""MR: model reuse (Section V-A3, after Liu et al. [16]).

MR pre-generates synthetic data sets whose CDFs heuristically cover the
CDF space with granularity ε, and pre-trains an index model on each.  At
build time it finds the synthetic set most similar to ``D`` (by the KS
dissimilarity of Definition 2, computed on min-max-normalised keys) and
reuses that set's model — no online training at all, which is why MR owns
the fast-build end of Figure 7 and is the selector's favourite at λ ≥ 0.8.

If no synthetic set is within ε of ``D``, MR fails for this data set (the
paper: "if ε is too small, no pre-trained models may be reused") and the
build processor falls back to another method.

The synthetic family is the two-piece-linear CDF of
:mod:`repro.data.controlled`, in both skew directions, with deltas spaced
ε/2 apart so any in-family CDF is within ε of some pool member.
Pre-training is a one-off preparation cost (Section VII-B2) and is cached
per (ε, network shape) at module level.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.methods.base import BuildMethod, MethodResult
from repro.data.controlled import keys_with_uniform_distance
from repro.indices.base import MapFn
from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig, train_regressor
from repro.spatial.cdf import ks_distance

__all__ = ["MethodFailure", "ModelReuseMethod"]

# (epsilon, hidden, epochs, pool_size) -> list of (synthetic sorted keys,
# trained state_dict).  Pre-training is offline preparation, shared by all
# MR instances in the process.
_POOL_CACHE: dict[tuple, list[tuple[np.ndarray, dict]]] = {}


class MethodFailure(RuntimeError):
    """Raised when a build method cannot produce a usable training set."""


def _build_pool(
    epsilon: float, hidden: int, epochs: int, pool_points: int, seed: int
) -> list[tuple[np.ndarray, dict]]:
    """Pre-generate synthetic key sets and pre-train a model on each."""
    key = (round(epsilon, 6), hidden, epochs, pool_points)
    if key in _POOL_CACHE:
        return _POOL_CACHE[key]
    spacing = max(epsilon / 2.0, 0.02)
    deltas = list(np.arange(0.0, 0.95, spacing))
    pool: list[tuple[np.ndarray, dict]] = []
    config = TrainConfig(epochs=epochs, seed=seed)
    for i, delta in enumerate(deltas):
        for mirror in (False, True):
            if mirror and delta == 0.0:
                continue
            keys = np.sort(keys_with_uniform_distance(pool_points, delta, seed=seed + i))
            if mirror:
                # Mirrored skew: mass concentrated near 1 instead of 0.
                keys = np.sort(1.0 - keys)
            ranks = np.arange(pool_points) / (pool_points - 1)
            net = FFN([1, hidden, 1], seed=seed)
            train_regressor(net, keys, ranks, config)
            pool.append((keys, net.state_dict()))
    _POOL_CACHE[key] = pool
    return pool


class ModelReuseMethod(BuildMethod):
    """MR: reuse the pre-trained model of the most similar synthetic set."""

    name = "MR"
    requires_map_fn = False

    def __init__(
        self,
        epsilon: float = 0.5,
        hidden_size: int = 16,
        train_epochs: int = 500,
        pool_points: int = 256,
        seed: int = 0,
    ) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in (0, 1], got {epsilon}")
        self.epsilon = epsilon
        self.hidden_size = hidden_size
        self.train_epochs = train_epochs
        self.pool_points = pool_points
        self.seed = seed

    def prepare(self) -> int:
        """Force pool generation + pre-training; returns the pool size n_mr."""
        pool = _build_pool(
            self.epsilon, self.hidden_size, self.train_epochs, self.pool_points, self.seed
        )
        return len(pool)

    def compute_set(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None,
    ) -> MethodResult:
        pool = _build_pool(
            self.epsilon, self.hidden_size, self.train_epochs, self.pool_points, self.seed
        )
        started = time.perf_counter()
        lo, hi = float(sorted_keys[0]), float(sorted_keys[-1])
        span = hi - lo
        normalised = (
            (sorted_keys - lo) / span if span > 0 else np.zeros_like(sorted_keys)
        )
        # O(n_mr * n_S log n): the synthetic sets are the small side of the
        # KS computation, per the Section III fast algorithm.
        best_dist = np.inf
        best: tuple[np.ndarray, dict] | None = None
        for keys, state in pool:
            dist = ks_distance(keys, normalised, assume_sorted=True)
            if dist < best_dist:
                best_dist = dist
                best = (keys, state)
        elapsed = time.perf_counter() - started
        if best is None or best_dist > self.epsilon:
            raise MethodFailure(
                f"MR: no pre-trained model within epsilon={self.epsilon} "
                f"(closest at dist={best_dist:.3f})"
            )
        keys, state = best
        ranks = self._self_ranks(len(keys))
        return MethodResult(keys, ranks, elapsed, pretrained_state=state)
