"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the six evaluation data sets with distribution statistics.
``build``
    Build an index on a data set and report the Section VI cost breakdown.
``query``
    Build then run a point/window/kNN workload, reporting latencies.
``serve``
    Build an index, start the micro-batching :class:`IndexServer`, and
    drive it with a closed-loop workload (optionally with concurrent
    updates and background rebuilds).  No network involved.
``chaos``
    Run the fault-injection chaos scenarios (process kill + recovery,
    torn snapshot, rebuild-crash-retry) and assert zero
    acknowledged-update loss (see docs/serving.md).
``experiments``
    List the per-table/figure experiment drivers and how to run them.
``obs report``
    Render a ``REPRO_TRACE`` JSON-lines trace: per-phase cost breakdown
    plus the nested span tree (see docs/observability.md).
``obs flame``
    Turn a ``REPRO_TRACE`` trace into a flame graph: an SVG icicle (the
    default), the folded-stack text format (``--folded``), and a
    heaviest-paths terminal summary (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.baselines import GridIndex, HRRIndex, KDBIndex, RStarIndex
from repro.bench.harness import format_table
from repro.core import ELSIConfig, ELSIModelBuilder
from repro.data import DATASETS, load_dataset
from repro.indices import FloodIndex, LISAIndex, MLIndex, RSMIIndex, ZMIndex
from repro.queries.workload import knn_workload, point_workload, window_workload
from repro.spatial.cdf import uniform_dissimilarity
from repro.spatial.rect import Rect
from repro.spatial.zcurve import zvalues

__all__ = ["main"]

_LEARNED = {
    "ZM": ZMIndex,
    "ML": MLIndex,
    "RSMI": RSMIIndex,
    "LISA": LISAIndex,
    "Flood": FloodIndex,
}
_TRADITIONAL = {
    "Grid": GridIndex,
    "KDB": KDBIndex,
    "HRR": HRRIndex,
    "RR*": RStarIndex,
}
_METHODS = ("SP", "RSP", "CL", "MR", "RS", "RL", "OG")


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in DATASETS:
        points = load_dataset(name, args.n, seed=args.seed)
        keys = np.sort(zvalues(points, Rect.bounding(points)).astype(np.float64))
        rows.append(
            [
                name,
                len(points),
                f"{uniform_dissimilarity(keys, assume_sorted=True):.3f}",
                f"{points[:, 0].mean():.3f}",
                f"{points[:, 1].mean():.3f}",
            ]
        )
    print(format_table(
        ["data set", "n", "dist(D_U, D)", "mean x", "mean y"],
        rows,
        title=f"Evaluation data sets at n={args.n} (paper: 1e8+)",
    ))
    return 0


def _make_index(args: argparse.Namespace):
    config = ELSIConfig(lam=args.lam, train_epochs=args.epochs, seed=args.seed)
    if args.index in _TRADITIONAL:
        return _TRADITIONAL[args.index]()
    builder = ELSIModelBuilder(config, method=args.method)
    return _LEARNED[args.index](builder=builder)


def _cmd_build(args: argparse.Namespace) -> int:
    points = load_dataset(args.dataset, args.n, seed=args.seed)
    index = _make_index(args)
    started = time.perf_counter()
    index.build(points)
    total = time.perf_counter() - started
    print(f"built {args.index} on {args.dataset} (n={args.n}) in {total:.2f}s")
    stats = getattr(index, "build_stats", None)
    if stats is not None:
        print(format_table(
            ["component", "seconds"],
            [
                ["data preparation (cost_dp)", f"{stats.prepare_seconds:.3f}"],
                ["model training (T)", f"{stats.train_seconds:.3f}"],
                ["method extra (cost_ex)", f"{stats.extra_seconds:.3f}"],
                ["error bounds (M(n))", f"{stats.error_bound_seconds:.3f}"],
            ],
            title="Section VI cost decomposition",
        ))
        print(f"models: {stats.n_models}, training pairs: {stats.train_set_size}, "
              f"methods: {stats.methods_used}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    points = load_dataset(args.dataset, args.n, seed=args.seed)
    index = _make_index(args)
    index.build(points)

    rows = []
    queries = point_workload(points, args.queries, seed=args.seed)
    started = time.perf_counter()
    hits = sum(q.run(index) for q in queries)
    rows.append(["point", len(queries), f"{(time.perf_counter()-started)/len(queries)*1e6:.1f}",
                 f"{hits}/{len(queries)} found"])

    windows = window_workload(points, max(args.queries // 5, 5), 1e-3, seed=args.seed)
    started = time.perf_counter()
    counts = [len(q.run(index)) for q in windows]
    rows.append(["window (0.1%)", len(windows),
                 f"{(time.perf_counter()-started)/len(windows)*1e6:.1f}",
                 f"avg {np.mean(counts):.1f} results"])

    knns = knn_workload(points, max(args.queries // 10, 3), k=25, seed=args.seed)
    started = time.perf_counter()
    for q in knns:
        q.run(index)
    rows.append(["kNN (k=25)", len(knns),
                 f"{(time.perf_counter()-started)/len(knns)*1e6:.1f}", ""])

    print(format_table(
        ["query type", "count", "us/query", "notes"],
        rows,
        title=f"{args.index} on {args.dataset} (n={args.n})",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.core.update_processor import UpdateProcessor
    from repro.serve import IndexServer, ServeConfig, ServeWorkload, run_closed_loop

    points = load_dataset(args.dataset, args.n, seed=args.seed)
    index = _make_index(args)
    print(f"building {args.index} on {args.dataset} (n={args.n}) ...")
    index.build(points)

    serve_config = ServeConfig(
        max_batch_size=args.batch_size,
        max_wait_seconds=args.max_wait_ms / 1e3,
        worker_threads=args.workers,
        rebuild_check_every=args.rebuild_check_every,
        fsync_policy=args.fsync_policy,
    )
    if args.wal and not args.snapshot_dir:
        print("--wal requires --snapshot-dir (the log lives next to the "
              "snapshots)", file=sys.stderr)
        return 2
    workload = ServeWorkload.mixed(
        points,
        args.requests,
        point_fraction=args.point_fraction,
        knn_fraction=args.knn_fraction,
        k=args.k,
        seed=args.seed,
    )
    rng = np.random.default_rng(args.seed + 1)
    updates = rng.uniform(0.0, 1.0, size=(args.updates, points.shape[1]))

    server = IndexServer(
        index,
        serve_config,
        elsi_config=ELSIConfig(seed=args.seed),
        snapshots=args.snapshot_dir,
        wal=bool(args.wal),
    )
    with server:
        stop_updates = threading.Event()

        def update_feeder() -> None:
            for p in updates:
                if stop_updates.is_set():
                    return
                server.insert(p)

        feeder = threading.Thread(target=update_feeder, name="serve-updates")
        feeder.start()
        result = run_closed_loop(
            server, workload, clients=args.clients, pipeline=args.pipeline
        )
        stop_updates.set()
        feeder.join()
        stats = server.stats.snapshot()
        final_generation = server.generation
        final_health = server.health

    baseline_result = None
    if args.baseline:
        processor = UpdateProcessor(index, ELSIConfig(seed=args.seed))
        from repro.serve import run_baseline

        baseline_result = run_baseline(processor, workload)

    rows = [
        ["requests served", f"{result.n_requests}", ""],
        ["errors", f"{result.errors}", ""],
        ["throughput", f"{result.throughput:,.0f} req/s", ""],
        ["mean batch size", f"{stats['mean_batch_size']:.1f}",
         f"max {stats['max_batch_size']}"],
        ["latency p50 / p99",
         f"{stats['latency']['p50_seconds']*1e3:.2f} / "
         f"{stats['latency']['p99_seconds']*1e3:.2f} ms", ""],
        ["inserts applied", f"{stats['inserts']}", ""],
        ["rebuilds (generation)", f"{stats['rebuilds']} (gen {final_generation})",
         f"{stats['rebuild_seconds']:.2f}s total"],
        ["health", final_health,
         f"shed {sum(stats['shed'].values())}, "
         f"retries {sum(stats['retries'].values())}"],
    ]
    if args.wal:
        rows.append(["WAL appends", f"{stats['wal_appends']}",
                     f"fsync {args.fsync_policy}"])
    if baseline_result is not None:
        rows.append(["baseline (unbatched)",
                     f"{baseline_result.throughput:,.0f} req/s",
                     f"speedup {result.throughput / max(baseline_result.throughput, 1e-9):.1f}x"])
    print(format_table(
        ["metric", "value", "notes"],
        rows,
        title=(f"serve: {args.index} on {args.dataset} "
               f"(batch<= {args.batch_size}, wait {args.max_wait_ms}ms, "
               f"{args.clients} clients x {args.pipeline} pipeline)"),
    ))
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    import tempfile

    from repro.queries.workload import window_workload
    from repro.shard import RouterConfig, build_cluster

    slo_targets = None
    if args.slo_target:
        slo_targets = {}
        for spec in args.slo_target:
            try:
                kind, seconds = spec.split("=", 1)
                slo_targets[kind] = float(seconds)
            except ValueError:
                print(f"bad --slo-target {spec!r} (want KIND=SECONDS)",
                      file=sys.stderr)
                return 2
    router_config = RouterConfig(
        slo_targets=slo_targets,
        telemetry_interval=args.telemetry_interval,
    )
    points = load_dataset(args.dataset, args.n, seed=args.seed)
    directory = args.dir or tempfile.mkdtemp(prefix="repro-shard-")
    print(f"building {args.shards} x {args.index} shards on {args.dataset} "
          f"(n={args.n}) under {directory} ...")
    router = build_cluster(
        points,
        directory,
        n_shards=args.shards,
        index=args.index,
        method=args.method,
        curve=args.curve,
        elsi={"lam": args.lam, "train_epochs": args.epochs, "seed": args.seed},
        serve={"max_wait_seconds": 0.0},
        router_config=router_config,
    )
    rng = np.random.default_rng(args.seed)
    n_points = args.requests
    n_windows = max(args.requests // 20, 5)
    n_knn = max(args.requests // 50, 3)
    probe_rows = rng.integers(0, len(points), size=n_points)
    probes = points[probe_rows]
    windows = [q.window for q in window_workload(points, n_windows, 1e-3,
                                                 seed=args.seed)]
    knn_pts = points[rng.integers(0, len(points), size=n_knn)]

    rows = []
    with router:
        if args.metrics_port is not None:
            endpoint = router.serve_metrics(port=args.metrics_port)
            print(f"metrics endpoint: {endpoint.url}/metrics")
        started = time.perf_counter()
        hits = int(router.point_queries(probes).sum())
        seconds = time.perf_counter() - started
        rows.append(["point", f"{n_points}", f"{n_points / seconds:,.0f}/s",
                     f"{hits} hits"])
        started = time.perf_counter()
        results = router.window_queries(windows)
        seconds = time.perf_counter() - started
        rows.append(["window (0.1%)", f"{n_windows}",
                     f"{n_windows / seconds:,.0f}/s",
                     f"avg {np.mean([len(r) for r in results]):.1f} results"])
        started = time.perf_counter()
        router.knn_queries(knn_pts, args.k)
        seconds = time.perf_counter() - started
        rows.append([f"kNN (k={args.k})", f"{n_knn}",
                     f"{n_knn / seconds:,.0f}/s", ""])
        health = router.health_summary()
        stats = router.stats_snapshot()
        served = sum(e["value"] for e in stats.get("serve.requests_completed", []))
        rows.append(["fleet health", health["overall"],
                     f"{len(health['shards'])} shards",
                     f"{served:,.0f} sub-requests"])
    print(format_table(
        ["workload", "count", "throughput", "notes"],
        rows,
        title=(f"shard: {args.shards} x {args.index} on {args.dataset} "
               f"(n={args.n}, curve={args.curve})"),
    ))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.faults.chaos import ChaosError, run_scenarios

    names = args.scenario  # None means every scenario
    if args.dir is not None:
        context = None
        base = args.dir
    else:
        context = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        base = context.name
    try:
        report = run_scenarios(base, names=names, seed=args.seed)
    except ChaosError as exc:
        print(f"CHAOS FAILURE: {exc}", file=sys.stderr)
        return 1
    finally:
        if context is not None:
            context.cleanup()
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    rows = [
        [r["scenario"], f"{r['acked']}", f"{r['recovered_prefix']}",
         "ok" if r["ok"] else "LOST UPDATES"]
        for r in report["scenarios"]
    ]
    print(format_table(
        ["scenario", "acked ops", "recovered prefix", "verdict"],
        rows,
        title="chaos: crash/recover scenarios (zero acknowledged-update loss)",
    ))
    print(f"fault triggers: {report['fault_report']['triggered']}")
    return 0 if report["ok"] else 1


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        check_cross_process,
        load_trace,
        missing_spans,
        render_report,
    )

    try:
        records = load_trace(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(render_report(
        records, max_depth=args.depth, min_seconds=args.min_ms / 1e3
    ))
    if args.require:
        required = [name for name in args.require.split(",") if name]
        missing = missing_spans(records, required)
        if missing:
            print(f"\nmissing required spans: {', '.join(missing)}", file=sys.stderr)
            return 1
        print(f"\nall {len(required)} required spans present")
    if args.require_cross:
        try:
            root_name, child_name = args.require_cross.split(":", 1)
        except ValueError:
            print("--require-cross wants ROOT:CHILD (span names)",
                  file=sys.stderr)
            return 2
        problem = check_cross_process(records, root_name, child_name)
        if problem is not None:
            print(f"\ncross-process check failed: {problem}", file=sys.stderr)
            return 1
        print(f"\ncross-process check passed: {root_name!r} has adopted "
              f"{child_name!r} spans from another process sharing its "
              "trace_id")
    return 0


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        load_trace,
        render_report,
        request_ids,
        request_spans,
    )

    try:
        records = load_trace(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    ids = request_ids(records)
    if args.list or not args.request:
        if not ids:
            print("trace carries no request_id-tagged spans", file=sys.stderr)
            return 1
        print(f"{len(ids)} request(s) in {args.trace}:")
        for rid in ids:
            print(f"  {rid}")
        if not args.request:
            print("\npick one with: repro obs trace "
                  f"{args.trace} --request <id>")
        return 0
    subset = request_spans(records, args.request)
    if not subset:
        print(f"no spans tagged request_id={args.request!r} "
              f"(known: {', '.join(ids) or 'none'})", file=sys.stderr)
        return 1
    pids = sorted({r.pid for r in subset})
    print(f"request {args.request}: {len(subset)} spans across "
          f"{len(pids)} process(es) {pids}")
    print(render_report(subset, max_depth=args.depth, min_seconds=0.0))
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    from repro.obs.top import run_top

    url = args.url.rstrip("/") + "/overview"

    def source() -> dict:
        with urlopen(url, timeout=10.0) as resp:
            overview = json.loads(resp.read().decode("utf-8"))
        shards = overview.get("shards")
        if isinstance(shards, dict):
            # JSON object keys are strings; the renderer sorts shard ids.
            overview["shards"] = {int(k): v for k, v in shards.items()}
        return overview

    try:
        run_top(source, interval=args.interval, iterations=args.iterations)
    except URLError as exc:
        print(f"cannot reach {url}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    from repro.obs.flame import folded_stacks, render_folded, render_svg, top_paths
    from repro.obs.report import load_trace

    try:
        records = load_trace(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if not records:
        print("trace contains no spans", file=sys.stderr)
        return 1
    stacks = folded_stacks(records)
    if args.folded:
        with open(args.folded, "w") as fh:
            fh.write(render_folded(stacks) + "\n")
        print(f"wrote folded stacks for {len(records)} spans to {args.folded}")
    with open(args.output, "w") as fh:
        fh.write(render_svg(stacks, width=args.width))
    print(f"wrote flame graph for {len(records)} spans to {args.output}")
    total = sum(stacks.values())
    print(f"\ntop {args.top} paths by self time ({total * 1e3:.1f} ms traced):")
    for path, seconds in top_paths(stacks, args.top):
        share = seconds / total * 100.0 if total > 0 else 0.0
        print(f"  {seconds * 1e3:9.2f} ms  {share:5.1f}%  {path}")
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    rows = [
        ["Fig. 6", "selector accuracy vs lambda", "benchmarks/bench_fig06_selector.py"],
        ["Fig. 7", "method Pareto fronts", "benchmarks/bench_fig07_pareto.py"],
        ["Table I", "cost decomposition", "benchmarks/bench_table1_costs.py"],
        ["Table II", "ELSI vs Rand ablation", "benchmarks/bench_table2_ablation.py"],
        ["Fig. 8", "build time vs distribution", "benchmarks/bench_fig08_build.py"],
        ["Fig. 9", "build time vs lambda", "benchmarks/bench_fig09_build_lambda.py"],
        ["Fig. 10", "point query vs distribution", "benchmarks/bench_fig10_point.py"],
        ["Fig. 11", "point query vs lambda", "benchmarks/bench_fig11_point_lambda.py"],
        ["Fig. 12", "window query + recall", "benchmarks/bench_fig12_window.py"],
        ["Fig. 13", "window sweeps", "benchmarks/bench_fig13_window_sweeps.py"],
        ["Fig. 14", "kNN + recall", "benchmarks/bench_fig14_knn.py"],
        ["Fig. 15", "insertions", "benchmarks/bench_fig15_updates.py"],
        ["Fig. 16", "windows after insertions", "benchmarks/bench_fig16_window_updates.py"],
        ["(extra)", "KS / RMI ablations", "benchmarks/bench_ablation_*.py"],
        ["(extra)", "Flood + PGM extensions", "benchmarks/bench_ext_flood_pgm.py"],
    ]
    print(format_table(["artefact", "content", "benchmark"], rows,
                       title="Paper experiments (run: pytest <file> --benchmark-only -s)"))
    print("\nScale with REPRO_SCALE=smoke|default|large (see repro.bench.harness).")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ELSI: Efficiently Learning Spatial Indices (ICDE 2023) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list evaluation data sets")
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_datasets)

    for name, fn in (("build", _cmd_build), ("query", _cmd_query)):
        p = sub.add_parser(name, help=f"{name} an index on a data set")
        p.add_argument("--index", choices=sorted({**_LEARNED, **_TRADITIONAL}), default="ZM")
        p.add_argument("--dataset", choices=sorted(DATASETS), default="OSM1")
        p.add_argument("--method", choices=_METHODS, default="RS",
                       help="ELSI build method (learned indices only)")
        p.add_argument("--n", type=int, default=20_000)
        p.add_argument("--lam", type=float, default=0.8)
        p.add_argument("--epochs", type=int, default=300)
        p.add_argument("--queries", type=int, default=500)
        p.add_argument("--seed", type=int, default=0)
        p.set_defaults(func=fn)

    p = sub.add_parser("serve", help="serve a built index with micro-batching")
    p.add_argument("--index", choices=sorted({**_LEARNED, **_TRADITIONAL}), default="ZM")
    p.add_argument("--dataset", choices=sorted(DATASETS), default="OSM1")
    p.add_argument("--method", choices=_METHODS, default="RS")
    p.add_argument("--n", type=int, default=20_000)
    p.add_argument("--lam", type=float, default=0.8)
    p.add_argument("--epochs", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests", type=int, default=5_000,
                   help="workload size (closed-loop, in-process)")
    p.add_argument("--point-fraction", type=float, default=0.8)
    p.add_argument("--knn-fraction", type=float, default=0.1)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--pipeline", type=int, default=64,
                   help="outstanding requests per client")
    p.add_argument("--batch-size", type=int, default=256,
                   help="admission control: max requests per micro-batch")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="admission control: batch-formation window")
    p.add_argument("--workers", type=int, default=1,
                   help="dispatcher threads (see docs/serving.md)")
    p.add_argument("--updates", type=int, default=0,
                   help="concurrent inserts fed while the workload runs")
    p.add_argument("--rebuild-check-every", type=int, default=512)
    p.add_argument("--snapshot-dir", default=None,
                   help="persist generation snapshots to this directory")
    p.add_argument("--wal", action="store_true",
                   help="write-ahead-log every update before acknowledging "
                        "it (requires --snapshot-dir; see docs/serving.md)")
    p.add_argument("--fsync-policy", choices=("always", "batch", "off"),
                   default="always",
                   help="WAL durability: fsync per append, per batch, or "
                        "leave writes OS-buffered")
    p.add_argument("--baseline", action="store_true",
                   help="also time the unbatched one-at-a-time loop")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("shard", help="serve through the sharded scatter-gather tier")
    p.add_argument("--index", choices=("ZM", "ML", "LISA", "Flood"), default="ZM")
    p.add_argument("--dataset", choices=sorted(DATASETS), default="OSM1")
    p.add_argument("--method", choices=_METHODS, default="SP")
    p.add_argument("--curve", choices=("zorder", "hilbert"), default="zorder")
    p.add_argument("--n", type=int, default=20_000)
    p.add_argument("--shards", type=int, default=4,
                   help="worker processes / keyspace ranges")
    p.add_argument("--lam", type=float, default=0.8)
    p.add_argument("--epochs", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests", type=int, default=20_000,
                   help="point probes (windows/kNN scale from this)")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--dir", default=None,
                   help="cluster directory (default: a fresh temp dir); "
                        "reusable with repro.shard.open_cluster")
    p.add_argument("--telemetry-interval", type=float, default=None,
                   help="start the background fleet-telemetry poller with "
                        "this scrape interval (seconds)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve /metrics, /health and /overview on this "
                        "port for the duration of the run (0 = ephemeral)")
    p.add_argument("--slo-target", action="append", default=None,
                   metavar="KIND=SECONDS",
                   help="router SLO latency target (repeatable), e.g. "
                        "--slo-target point=0.05 --slo-target knn=0.2")
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser("chaos", help="run the fault-injection chaos scenarios")
    p.add_argument("--scenario", action="append", default=None,
                   choices=("kill-and-recover", "torn-snapshot",
                            "rebuild-crash-retry"),
                   help="scenario to run (repeatable; default: all)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dir", default=None,
                   help="working directory (default: a fresh temp dir)")
    p.add_argument("--report", default=None,
                   help="write the combined JSON report here")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("obs", help="observability tools (traces + metrics)")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser("report", help="render a REPRO_TRACE JSONL trace")
    p.add_argument("trace", help="path to the JSON-lines trace file")
    p.add_argument("--depth", type=int, default=12,
                   help="maximum span-tree depth to render")
    p.add_argument("--min-ms", type=float, default=0.0,
                   help="hide child spans shorter than this many ms")
    p.add_argument("--require", default=None,
                   help="comma-separated span names that must be present "
                        "(exit 1 otherwise; the CI smoke assertion)")
    p.add_argument("--require-cross", default=None, metavar="ROOT:CHILD",
                   help="require a ROOT span with an adopted CHILD span "
                        "from another process sharing ROOT's trace_id "
                        "(exit 1 otherwise; the cross-process CI assertion)")
    p.set_defaults(func=_cmd_obs_report)
    p = obs_sub.add_parser(
        "trace", help="dump one request's cross-process span tree"
    )
    p.add_argument("trace", help="path to the JSON-lines trace file")
    p.add_argument("--request", default=None,
                   help="request id (from scatter spans / --list)")
    p.add_argument("--list", action="store_true",
                   help="list the request ids present in the trace")
    p.add_argument("--depth", type=int, default=12,
                   help="maximum span-tree depth to render")
    p.set_defaults(func=_cmd_obs_trace)
    p = obs_sub.add_parser(
        "top", help="live fleet dashboard off a /metrics endpoint"
    )
    p.add_argument("--url", default="http://127.0.0.1:9180",
                   help="base URL of a router's metrics endpoint "
                        "(repro shard --metrics-port / serve_metrics())")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh interval in seconds")
    p.add_argument("--iterations", type=int, default=None,
                   help="frames to draw before exiting (default: forever)")
    p.set_defaults(func=_cmd_obs_top)
    p = obs_sub.add_parser("flame", help="render a trace as a flame graph")
    p.add_argument("trace", help="path to the JSON-lines trace file")
    p.add_argument("--output", default="flame.svg",
                   help="SVG output path (default flame.svg)")
    p.add_argument("--folded", default=None,
                   help="also write folded stacks (flamegraph.pl/speedscope "
                        "input) to this path")
    p.add_argument("--width", type=int, default=1200,
                   help="SVG width in pixels")
    p.add_argument("--top", type=int, default=10,
                   help="heaviest paths to print to the terminal")
    p.set_defaults(func=_cmd_obs_flame)

    p = sub.add_parser("experiments", help="list the paper's experiments")
    p.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
