"""Unit tests for TrainedModel, OriginalBuilder and the predict-and-scan
correctness invariant (Section III, condition 2)."""

import numpy as np
import pytest

from repro.indices.base import BuildStats, OriginalBuilder, TrainedModel, fit_cdf_model
from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig


def _sorted_keys(n: int = 500, seed: int = 0) -> np.ndarray:
    return np.sort(np.random.default_rng(seed).random(n) ** 2)


class TestTrainedModel:
    def test_normalise_range(self):
        model = TrainedModel(FFN([1, 4, 1]), key_lo=10.0, key_hi=20.0, n_indexed=5)
        np.testing.assert_allclose(
            model.normalise(np.array([10.0, 15.0, 20.0])), [0.0, 0.5, 1.0]
        )

    def test_normalise_degenerate_range(self):
        model = TrainedModel(FFN([1, 4, 1]), key_lo=5.0, key_hi=5.0, n_indexed=3)
        np.testing.assert_array_equal(model.normalise(np.array([5.0, 7.0])), [0.0, 0.0])

    def test_positions_clipped(self):
        model = TrainedModel(FFN([1, 4, 1], seed=0), 0.0, 1.0, n_indexed=10)
        pos = model.predict_positions(np.array([-100.0, 0.5, 100.0]))
        assert np.all((pos >= 0) & (pos <= 9))

    def test_invocation_counter(self):
        model = TrainedModel(FFN([1, 4, 1]), 0.0, 1.0, n_indexed=10)
        model.predict_positions(np.array([0.1, 0.2, 0.3]))
        assert model.invocations == 3

    def test_error_bounds_guarantee(self):
        """After measure_error_bounds, every indexed key's true position
        lies within [pred - err_l, pred + err_u]."""
        keys = _sorted_keys(800)
        ranks = np.arange(len(keys)) / (len(keys) - 1)
        model, _ = fit_cdf_model(
            keys, ranks, keys[0], keys[-1], len(keys), train_config=TrainConfig(epochs=80)
        )
        model.measure_error_bounds(keys)
        for i in (0, 100, 400, 799):
            lo, hi = model.search_range(keys[i])
            assert lo <= i < hi

    def test_error_width(self):
        model = TrainedModel(FFN([1, 4, 1]), 0.0, 1.0, n_indexed=10)
        model.err_l, model.err_u = 3, 7
        assert model.error_width == 10

    def test_empty_bounds(self):
        model = TrainedModel(FFN([1, 4, 1]), 0.0, 1.0, n_indexed=0)
        model.measure_error_bounds(np.empty(0))
        assert model.error_width == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            TrainedModel(FFN([1, 4, 1]), 0.0, 1.0, n_indexed=-1)


class TestOriginalBuilder:
    def test_builds_model_with_stats(self):
        keys = _sorted_keys(300)
        pts = np.column_stack([keys, keys])
        stats = BuildStats()
        builder = OriginalBuilder(train_config=TrainConfig(epochs=60))
        model = builder.build_model(keys, pts, stats)
        assert model.method_name == "OG"
        assert model.train_set_size == 300
        assert stats.n_models == 1
        assert stats.train_seconds > 0
        assert stats.methods_used == {"OG": 1}

    def test_empty_partition_rejected(self):
        builder = OriginalBuilder()
        with pytest.raises(ValueError):
            builder.build_model(np.empty(0), np.empty((0, 2)), BuildStats())

    def test_stats_merge(self):
        a = BuildStats(prepare_seconds=1.0, train_seconds=2.0, n_models=1)
        a.methods_used["SP"] = 1
        b = BuildStats(train_seconds=3.0, extra_seconds=0.5, n_models=2)
        b.methods_used["SP"] = 2
        b.methods_used["OG"] = 1
        a.merge(b)
        assert a.train_seconds == 5.0
        assert a.n_models == 3
        assert a.methods_used == {"SP": 3, "OG": 1}
        assert a.total_seconds == pytest.approx(6.5)
