"""The concurrent index server: micro-batching, generations, live updates.

:class:`IndexServer` owns one built learned index (wrapped in an
:class:`~repro.core.update_processor.UpdateProcessor`) behind a
*generation pointer*.  Requests enter a thread-safe queue; dispatcher
threads coalesce them into micro-batches under two admission knobs —
``max_batch_size`` and ``max_wait_seconds`` — and answer each batch
through the vectorised batch paths (``point_queries`` /
``knn_queries``), which is where PR 1's 17–111× batch-over-scalar gains
become request throughput.

Consistency model:

- Every micro-batch reads the generation pointer **once** and answers all
  of its requests from that generation, so one batch can never mix old
  and new index state.
- Updates apply synchronously to the live generation's update processor
  (side list / deletion marks) and, while a rebuild is in flight, are
  also journalled and replayed into the successor generation before the
  swap — no update is lost across a swap, and no query ever waits for a
  rebuild: rebuilding happens entirely in a background worker, and the
  swap is a single attribute assignment.
- The rebuild worker re-evaluates the rebuild predictor (or the CDF-drift
  heuristic) every ``rebuild_check_every`` updates, exactly the paper's
  ``f_u``-periodic ``to_rebuild`` protocol run off the request path.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import ELSIConfig
from repro.core.update_processor import RebuildPredictor, UpdateProcessor
from repro.indices.base import LearnedSpatialIndex
from repro.obs.metrics import get_registry
from repro.obs.trace import span as _span
from repro.serve.requests import KNN, POINT, WINDOW, Reply, Request
from repro.serve.snapshots import SnapshotManager
from repro.serve.stats import ServerStats
from repro.spatial.rect import Rect

__all__ = ["Generation", "IndexServer", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control and worker knobs.

    Attributes
    ----------
    max_batch_size:
        Hard cap on requests per micro-batch.
    max_wait_seconds:
        How long a dispatcher holds an under-full batch open for more
        requests.  ``0`` serves whatever is already queued immediately —
        the latency-first setting; larger windows trade p50 latency for
        throughput.
    worker_threads:
        Dispatcher thread count.  One is usually right in CPython (the
        batch engine holds the GIL only between NumPy kernels); more
        workers help when batches are large enough for NumPy to release
        the GIL for meaningful stretches.
    rebuild_check_every:
        Updates between rebuild-predictor evaluations (the serving-side
        ``f_u``).  The check and any rebuild run in a background worker.
    auto_rebuild:
        Whether the background worker may swap in rebuilt generations on
        its own.  :meth:`IndexServer.rebuild_now` works either way.
    """

    max_batch_size: int = 256
    max_wait_seconds: float = 0.002
    worker_threads: int = 1
    rebuild_check_every: int = 512
    auto_rebuild: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )
        if self.worker_threads < 1:
            raise ValueError(f"worker_threads must be >= 1, got {self.worker_threads}")
        if self.rebuild_check_every < 1:
            raise ValueError(
                f"rebuild_check_every must be >= 1, got {self.rebuild_check_every}"
            )


@dataclass(frozen=True)
class Generation:
    """One immutable-pointer serving generation."""

    gen_id: int
    processor: UpdateProcessor

    @property
    def index(self) -> LearnedSpatialIndex:
        return self.processor.index


_SHUTDOWN = object()


class IndexServer:
    """A concurrent, micro-batching server over one learned spatial index.

    Parameters
    ----------
    index:
        A *built* :class:`~repro.indices.base.LearnedSpatialIndex`.
    config:
        Admission/worker knobs (:class:`ServeConfig`).
    elsi_config:
        Passed to the update processor (supplies ``f_u`` etc.).
    predictor:
        Optional trained rebuild predictor; without one the CDF-drift
        heuristic decides rebuilds.
    index_factory:
        Recreates the index class for rebuilds (same contract as
        :class:`UpdateProcessor`); required when the index was built with
        non-default constructor arguments.
    snapshots:
        Optional :class:`SnapshotManager` (or directory path); when set,
        every rebuild's result is persisted as the new generation's
        snapshot.
    """

    def __init__(
        self,
        index: LearnedSpatialIndex,
        config: ServeConfig | None = None,
        elsi_config: ELSIConfig | None = None,
        predictor: RebuildPredictor | None = None,
        index_factory=None,
        snapshots: "SnapshotManager | str | None" = None,
        generation: int = 0,
    ) -> None:
        if index.bounds is None:
            raise ValueError("the served index must be built first")
        self.config = config or ServeConfig()
        self.elsi_config = elsi_config or ELSIConfig()
        self.predictor = predictor
        self._index_factory = index_factory or (
            lambda: type(index)(builder=index.builder)
        )
        self.stats = ServerStats()
        if isinstance(snapshots, (str, bytes)) or hasattr(snapshots, "__fspath__"):
            snapshots = SnapshotManager(snapshots)
        self.snapshots: SnapshotManager | None = snapshots
        self._gen = Generation(generation, self._make_processor(index))
        self._gen_swapped_at = time.time()
        # Serving-health gauges, recorded into the per-server registry so
        # stats_snapshot() exports them next to the counters/histograms.
        self._journal_gauge = self.stats.registry.gauge("serve.rebuild_journal_depth")
        self._age_gauge = self.stats.registry.gauge("serve.generation_age_seconds")
        self._swap_hist = self.stats.registry.histogram("serve.swap_seconds")
        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._rebuild_wanted = threading.Event()
        self._update_lock = threading.Lock()
        self._rebuild_mutex = threading.Lock()
        self._rebuilding = False
        self._pending_ops: list[tuple[str, np.ndarray]] = []
        self._updates_since_check = 0
        self._threads: list[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls, snapshots: "SnapshotManager | str", generation: int | None = None, **kwargs
    ) -> "IndexServer":
        """Open a server on the latest (or a specific) persisted snapshot."""
        if not isinstance(snapshots, SnapshotManager):
            snapshots = SnapshotManager(snapshots)
        index, gen_id = snapshots.load(generation)
        return cls(index, snapshots=snapshots, generation=gen_id, **kwargs)

    def start(self) -> "IndexServer":
        if self._started:
            return self
        self._started = True
        self._stop.clear()
        for i in range(self.config.worker_threads):
            t = threading.Thread(
                target=self._dispatch_loop, name=f"serve-dispatch-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        t = threading.Thread(
            target=self._rebuild_loop, name="serve-rebuild", daemon=True
        )
        t.start()
        self._threads.append(t)
        return self

    def close(self) -> None:
        """Stop workers; queued requests are served before shutdown."""
        if not self._started:
            return
        self._stop.set()
        for _ in range(self.config.worker_threads):
            self._queue.put(_SHUTDOWN)
        self._rebuild_wanted.set()
        for t in self._threads:
            t.join(timeout=30.0)
        self._threads = []
        self._started = False

    def __enter__(self) -> "IndexServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Current generation id (bumps on every swap)."""
        return self._gen.gen_id

    @property
    def index(self) -> LearnedSpatialIndex:
        """The current generation's base index."""
        return self._gen.index

    @property
    def n_points(self) -> int:
        """Logical cardinality |D'| of the current generation."""
        return self._gen.processor.n_effective

    def stats_snapshot(self) -> dict:
        """Exporter-format metrics dump: this server's registry (requests,
        batches, rebuilds, swap latency, journal depth, generation age)
        merged with the process-wide registry (build/query/perf metrics).
        ``{name: [{labels, kind, value}, ...]}``, JSON-able."""
        self._age_gauge.set(time.time() - self._gen_swapped_at)
        out = dict(get_registry().export())
        out.update(self.stats.registry.export())
        return out

    # ------------------------------------------------------------------
    # Request submission (async) and sync conveniences
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Reply:
        if not self._started:
            raise RuntimeError("server is not started; use start() or a with-block")
        self.stats.note_submit(request.kind)
        self._queue.put(request)
        return request.reply

    def submit_point(self, point: np.ndarray) -> Reply:
        return self.submit(
            Request(kind=POINT, point=np.asarray(point, dtype=np.float64))
        )

    def submit_window(self, window: Rect) -> Reply:
        return self.submit(Request(kind=WINDOW, window=window))

    def submit_knn(self, point: np.ndarray, k: int) -> Reply:
        return self.submit(
            Request(kind=KNN, point=np.asarray(point, dtype=np.float64), k=k)
        )

    def point_query(self, point: np.ndarray, timeout: float | None = 30.0) -> bool:
        return self.submit_point(point).wait(timeout)

    def window_query(self, window: Rect, timeout: float | None = 30.0) -> np.ndarray:
        return self.submit_window(window).wait(timeout)

    def knn_query(
        self, point: np.ndarray, k: int, timeout: float | None = 30.0
    ) -> np.ndarray:
        return self.submit_knn(point, k).wait(timeout)

    # ------------------------------------------------------------------
    # Update ingestion
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> None:
        """Ingest one insertion into the live generation (synchronous).

        While a rebuild is in flight the operation is also journalled and
        replayed into the successor generation before the swap.
        """
        self._apply_update("insert", np.asarray(point, dtype=np.float64))

    def delete(self, point: np.ndarray) -> bool:
        return self._apply_update("delete", np.asarray(point, dtype=np.float64))

    def _apply_update(self, op: str, point: np.ndarray):
        with self._update_lock:
            processor = self._gen.processor
            if op == "insert":
                result = processor.insert(point)
            else:
                result = processor.delete(point)
            if self._rebuilding:
                self._pending_ops.append((op, point))
                self._journal_gauge.set(len(self._pending_ops))
            self._updates_since_check += 1
            due = self._updates_since_check >= self.config.rebuild_check_every
            if due:
                self._updates_since_check = 0
        self.stats.note_update(op)
        if due and self.config.auto_rebuild:
            self._rebuild_wanted.set()
        return result

    # ------------------------------------------------------------------
    # Dispatch: micro-batch admission and execution
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        cfg = self.config
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            if first is _SHUTDOWN:
                return
            batch = [first]
            deadline = time.perf_counter() + cfg.max_wait_seconds
            while len(batch) < cfg.max_batch_size:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        item = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if item is _SHUTDOWN:
                    # Keep the poison pill effective for sibling workers.
                    self._queue.put(_SHUTDOWN)
                    break
                batch.append(item)
            self._serve_batch(batch)

    def _serve_batch(self, batch: list[Request]) -> None:
        # One generation read per batch: every request in the batch is
        # answered from this snapshot, however long the batch takes and
        # whatever the rebuild worker swaps in meanwhile.
        gen = self._gen
        started = time.perf_counter()
        errors = 0
        try:
            with _span("serve.batch", size=len(batch), gen=gen.gen_id):
                points_idx = [i for i, r in enumerate(batch) if r.kind == POINT]
                if points_idx:
                    pts = np.stack([batch[i].point for i in points_idx])
                    hits = gen.processor.point_queries(pts)
                    for i, hit in zip(points_idx, hits):
                        batch[i].reply.resolve(bool(hit), gen.gen_id)
                by_k: dict[int, list[int]] = {}
                for i, r in enumerate(batch):
                    if r.kind == KNN:
                        by_k.setdefault(r.k, []).append(i)
                for k, members in by_k.items():
                    pts = np.stack([batch[i].point for i in members])
                    neighbours = gen.processor.knn_queries(pts, k)
                    for i, result in zip(members, neighbours):
                        batch[i].reply.resolve(result, gen.gen_id)
                window_idx = [i for i, r in enumerate(batch) if r.kind == WINDOW]
                if window_idx:
                    # All of the batch's windows go through the processor's
                    # batch path at once (one model pass over every corner
                    # on vectorised indices) instead of one call per window.
                    with _span("serve.window_batch", windows=len(window_idx)):
                        results = gen.processor.window_queries(
                            [batch[i].window for i in window_idx]
                        )
                    for i, result in zip(window_idx, results):
                        batch[i].reply.resolve(result, gen.gen_id)
        except BaseException as exc:  # noqa: BLE001 - must fail replies, not the worker
            for r in batch:
                if not r.reply.done():
                    r.reply.reject(exc)
                    errors += 1
        service_seconds = time.perf_counter() - started
        queue_waits = [started - r.reply.submitted_at for r in batch]
        latencies = [r.reply.latency_seconds for r in batch]
        self.stats.note_batch(
            len(batch), service_seconds, queue_waits, latencies, errors=errors
        )

    # ------------------------------------------------------------------
    # Background rebuild + generation swap
    # ------------------------------------------------------------------
    def _rebuild_loop(self) -> None:
        while not self._stop.is_set():
            if not self._rebuild_wanted.wait(timeout=0.1):
                continue
            self._rebuild_wanted.clear()
            if self._stop.is_set():
                return
            try:
                if self._gen.processor.to_rebuild():
                    self.rebuild_now()
            except Exception:  # noqa: BLE001 - the worker must survive
                continue

    def rebuild_now(self) -> float:
        """Rebuild on the logical data set and swap generations; returns
        the build seconds.  Safe to call from any thread; queries keep
        being served from the old generation throughout."""
        with self._rebuild_mutex:
            with self._update_lock:
                old = self._gen
                points = old.processor.current_points()
                self._pending_ops = []
                self._rebuilding = True
            try:
                with _span("serve.rebuild", gen=old.gen_id, n=len(points)):
                    started = time.perf_counter()
                    with _span("serve.rebuild.build", n=len(points)):
                        fresh = self._index_factory()
                        fresh.build(points)
                    elapsed = time.perf_counter() - started
                    new_processor = self._make_processor(fresh)
                    swap_started = time.perf_counter()
                    with _span("serve.rebuild.swap") as swap_span:
                        with self._update_lock:
                            depth = len(self._pending_ops)
                            swap_span.set(journal_depth=depth)
                            with _span("serve.rebuild.replay", journal_depth=depth):
                                for op, p in self._pending_ops:
                                    if op == "insert":
                                        new_processor.insert(p)
                                    else:
                                        new_processor.delete(p)
                            self._pending_ops = []
                            self._gen = Generation(old.gen_id + 1, new_processor)
                            self._gen_swapped_at = time.time()
                    self._swap_hist.record(time.perf_counter() - swap_started)
                    self._journal_gauge.set(0)
            finally:
                with self._update_lock:
                    self._rebuilding = False
        self.stats.note_rebuild(elapsed)
        if self.snapshots is not None:
            self.save_snapshot()
        return elapsed

    def _make_processor(self, index: LearnedSpatialIndex) -> UpdateProcessor:
        # auto_rebuild stays False: the *server* owns rebuild scheduling
        # (background worker), never the synchronous update call path.
        return UpdateProcessor(
            index,
            self.elsi_config,
            predictor=self.predictor,
            auto_rebuild=False,
            index_factory=self._index_factory,
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save_snapshot(self) -> "str | None":
        """Persist the current generation's base index (side-list updates
        pending since the last rebuild are not part of the snapshot)."""
        if self.snapshots is None:
            raise RuntimeError("no SnapshotManager configured")
        gen = self._gen
        path = self.snapshots.save(gen.index, gen.gen_id)
        self.stats.note_snapshot()
        return str(path)
