"""The ELSI update processor and rebuild predictor (Section IV-B2).

Updates use the paper's default procedures: inserted points go to a side
list and deletions are recorded as marks; queries scan the side list and
merge/filter its contents with the base index's results.  The CDF of the
indexed data is snapshotted at build time; as updates arrive, ``sim(D', D)``
is recomputed so the learned *rebuild predictor* — an FFN over cardinality,
distribution, index depth, update ratio and CDF change — can decide when to
trigger a full rebuild (the ``to_rebuild`` API).  The predictor runs after
every ``f_u`` updates.

Ground truth for the predictor follows Section VII-B2: indices with and
without rebuilds are compared after batches of updates, and the label is 1
when the no-rebuild query time exceeds the with-rebuild time by 10 %.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import ELSIConfig
from repro.indices.base import LearnedSpatialIndex
from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig, train_regressor
from repro.obs.trace import span as _span
from repro.spatial.cdf import ks_distance, uniform_dissimilarity
from repro.spatial.rect import Rect

__all__ = ["RebuildPredictor", "UpdateProcessor", "train_rebuild_predictor"]


class RebuildPredictor:
    """FFN ``C_RB`` mapping update-state features to a rebuild/keep decision.

    Features (Section IV-B2): log10 cardinality (scaled), ``dist(D_U, D)``,
    index depth, update ratio ``|D'|/|D| - 1``, and the CDF change
    ``sim(D', D)``.  Output is regressed to {0, 1}; :meth:`should_rebuild`
    thresholds at 0.5.
    """

    N_FEATURES = 5

    def __init__(self, hidden: int = 32, seed: int = 0) -> None:
        self.net = FFN([self.N_FEATURES, hidden, 1], seed=seed)
        self._fitted = False

    @staticmethod
    def features(
        n: int, dist_u: float, depth: int, update_ratio: float, cdf_sim: float
    ) -> np.ndarray:
        if n < 1:
            raise ValueError(f"cardinality must be >= 1, got {n}")
        return np.array(
            [np.log10(n) / 8.0, dist_u, depth / 16.0, update_ratio, cdf_sim]
        )

    def fit(self, x: np.ndarray, labels: np.ndarray, epochs: int = 1500, seed: int = 0) -> None:
        """Train on feature rows and binary labels."""
        x2 = np.asarray(x, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if x2.ndim != 2 or x2.shape[1] != self.N_FEATURES:
            raise ValueError(f"expected (n, {self.N_FEATURES}) features, got {x2.shape}")
        train_regressor(self.net, x2, y, TrainConfig(epochs=epochs, seed=seed, patience=200))
        self._fitted = True

    def should_rebuild(
        self, n: int, dist_u: float, depth: int, update_ratio: float, cdf_sim: float
    ) -> bool:
        if not self._fitted:
            raise RuntimeError("rebuild predictor is not fitted; call fit() first")
        x = self.features(n, dist_u, depth, update_ratio, cdf_sim)
        return bool(self.net.predict(x[None, :])[0] >= 0.5)


class UpdateProcessor:
    """Default update procedures wrapping a built learned index.

    Parameters
    ----------
    index:
        A built :class:`~repro.indices.base.LearnedSpatialIndex`.
    config:
        Supplies ``f_u`` (updates between predictor invocations).
    predictor:
        Optional trained :class:`RebuildPredictor`; without one,
        ``to_rebuild`` falls back to a CDF-drift heuristic.
    auto_rebuild:
        When True, :meth:`insert`/:meth:`delete` trigger a rebuild as soon
        as the predictor says so (the "-R" indices of Figures 15–16).
    native:
        Route insertions through the index's *built-in* insertion procedure
        instead of the side list (the paper's Figure 15 setting: "LISA and
        RSMI use built-in insertion procedures, and ML uses extra data
        pages").  Built-in inserts degrade query performance structurally,
        which is what the rebuild predictor exists to repair.
    """

    def __init__(
        self,
        index: LearnedSpatialIndex,
        config: ELSIConfig | None = None,
        predictor: RebuildPredictor | None = None,
        auto_rebuild: bool = False,
        native: bool = False,
        index_factory=None,
    ) -> None:
        if index.bounds is None:
            raise ValueError("the wrapped index must be built first")
        self.index = index
        self.config = config or ELSIConfig()
        self.predictor = predictor
        self.auto_rebuild = auto_rebuild
        self.native = native
        # Rebuilds recreate the index through this factory; the default
        # clone keeps only the builder, so pass a factory when the index
        # was constructed with non-default parameters.
        self._index_factory = index_factory or (
            lambda: type(index)(builder=index.builder)
        )
        self._base_points = self._snapshot_points(index)
        self._base_keys = np.sort(
            np.asarray(index.map(self._base_points), dtype=np.float64)
        )
        self._inserted: list[np.ndarray] = []
        # Exact-match lookup structure over the side list, playing the role
        # of the paper's binary tree on updated-point IDs (Section IV-B2):
        # point queries hit this map instead of scanning the list.
        self._inserted_count: dict[tuple[float, ...], int] = {}
        self._deleted: set[tuple[float, ...]] = set()
        self._updates_since_check = 0
        self._updates_total = 0
        self.rebuilds = 0
        self.last_rebuild_seconds = 0.0

    @staticmethod
    def _snapshot_points(index: LearnedSpatialIndex) -> np.ndarray:
        """All points currently indexed (exact, from the index's storage)."""
        return index.indexed_points()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        """Side-list size (inserted entries currently buffered)."""
        return len(self._inserted)

    @property
    def n_effective(self) -> int:
        """Current logical cardinality |D'|."""
        base_n = self.index.n_points if self.native else len(self._base_points)
        return base_n - len(self._deleted) + len(self._inserted)

    def insert(self, point: np.ndarray) -> None:
        """Add a point — to the side list (default procedure) or through the
        index's built-in insertion when ``native`` is set."""
        p = np.asarray(point, dtype=np.float64)
        key = tuple(float(v) for v in p)
        # Re-inserting a deleted base point just clears the mark.
        if key in self._deleted:
            self._deleted.remove(key)
        elif self.native:
            self.index.insert(p)
        else:
            self._inserted.append(p)
            self._inserted_count[key] = self._inserted_count.get(key, 0) + 1
        self._note_update()

    def delete(self, point: np.ndarray) -> bool:
        """Mark a point deleted; returns whether it was indexed."""
        p = np.asarray(point, dtype=np.float64)
        key = tuple(float(v) for v in p)
        if self._inserted_count.get(key, 0) > 0:
            for i, q in enumerate(self._inserted):
                if np.array_equal(q, p):
                    self._inserted.pop(i)
                    break
            self._inserted_count[key] -= 1
            if self._inserted_count[key] == 0:
                del self._inserted_count[key]
            self._note_update()
            return True
        if key in self._deleted:
            return False
        if self.index.point_query(p):
            self._deleted.add(key)
            self._note_update()
            return True
        return False

    def _note_update(self) -> None:
        self._updates_since_check += 1
        self._updates_total += 1
        if self._updates_since_check >= self.config.f_u:
            self._updates_since_check = 0
            if self.auto_rebuild and self.to_rebuild():
                self.rebuild()

    # ------------------------------------------------------------------
    # Queries (merge the side list with the base index)
    # ------------------------------------------------------------------
    def _inserted_array(self) -> np.ndarray:
        if not self._inserted:
            d = self.index.bounds.ndim if self.index.bounds else 2
            return np.empty((0, d))
        return np.vstack(self._inserted)

    def _filter_deleted(self, points: np.ndarray) -> np.ndarray:
        if not self._deleted or len(points) == 0:
            return points
        keep = np.array(
            [tuple(float(v) for v in p) not in self._deleted for p in points]
        )
        return points[keep]

    def point_query(self, point: np.ndarray) -> bool:
        p = np.asarray(point, dtype=np.float64)
        key = tuple(float(v) for v in p)
        if key in self._deleted:
            return False
        if self._inserted_count.get(key, 0) > 0:
            return True
        return self.index.point_query(p)

    def point_queries(self, points: np.ndarray) -> np.ndarray:
        """Batch membership merging the side structures with the base
        index's vectorised path (one model forward pass + fused gathers).

        The side-list map and deletion marks decide their points directly;
        only the undecided remainder reaches the base index, as one batch.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        out = np.zeros(len(pts), dtype=bool)
        if len(pts) == 0:
            return out
        if not self._deleted and not self._inserted_count:
            return self.index.point_queries(pts)
        undecided: list[int] = []
        for i, p in enumerate(pts):
            key = tuple(float(v) for v in p)
            if key in self._deleted:
                continue  # stays False
            if self._inserted_count.get(key, 0) > 0:
                out[i] = True
            else:
                undecided.append(i)
        if undecided:
            rows = np.array(undecided, dtype=np.int64)
            out[rows] = self.index.point_queries(pts[rows])
        return out

    def window_query(self, window: Rect) -> np.ndarray:
        base = self._filter_deleted(self.index.window_query(window))
        extra = self._inserted_array()
        if len(extra):
            extra = extra[window.contains_points(extra)]
        if len(extra) == 0:
            return base
        if len(base) == 0:
            return extra
        return np.vstack([base, extra])

    def window_queries(self, windows: list) -> list[np.ndarray]:
        """Batch window queries: the base index answers all windows at once
        (the vectorised corner-prediction path where available), then each
        window's result is deletion-filtered and merged with the side list."""
        if not windows:
            return []
        base_results = self.index.window_queries(windows)
        extra = self._inserted_array()
        out: list[np.ndarray] = []
        for window, base in zip(windows, base_results):
            base = self._filter_deleted(base)
            matched = extra[window.contains_points(extra)] if len(extra) else extra
            if len(matched) == 0:
                out.append(base)
            elif len(base) == 0:
                out.append(matched)
            else:
                out.append(np.vstack([base, matched]))
        return out

    def _merge_knn(
        self, q: np.ndarray, base: np.ndarray, extra: np.ndarray, k: int
    ) -> np.ndarray:
        """Rank the base index's (deletion-filtered) answer against the side
        list and keep the k nearest."""
        base = self._filter_deleted(base)
        candidates = [c for c in (base, extra) if len(c)]
        if not candidates:
            d = self.index.bounds.ndim if self.index.bounds else 2
            return np.empty((0, d))
        merged = np.vstack(candidates)
        diff = merged - q
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        order = np.argsort(dist, kind="stable")
        return merged[order[: min(k, len(order))]]

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        q = np.asarray(point, dtype=np.float64)
        # Ask the base for enough extra neighbours to absorb deletions.
        base = self.index.knn_query(q, k + len(self._deleted))
        return self._merge_knn(q, base, self._inserted_array(), k)

    def knn_queries(self, points: np.ndarray, k: int) -> list[np.ndarray]:
        """Batch kNN: the base index answers the whole batch at once (the
        vectorised expanding-window path where available), then each
        query's answer is merged with the side list."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return []
        base_results = self.index.knn_queries(pts, k + len(self._deleted))
        extra = self._inserted_array()
        return [
            self._merge_knn(q, base, extra, k)
            for q, base in zip(pts, base_results)
        ]

    # ------------------------------------------------------------------
    # Rebuild (the to_rebuild / build APIs of Figure 3)
    # ------------------------------------------------------------------
    def current_points(self) -> np.ndarray:
        """The logical data set D' (base minus deletions plus insertions)."""
        base = self._filter_deleted(
            self.index.indexed_points() if self.native else self._base_points
        )
        extra = self._inserted_array()
        if len(extra) == 0:
            return base
        if len(base) == 0:
            return extra
        return np.vstack([base, extra])

    def update_features(self) -> np.ndarray:
        """The rebuild predictor's feature vector for the current state."""
        current = self.current_points()
        keys = np.sort(np.asarray(self.index.map(current), dtype=np.float64))
        dist_u = uniform_dissimilarity(keys, assume_sorted=True)
        cdf_sim = 1.0 - ks_distance(keys, self._base_keys, assume_sorted=True)
        depth = self.index.depth() if hasattr(self.index, "depth") else 1
        n0 = len(self._base_points)
        update_ratio = self._updates_total / max(n0, 1)
        # (n0 is the size at the last (re)build; the ratio resets on rebuild.)
        return RebuildPredictor.features(
            n=max(len(current), 1),
            dist_u=dist_u,
            depth=depth,
            update_ratio=update_ratio,
            cdf_sim=cdf_sim,
        )

    def to_rebuild(self) -> bool:
        """Whether the system recommends a full rebuild now."""
        if self.predictor is not None:
            x = self.update_features()
            return bool(self.predictor.net.predict(x[None, :])[0] >= 0.5)
        # Untrained fallback: rebuild once the CDF drifted or the side list
        # outgrew a tenth of the base data (a simple, Oracle-style rule).
        current = self.current_points()
        keys = np.sort(np.asarray(self.index.map(current), dtype=np.float64))
        drift = ks_distance(keys, self._base_keys, assume_sorted=True)
        return drift > 0.05 or len(self._inserted) > 0.1 * len(self._base_points)

    def rebuild(self) -> float:
        """Full index rebuild on D' through the build API; returns seconds."""
        points = self.current_points()
        started = time.perf_counter()
        with _span(
            "update.rebuild", n=len(points), pending=len(self._inserted)
        ):
            fresh = self._index_factory()
            fresh.build(points)
        elapsed = time.perf_counter() - started
        self.index = fresh
        self._base_points = points
        self._base_keys = np.sort(np.asarray(fresh.map(points), dtype=np.float64))
        self._inserted = []
        self._inserted_count = {}
        self._deleted = set()
        self._updates_total = 0
        self._updates_since_check = 0
        self.rebuilds += 1
        self.last_rebuild_seconds = elapsed
        return elapsed


def train_rebuild_predictor(
    index_factory,
    config: ELSIConfig | None = None,
    cardinalities: tuple[int, ...] = (2_000, 5_000),
    deltas: tuple[float, ...] = (0.0, 0.4, 0.8),
    insert_fractions: tuple[float, ...] = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32),
    n_queries: int = 150,
    threshold: float = 1.1,
    seed: int = 0,
) -> RebuildPredictor:
    """Generate ground truth and fit the rebuild predictor (Section VII-B2).

    For each (cardinality, distribution) a base index is built; skewed
    batches are inserted at geometrically growing fractions of n, and point
    query times are measured on the aged index versus a freshly rebuilt one.
    The label is 1 (rebuild) when the aged index is ``threshold`` times
    slower.
    """
    from repro.data.controlled import dataset_with_uniform_distance
    from repro.data.generators import skewed

    cfg = config or ELSIConfig()
    features: list[np.ndarray] = []
    labels: list[int] = []
    rng = np.random.default_rng(seed)
    for n in cardinalities:
        for i, delta in enumerate(deltas):
            points = dataset_with_uniform_distance(n, delta, seed=seed + i)
            index = index_factory()
            index.build(points)
            processor = UpdateProcessor(index, cfg)
            inserts = skewed(int(max(insert_fractions) * n) + 1, seed=seed + 100 + i)
            cursor = 0
            for fraction in insert_fractions:
                target = int(fraction * n)
                while cursor < target:
                    processor.insert(inserts[cursor])
                    cursor += 1
                query_ids = rng.integers(0, n, size=min(n_queries, n))
                started = time.perf_counter()
                for qi in query_ids:
                    processor.point_query(points[qi])
                aged = time.perf_counter() - started

                rebuilt = index_factory()
                rebuilt.build(processor.current_points())
                started = time.perf_counter()
                for qi in query_ids:
                    rebuilt.point_query(points[qi])
                fresh = time.perf_counter() - started

                features.append(processor.update_features())
                labels.append(int(aged > threshold * fresh))
    predictor = RebuildPredictor(seed=seed)
    predictor.fit(np.stack(features), np.array(labels), seed=seed)
    return predictor
