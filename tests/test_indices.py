"""Integration-grade unit tests shared by all four learned spatial indices.

Checks the map-and-sort / predict-and-scan contract per index: point-query
correctness for indexed points, exactness of ZM/ML window queries, recall
quality of RSMI/LISA, kNN behaviour, and build statistics.
"""

import numpy as np
import pytest

from repro.indices import LISAIndex, MLIndex, RSMIIndex, ZMIndex
from repro.queries.evaluate import brute_force_knn, brute_force_window, window_recall
from repro.spatial.rect import Rect

INDEX_CASES = [
    pytest.param(ZMIndex, {}, id="ZM"),
    pytest.param(MLIndex, {"n_references": 8}, id="ML"),
    pytest.param(RSMIIndex, {"leaf_capacity": 600}, id="RSMI"),
    pytest.param(LISAIndex, {"grid_size": 8}, id="LISA"),
]


@pytest.fixture(scope="module")
def built_indices(request):
    """Build each index once per module on shared data."""
    from repro.data import load_dataset
    from repro.indices.base import OriginalBuilder
    from repro.ml.trainer import TrainConfig

    pts = load_dataset("OSM1", 2_000)
    builder = lambda: OriginalBuilder(train_config=TrainConfig(epochs=100))  # noqa: E731
    built = {}
    for param in INDEX_CASES:
        cls, kwargs = param.values
        built[param.id] = cls(builder=builder(), **kwargs).build(pts)
    return built, pts


@pytest.mark.parametrize("cls,kwargs", [p.values for p in INDEX_CASES], ids=[p.id for p in INDEX_CASES])
class TestContract:
    def _get(self, built_indices, cls):
        built, pts = built_indices
        name_by_class = {ZMIndex: "ZM", MLIndex: "ML", RSMIIndex: "RSMI", LISAIndex: "LISA"}
        return built[name_by_class[cls]], pts

    def test_point_query_finds_every_indexed_point(self, built_indices, cls, kwargs):
        index, pts = self._get(built_indices, cls)
        assert all(index.point_query(p) for p in pts[:400])

    def test_point_query_rejects_absent_points(self, built_indices, cls, kwargs):
        index, pts = self._get(built_indices, cls)
        rng = np.random.default_rng(0)
        misses = rng.random((50, 2)) * 2.0 + 1.5  # outside the data region
        assert not any(index.point_query(p) for p in misses)

    def test_window_query_high_recall(self, built_indices, cls, kwargs):
        index, pts = self._get(built_indices, cls)
        rng = np.random.default_rng(1)
        recalls = []
        for _ in range(25):
            center = pts[rng.integers(len(pts))]
            window = Rect.centered(center, 0.06)
            returned = index.window_query(window)
            truth = brute_force_window(pts, window)
            recalls.append(window_recall(returned, truth))
            # No false positives ever: every returned point is in the window.
            if len(returned):
                assert window.contains_points(returned).all()
        assert np.mean(recalls) > 0.95

    def test_window_query_empty_region(self, built_indices, cls, kwargs):
        index, _pts = self._get(built_indices, cls)
        window = Rect((0.0, 0.0), (1e-9, 1e-9))
        result = index.window_query(window)
        assert result.shape[1] == 2

    def test_knn_returns_k_points(self, built_indices, cls, kwargs):
        index, pts = self._get(built_indices, cls)
        result = index.knn_query(np.array([0.5, 0.5]), 10)
        assert result.shape == (10, 2)

    def test_knn_close_to_exact(self, built_indices, cls, kwargs):
        index, pts = self._get(built_indices, cls)
        q = pts[123]
        got = index.knn_query(q, 10)
        truth = brute_force_knn(pts, q, 10)
        kth_true = np.linalg.norm(truth[-1] - q)
        got_dists = np.linalg.norm(got - q, axis=1)
        # At least 8 of 10 within the true 10th-nearest distance.
        assert (got_dists <= kth_true + 1e-12).sum() >= 8

    def test_knn_k_larger_than_n(self, built_indices, cls, kwargs):
        index, pts = self._get(built_indices, cls)
        result = index.knn_query(np.array([0.5, 0.5]), len(pts) + 50)
        assert len(result) <= len(pts)

    def test_build_stats_recorded(self, built_indices, cls, kwargs):
        index, _pts = self._get(built_indices, cls)
        stats = index.build_stats
        assert stats.n_models >= 1
        assert stats.train_seconds > 0
        assert stats.train_set_size > 0

    def test_indexed_points_complete(self, built_indices, cls, kwargs):
        index, pts = self._get(built_indices, cls)
        stored = index.indexed_points()
        assert len(stored) == len(pts)
        assert set(map(tuple, stored)) == set(map(tuple, pts))

    def test_map_is_deterministic(self, built_indices, cls, kwargs):
        index, pts = self._get(built_indices, cls)
        np.testing.assert_array_equal(index.map(pts[:20]), index.map(pts[:20]))

    def test_query_stats_accumulate(self, built_indices, cls, kwargs):
        index, pts = self._get(built_indices, cls)
        index.query_stats.reset()
        index.point_query(pts[0])
        assert index.query_stats.queries == 1
        assert index.query_stats.model_invocations >= 1

    def test_unbuilt_queries_rejected(self, built_indices, cls, kwargs):
        fresh = cls(**kwargs)
        with pytest.raises(RuntimeError):
            fresh.point_query(np.array([0.5, 0.5]))

    def test_invalid_build_inputs(self, built_indices, cls, kwargs):
        fresh = cls(**kwargs)
        with pytest.raises(ValueError):
            fresh.build(np.empty((0, 2)))
        with pytest.raises(ValueError):
            fresh.build(np.zeros((5, 1)))


class TestExactWindowIndices:
    """ZM and ML answer window queries exactly (Section VII-G2)."""

    @pytest.mark.parametrize("cls", [ZMIndex, MLIndex])
    def test_window_recall_is_one(self, built_indices, cls):
        built, pts = built_indices
        index = built["ZM" if cls is ZMIndex else "ML"]
        rng = np.random.default_rng(3)
        for _ in range(30):
            center = pts[rng.integers(len(pts))]
            window = Rect.centered(center, 0.08)
            returned = index.window_query(window)
            truth = brute_force_window(pts, window)
            assert len(returned) == len(truth)


class TestDuplicatesAndDegenerate:
    @pytest.mark.parametrize("cls,kwargs", [p.values for p in INDEX_CASES], ids=[p.id for p in INDEX_CASES])
    def test_duplicate_points(self, cls, kwargs):
        pts = np.vstack([np.tile([[0.5, 0.5]], (30, 1)), np.random.default_rng(0).random((100, 2))])
        from repro.ml.trainer import TrainConfig
        from repro.indices.base import OriginalBuilder

        index = cls(builder=OriginalBuilder(TrainConfig(epochs=40)), **kwargs).build(pts)
        assert index.point_query(np.array([0.5, 0.5]))
        window = Rect.centered(np.array([0.5, 0.5]), 0.01)
        assert len(index.window_query(window)) >= 30

    @pytest.mark.parametrize("cls,kwargs", [p.values for p in INDEX_CASES], ids=[p.id for p in INDEX_CASES])
    def test_collinear_points(self, cls, kwargs):
        # All points on a vertical line: degenerate x extent.
        y = np.linspace(0, 1, 200)
        pts = np.column_stack([np.full(200, 0.3), y])
        from repro.ml.trainer import TrainConfig
        from repro.indices.base import OriginalBuilder

        index = cls(builder=OriginalBuilder(TrainConfig(epochs=40)), **kwargs).build(pts)
        assert index.point_query(pts[57])
