"""Unit tests for the CART decision trees."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class TestRegressor:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 200)
        y = (x > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        pred = tree.predict(np.array([0.2, 0.8]))
        np.testing.assert_allclose(pred, [0.0, 10.0], atol=1e-9)

    def test_single_leaf_predicts_mean(self):
        tree = DecisionTreeRegressor(max_depth=1, min_samples_split=100)
        tree.fit(np.arange(5.0), np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert tree.predict(np.array([99.0]))[0] == pytest.approx(3.0)

    def test_respects_max_depth(self):
        rng = np.random.default_rng(0)
        x = rng.random((500, 2))
        y = rng.random(500)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert tree.depth() <= 4

    def test_perfect_fit_on_distinct_points(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([5.0, -2.0, 7.0, 0.0])
        tree = DecisionTreeRegressor(max_depth=10).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y)

    def test_constant_targets_single_leaf(self):
        x = np.random.default_rng(0).random((50, 2))
        tree = DecisionTreeRegressor().fit(x, np.full(50, 7.0))
        assert tree.depth() == 0

    def test_multifeature_split_selection(self):
        # Target depends only on feature 1; the first split must use it.
        rng = np.random.default_rng(0)
        x = rng.random((300, 2))
        y = (x[:, 1] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y)
        assert tree._root is not None and tree._root.feature == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.empty((0, 2)), np.empty(0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 1)), np.zeros(4))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))


class TestClassifier:
    def test_separable_classes(self):
        x = np.vstack([np.full((50, 1), 0.0), np.full((50, 1), 1.0)])
        y = np.array(["a"] * 50 + ["b"] * 50)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.predict(np.array([[0.1]]))[0] == "a"
        assert tree.predict(np.array([[0.9]]))[0] == "b"

    def test_predict_proba_sums_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.random((100, 2))
        y = (x[:, 0] + 0.3 * rng.random(100) > 0.5).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        proba = tree.predict_proba(x[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_string_labels_preserved(self):
        x = np.array([[0.0], [1.0]])
        tree = DecisionTreeClassifier().fit(x, np.array(["SP", "MR"]))
        assert set(tree.classes_) == {"MR", "SP"}
        assert tree.predict(x)[0] in ("SP", "MR")

    def test_xor_needs_depth_two(self):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        shallow = DecisionTreeClassifier(max_depth=1).fit(x, y)
        deep = DecisionTreeClassifier(max_depth=3).fit(x, y)
        assert (shallow.predict(x) == y).mean() <= 0.75
        assert (deep.predict(x) == y).mean() == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)
