"""Deep Q-network used by ELSI's RL index-building method (Section V-B2).

The RL method formulates training-set search as an MDP whose state is a
binary occupancy vector over an ``eta**d`` grid and whose actions toggle one
cell.  This module provides the generic DQN machinery: a replay buffer and
an agent with an epsilon-greedy policy, a target network, and periodic
training on recent transitions (the paper trains "after every five steps"
on the last ``alpha`` records in memory).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.adam import Adam
from repro.ml.ffn import FFN

__all__ = ["DQNAgent", "DQNConfig", "ReplayBuffer", "Transition"]


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s') record."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray


class ReplayBuffer:
    """A bounded FIFO of transitions with recency-biased sampling.

    The paper trains the DQN on "recent state transition and reward records
    in memory"; :meth:`sample_recent` returns the most recent ``k`` records,
    while :meth:`sample` draws uniformly for conventional experience replay.
    """

    def __init__(self, capacity: int = 10_000, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: list[Transition] = []
        self._cursor = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._items)

    def push(self, transition: Transition) -> None:
        """Append a transition, evicting the oldest when full."""
        if len(self._items) < self.capacity:
            self._items.append(transition)
        else:
            self._items[self._cursor] = transition
            self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, k: int) -> list[Transition]:
        """Uniform sample of min(k, len) transitions without replacement."""
        k = min(k, len(self._items))
        if k == 0:
            return []
        idx = self._rng.choice(len(self._items), size=k, replace=False)
        return [self._items[i] for i in idx]

    def sample_recent(self, k: int) -> list[Transition]:
        """The most recent min(k, len) transitions, oldest first."""
        k = min(k, len(self._items))
        if k == 0:
            return []
        if len(self._items) < self.capacity:
            return self._items[-k:]
        ordered = self._items[self._cursor :] + self._items[: self._cursor]
        return ordered[-k:]


@dataclass(frozen=True)
class DQNConfig:
    """Hyperparameters for :class:`DQNAgent`.

    ``gamma=0.9`` matches the paper's discount factor; ``train_every=5``
    matches its train-every-five-steps schedule.  ``epsilon`` is the
    exploration rate of the epsilon-greedy policy and decays geometrically.
    """

    gamma: float = 0.9
    epsilon: float = 0.5
    epsilon_decay: float = 0.99
    epsilon_min: float = 0.05
    train_every: int = 5
    batch_size: int = 64
    target_sync_every: int = 25
    hidden_size: int = 32
    lr: float = 0.01
    replay_capacity: int = 10_000


class DQNAgent:
    """Epsilon-greedy DQN over a discrete action space.

    Parameters
    ----------
    state_size:
        Dimensionality of the (binary) state vector.
    n_actions:
        Number of discrete actions (one Q-value head per action).
    """

    def __init__(
        self,
        state_size: int,
        n_actions: int,
        config: DQNConfig | None = None,
        seed: int = 0,
    ) -> None:
        if state_size <= 0 or n_actions <= 0:
            raise ValueError("state_size and n_actions must be positive")
        self.config = config or DQNConfig()
        self.n_actions = n_actions
        self.q_network = FFN(
            [state_size, self.config.hidden_size, n_actions], seed=seed
        )
        self.target_network = self.q_network.copy()
        self.replay = ReplayBuffer(self.config.replay_capacity, seed=seed)
        self._optimizer = Adam(self.q_network.parameters(), lr=self.config.lr)
        self._rng = np.random.default_rng(seed)
        self._epsilon = self.config.epsilon
        self._steps = 0

    @property
    def epsilon(self) -> float:
        """Current exploration rate."""
        return self._epsilon

    def select_action(self, state: np.ndarray) -> int:
        """Epsilon-greedy action for ``state``."""
        if self._rng.random() < self._epsilon:
            return int(self._rng.integers(self.n_actions))
        q = self.q_network.forward(state[None, :])[0]
        return int(np.argmax(q))

    def observe(self, transition: Transition) -> float | None:
        """Record a transition; train on schedule.  Returns the loss if trained."""
        self.replay.push(transition)
        self._steps += 1
        self._epsilon = max(
            self.config.epsilon_min, self._epsilon * self.config.epsilon_decay
        )
        loss = None
        if self._steps % self.config.train_every == 0:
            loss = self._train_batch()
        if self._steps % self.config.target_sync_every == 0:
            self.target_network = self.q_network.copy()
        return loss

    def _train_batch(self) -> float | None:
        """One TD(0) regression step on recent transitions."""
        batch = self.replay.sample_recent(self.config.batch_size)
        if not batch:
            return None
        states = np.stack([t.state for t in batch])
        next_states = np.stack([t.next_state for t in batch])
        actions = np.array([t.action for t in batch])
        rewards = np.array([t.reward for t in batch])

        next_q = self.target_network.forward(next_states)
        targets = self.q_network.forward(states).copy()
        td_target = rewards + self.config.gamma * next_q.max(axis=1)
        targets[np.arange(len(batch)), actions] = td_target

        loss, grads = self.q_network.loss_and_gradients(states, targets)
        self._optimizer.step(grads)
        return loss
