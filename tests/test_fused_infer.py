"""Tests for fused batch inference and the opt-in float32 mode."""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import FloodIndex, LISAIndex, MLIndex, RSMIIndex, ZMIndex
from repro.ml.ffn import FFN
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.perf.fused_infer import (
    FusedInferenceEngine,
    fusion_rejection_reason,
    resolve_dtype,
)
from repro.spatial.rect import Rect


def _builder(dtype="float64"):
    config = ELSIConfig(train_epochs=80, dtype=dtype)
    return ELSIModelBuilder(config, method="SP")


def _probe_points(points, rng, n_hits=200, n_misses=40):
    hits = points[rng.integers(0, len(points), n_hits)]
    misses = rng.random((n_misses, points.shape[1])) + 1.5
    return np.vstack([hits, misses])


# ----------------------------------------------------------------------
# Rejection reasons
# ----------------------------------------------------------------------
class TestRejectionReasons:
    def test_single_model(self):
        assert fusion_rejection_reason([FFN([1, 4, 1])]) == "single_model"

    def test_minibatch_config(self):
        class Cfg:
            batch_size = 32

        nets = [FFN([1, 4, 1]), FFN([1, 4, 1])]
        assert fusion_rejection_reason(nets, Cfg()) == "minibatch_config"

    def test_non_ffn(self):
        assert fusion_rejection_reason([FFN([1, 4, 1]), object()]) == "non_ffn"

    def test_mixed_shapes(self):
        nets = [FFN([1, 4, 1]), FFN([1, 8, 1])]
        assert fusion_rejection_reason(nets) == "mixed_shapes"

    def test_mixed_dtype(self):
        nets = [FFN([1, 4, 1]), FFN([1, 4, 1]).astype(np.float32)]
        assert fusion_rejection_reason(nets) == "mixed_dtype"

    def test_fusable(self):
        nets = [FFN([1, 4, 1], seed=i) for i in range(3)]
        assert fusion_rejection_reason(nets) is None

    def test_rejection_lands_in_counter(self, osm_points):
        """The why-not-fused satellite: rejections must be observable."""
        tracer = get_tracer()
        tracer.enable()
        try:
            before = get_registry().counter(
                "perf.fusion_rejected", reason="single_model", context="rmi"
            ).snapshot()
            # LISA uses a branching-1 RMI -> single_model rejection.
            LISAIndex(builder=_builder()).build(osm_points)
            after = get_registry().counter(
                "perf.fusion_rejected", reason="single_model", context="rmi"
            ).snapshot()
        finally:
            tracer.disable()
            tracer.reset()
        assert after == before + 1

    def test_try_build_returns_none_on_rejection(self):
        assert FusedInferenceEngine.try_build([]) is None


# ----------------------------------------------------------------------
# Engine correctness
# ----------------------------------------------------------------------
class TestEngineParity:
    def test_rmi_fuses_and_ranges_contain_per_model(self, osm_points):
        index = ZMIndex(builder=_builder(), branching=4).build(osm_points)
        model = index.model
        assert model.fused
        engine = model._engine
        # Both paths must answer the actual queries identically: the fused
        # bounds are re-measured, so predict-and-scan stays exact.
        rng = np.random.default_rng(0)
        probes = _probe_points(osm_points, rng)
        fused_res = index.point_queries(probes)
        model._engine = None
        try:
            plain_res = index.point_queries(probes)
        finally:
            model._engine = engine
        np.testing.assert_array_equal(fused_res, plain_res)

    @pytest.mark.parametrize("cls", (ZMIndex, MLIndex), ids=lambda c: c.name)
    def test_fused_batch_queries_match_scalar(self, cls, osm_points):
        index = cls(builder=_builder(), branching=4).build(osm_points)
        assert index.model.fused
        rng = np.random.default_rng(1)
        probes = _probe_points(osm_points, rng)
        scalar = np.array([index.point_query(p) for p in probes], dtype=bool)
        np.testing.assert_array_equal(index.point_queries(probes), scalar)
        windows = [Rect.centered(rng.random(2), 0.12) for _ in range(8)]
        for batch, one in zip(
            index.window_queries(windows),
            [index.window_query(w) for w in windows],
        ):
            np.testing.assert_array_equal(batch, one)

    def test_flood_fuses_columns(self, osm_points):
        index = FloodIndex(builder=_builder(), n_columns=6).build(osm_points)
        assert index._engine is not None
        assert index._engine.k == sum(m is not None for m in index._models)
        rng = np.random.default_rng(2)
        probes = _probe_points(osm_points, rng)
        scalar = np.array([index.point_query(p) for p in probes], dtype=bool)
        np.testing.assert_array_equal(index.point_queries(probes), scalar)
        windows = [Rect.centered(rng.random(2), 0.15) for _ in range(8)]
        for batch, one in zip(
            index.window_queries(windows),
            [index.window_query(w) for w in windows],
        ):
            np.testing.assert_array_equal(batch, one)

    def test_flood_batch_knn_matches_scalar(self, osm_points):
        index = FloodIndex(builder=_builder(), n_columns=6).build(osm_points)
        rng = np.random.default_rng(3)
        queries = rng.random((10, 2))
        for batch, one in zip(
            index.knn_queries(queries, 5),
            [index.knn_query(q, 5) for q in queries],
        ):
            np.testing.assert_array_equal(batch, one)

    def test_rsmi_batch_windows_match_scalar(self, osm_points):
        index = RSMIIndex(builder=_builder(), leaf_capacity=300).build(osm_points)
        rng = np.random.default_rng(4)
        windows = [Rect.centered(rng.random(2), 0.12) for _ in range(10)]
        for batch, one in zip(
            index.window_queries(windows),
            [index.window_query(w) for w in windows],
        ):
            np.testing.assert_array_equal(batch, one)

    def test_rsmi_batch_knn_matches_scalar(self, osm_points):
        index = RSMIIndex(builder=_builder(), leaf_capacity=300).build(osm_points)
        rng = np.random.default_rng(5)
        queries = rng.random((8, 2))
        for batch, one in zip(
            index.knn_queries(queries, 4),
            [index.knn_query(q, 4) for q in queries],
        ):
            np.testing.assert_array_equal(batch, one)

    def test_engine_predictions_match_member_semantics(self, osm_points):
        """Each member's fused range covers the key's true local rank."""
        index = ZMIndex(builder=_builder(), branching=4).build(osm_points)
        model = index.model
        engine = model._engine
        assert engine is not None
        for midx in range(engine.k):
            member = engine.models[midx]
            positions = None
            for branch, b_midx in enumerate(model._branch_to_midx):
                if b_midx == midx:
                    positions = model._stage2_positions[branch]
                    break
            assert positions is not None
            member_keys = index.store.keys[positions]
            lo, hi = engine.search_ranges(
                np.full(len(member_keys), midx), member_keys
            )
            ranks = np.arange(len(member_keys))
            assert np.all(lo <= ranks)
            assert np.all(ranks < hi)
            assert member is not None


# ----------------------------------------------------------------------
# float32 mode
# ----------------------------------------------------------------------
class TestFloat32:
    def test_resolve_dtype_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        assert resolve_dtype("float64") == "float32"
        monkeypatch.delenv("REPRO_DTYPE")
        assert resolve_dtype("float64") == "float64"
        with pytest.raises(ValueError, match="dtype"):
            resolve_dtype("float16")

    def test_config_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            ELSIConfig(dtype="float16")

    @pytest.mark.parametrize("cls", (ZMIndex, MLIndex), ids=lambda c: c.name)
    def test_query_parity_with_float64(self, cls, osm_points):
        """Same answers on hits and misses; the precision drop is absorbed
        by the re-measured error bounds, never by the results."""
        f64 = cls(builder=_builder("float64"), branching=4).build(osm_points)
        f32 = cls(builder=_builder("float32"), branching=4).build(osm_points)
        assert f32.model._engine is not None
        assert f32.model._engine.dtype_name == "float32"
        rng = np.random.default_rng(6)
        probes = _probe_points(osm_points, rng)
        np.testing.assert_array_equal(
            f32.point_queries(probes), f64.point_queries(probes)
        )
        windows = [Rect.centered(rng.random(2), 0.1) for _ in range(6)]
        for a, b in zip(f32.window_queries(windows), f64.window_queries(windows)):
            np.testing.assert_array_equal(a, b)
        queries = rng.random((6, 2))
        for a, b in zip(f32.knn_queries(queries, 5), f64.knn_queries(queries, 5)):
            np.testing.assert_array_equal(a, b)

    def test_flood_query_parity_with_float64(self, osm_points):
        f64 = FloodIndex(builder=_builder("float64"), n_columns=6).build(osm_points)
        f32 = FloodIndex(builder=_builder("float32"), n_columns=6).build(osm_points)
        assert f32._engine is not None and f32._engine.dtype_name == "float32"
        rng = np.random.default_rng(7)
        probes = _probe_points(osm_points, rng)
        np.testing.assert_array_equal(
            f32.point_queries(probes), f64.point_queries(probes)
        )

    def test_memory_halved(self, osm_points):
        f64 = ZMIndex(builder=_builder("float64"), branching=4).build(osm_points)
        f32 = ZMIndex(builder=_builder("float32"), branching=4).build(osm_points)
        assert f32.model._engine.nbytes * 2 == f64.model._engine.nbytes
        for net in (m.net for m in f32.model.models if isinstance(m.net, FFN)):
            assert all(w.dtype == np.float32 for w in net.weights)
            assert all(b.dtype == np.float32 for b in net.biases)

    def test_float32_round_trips_through_persistence(self, osm_points, tmp_path):
        from repro.storage.persist import load_index, save_index

        f32 = ZMIndex(builder=_builder("float32"), branching=4).build(osm_points)
        path = tmp_path / "zm32.npz"
        save_index(f32, path)
        loaded = load_index(path)
        assert loaded.model.stage1.net.weights[0].dtype == np.float32
        rng = np.random.default_rng(8)
        probes = _probe_points(osm_points, rng)
        np.testing.assert_array_equal(
            loaded.point_queries(probes), f32.point_queries(probes)
        )
