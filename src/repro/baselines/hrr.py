"""HRR: a Hilbert-curve bulk-loaded packed R-tree (Qi et al., PVLDB 2018).

Points are sorted in Hilbert order and packed into full leaves; parent
levels are packed over child MBRs in the same order.  Hilbert ordering
keeps consecutive points spatially adjacent, so packed leaves have small,
barely-overlapping MBRs — the property behind HRR's state-of-the-art window
query performance that the paper cites.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.base import TraditionalIndex
from repro.baselines.rtree_common import (
    RTreeNode,
    rtree_knn,
    rtree_point_query,
    rtree_window_query,
)
from repro.spatial.hilbert import hilbert_values
from repro.spatial.rect import Rect

__all__ = ["HRRIndex"]


class HRRIndex(TraditionalIndex):
    """The HRR competitor index."""

    name = "HRR"

    def __init__(self, block_size: int = 100, fanout: int = 16, bits: int = 16) -> None:
        super().__init__(block_size)
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.fanout = fanout
        self.bits = bits
        self.root: RTreeNode | None = None

    def build(self, points: np.ndarray) -> "HRRIndex":
        pts = self._prepare_points(points)
        started = time.perf_counter()
        self.bounds = Rect.bounding(pts)
        self.n_points = len(pts)

        order = np.argsort(hilbert_values(pts, self.bounds, self.bits), kind="stable")
        sorted_pts = pts[order]

        # Pack leaves of `block_size` points in Hilbert order.
        level: list[RTreeNode] = []
        for start in range(0, len(sorted_pts), self.block_size):
            chunk = sorted_pts[start : start + self.block_size]
            level.append(RTreeNode(mbr=Rect.bounding(chunk), points=chunk, level=0))

        # Pack parents until a single root remains.
        height = 0
        while len(level) > 1:
            height += 1
            parents: list[RTreeNode] = []
            for start in range(0, len(level), self.fanout):
                children = level[start : start + self.fanout]
                mbr = children[0].mbr
                for child in children[1:]:
                    mbr = mbr.union(child.mbr)
                parents.append(RTreeNode(mbr=mbr, children=children, level=height))
            level = parents
        self.root = level[0]
        self.build_seconds = time.perf_counter() - started
        return self

    def point_query(self, point: np.ndarray) -> bool:
        self._check_built()
        assert self.root is not None
        return rtree_point_query(self.root, point)

    def window_query(self, window: Rect) -> np.ndarray:
        self._check_built()
        assert self.root is not None
        return rtree_window_query(self.root, window)

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        self._check_built()
        assert self.root is not None
        return rtree_knn(self.root, point, k)
