"""Fused training of many same-architecture FFNs in one vectorised loop.

A multi-model index (an RMI with branching ``k``, Flood with ``k`` columns)
trains ``k`` small FFNs, each through its own Python epoch loop — at the
repo's model sizes that cost is interpreter overhead, not arithmetic.  The
fused trainer stacks the ``k`` networks' parameters into ``(k, fan_in,
fan_out)`` tensors, pads the per-model training sets to a common length
with zero-weight masks, and runs **one** epoch loop of batched matmuls for
all models at once.  This is the executor's ``fused`` backend: the only
one that speeds up builds on a single core (thread/process backends need
spare cores; batching needs only wider BLAS calls and fewer interpreter
iterations).

Semantics match :func:`repro.ml.trainer.train_regressor` per model — same
Adam hyperparameters, same per-model early stopping (a converged model's
parameters freeze while the rest keep training) — up to floating-point
reassociation from padded reductions; the resulting models go through the
usual full-partition error-bound measurement, so predict-and-scan
correctness is preserved exactly regardless of the training backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig

__all__ = ["FusedTrainResult", "can_fuse", "train_regressors_fused"]


@dataclass(frozen=True)
class FusedTrainResult:
    """Outcome of one fused multi-model training run."""

    final_losses: tuple[float, ...]
    epochs_run: tuple[int, ...]
    elapsed_seconds: float


def can_fuse(nets: list[FFN], config: TrainConfig) -> bool:
    """Whether this job set fits the fused path.

    Requires at least two networks sharing one architecture (and dtype)
    and full-batch training (the per-model minibatch shuffles of
    ``batch_size`` draw from one RNG stream, which fusion cannot
    reproduce).  A rejection is never silent: the reason lands in the
    ``perf.fusion_rejected`` counter via
    :func:`repro.perf.fused_infer.record_fusion_rejected`.
    """
    from repro.perf.fused_infer import (
        fusion_rejection_reason,
        record_fusion_rejected,
    )

    reason = fusion_rejection_reason(nets, config)
    if reason is not None:
        record_fusion_rejected(reason, context="train")
        return False
    return True


def train_regressors_fused(
    nets: list[FFN],
    xs: list[np.ndarray],
    ys: list[np.ndarray],
    config: TrainConfig | None = None,
) -> FusedTrainResult:
    """Train ``nets[k]`` to regress ``ys[k]`` on ``xs[k]``, all at once.

    Mutates every network in place, exactly like
    :func:`~repro.ml.trainer.train_regressor` does for one.
    """
    cfg = config or TrainConfig()
    if not (len(nets) == len(xs) == len(ys)):
        raise ValueError(
            f"got {len(nets)} nets, {len(xs)} x sets, {len(ys)} y sets"
        )
    if not nets:
        raise ValueError("need at least one network")
    if not can_fuse(nets, cfg) and len(nets) > 1:
        raise ValueError("job set is not fusable (see can_fuse)")

    k = len(nets)
    sizes = nets[0].layer_sizes
    n_layers = nets[0].n_layers
    lengths = []
    x2s, y2s = [], []
    for x, y in zip(xs, ys):
        x2 = np.asarray(x, dtype=np.float64)
        y2 = np.asarray(y, dtype=np.float64)
        if x2.ndim == 1:
            x2 = x2[:, None]
        if y2.ndim == 1:
            y2 = y2[:, None]
        if x2.shape[0] == 0:
            raise ValueError("cannot train on an empty data set")
        if y2.shape[0] != x2.shape[0]:
            raise ValueError(f"x has {x2.shape[0]} rows but y has {y2.shape[0]}")
        x2s.append(x2)
        y2s.append(y2)
        lengths.append(x2.shape[0])

    n_max = max(lengths)
    n_per = np.asarray(lengths, dtype=np.float64)
    x_pad = np.zeros((k, n_max, sizes[0]))
    y_pad = np.zeros((k, n_max, sizes[-1]))
    row_mask = np.zeros((k, n_max, 1))
    for i, (x2, y2) in enumerate(zip(x2s, y2s)):
        x_pad[i, : lengths[i]] = x2
        y_pad[i, : lengths[i]] = y2
        row_mask[i, : lengths[i]] = 1.0

    # Stacked parameters: weights[l] is (k, fan_in, fan_out), biases[l] (k, fan_out).
    weights = [
        np.stack([net.weights[l] for net in nets]) for l in range(n_layers)
    ]
    biases = [np.stack([net.biases[l] for net in nets]) for l in range(n_layers)]

    # Vectorised Adam state over the stacked parameters, with one step
    # counter per model so frozen (early-stopped) models keep the same
    # bias-correction schedule they would have had serially.
    moments1 = [np.zeros_like(w) for w in weights] + [np.zeros_like(b) for b in biases]
    moments2 = [np.zeros_like(m) for m in moments1]
    steps = np.zeros(k)
    beta1, beta2, eps, lr = 0.9, 0.999, 1e-8, cfg.lr

    active = np.ones(k, dtype=bool)
    best_loss = np.full(k, np.inf)
    stale = np.zeros(k, dtype=np.int64)
    epochs_run = np.zeros(k, dtype=np.int64)
    final_losses = np.zeros(k)
    last = n_layers - 1
    started = time.perf_counter()

    for _epoch in range(cfg.epochs):
        epochs_run[active] += 1

        # Forward, caching post-activations and ReLU masks.
        activations = [x_pad]
        masks: list[np.ndarray] = []
        h = x_pad
        for l in range(n_layers):
            z = h @ weights[l] + biases[l][:, None, :]
            if l == last:
                h = z
            else:
                mask = z > 0.0
                h = np.where(mask, z, 0.0)
                masks.append(mask)
            activations.append(h)

        diff = (activations[-1] - y_pad) * row_mask
        per_model_loss = np.einsum("kno,kno->k", diff, diff) / (
            n_per * sizes[-1]
        )

        # Backward: gradients for every model in one pass.  Padded rows have
        # diff == 0 exactly, so they contribute nothing.
        grads_w: list[np.ndarray] = [None] * n_layers  # type: ignore[list-item]
        grads_b: list[np.ndarray] = [None] * n_layers  # type: ignore[list-item]
        delta = (2.0 / (n_per * sizes[-1]))[:, None, None] * diff
        for l in range(last, -1, -1):
            grads_w[l] = activations[l].transpose(0, 2, 1) @ delta
            grads_b[l] = delta.sum(axis=1)
            if l > 0:
                delta = (delta @ weights[l].transpose(0, 2, 1)) * masks[l - 1]

        # Masked Adam step: only active models advance.
        steps[active] += 1.0
        bias1 = 1.0 - beta1 ** np.maximum(steps, 1.0)
        bias2 = 1.0 - beta2 ** np.maximum(steps, 1.0)
        flat_grads = grads_w + grads_b
        params = weights + biases
        for p, g, m, v in zip(params, flat_grads, moments1, moments2):
            gate = active.reshape((k,) + (1,) * (p.ndim - 1))
            b1 = bias1.reshape(gate.shape)
            b2 = bias2.reshape(gate.shape)
            np.copyto(m, beta1 * m + (1.0 - beta1) * g, where=gate)
            np.copyto(v, beta2 * v + (1.0 - beta2) * (g * g), where=gate)
            update = lr * (m / b1) / (np.sqrt(v / b2) + eps)
            np.copyto(p, p - update, where=gate)

        # Per-model early stopping, mirroring train_regressor.
        final_losses[active] = per_model_loss[active]
        improved = per_model_loss < best_loss - cfg.tolerance
        best_loss = np.where(improved & active, per_model_loss, best_loss)
        stale = np.where(active, np.where(improved, 0, stale + 1), stale)
        active &= stale < cfg.patience
        if not active.any():
            break

    elapsed = time.perf_counter() - started
    for i, net in enumerate(nets):
        net.weights = [weights[l][i].copy() for l in range(n_layers)]
        net.biases = [biases[l][i].copy() for l in range(n_layers)]
    return FusedTrainResult(
        final_losses=tuple(float(v) for v in final_losses),
        epochs_run=tuple(int(v) for v in epochs_run),
        elapsed_seconds=elapsed,
    )
