"""Tests for the batch point-query API (vectorised lookups)."""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import LISAIndex, MLIndex, RSMIIndex, ZMIndex


@pytest.fixture(scope="module")
def indices(osm_points):
    config = ELSIConfig(train_epochs=80)
    built = {}
    for cls in (ZMIndex, MLIndex, RSMIIndex, LISAIndex):
        built[cls.name] = cls(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points
        )
    return built


@pytest.mark.parametrize("name", ["ZM", "ML", "RSMI", "LISA"])
def test_batch_matches_scalar(indices, osm_points, name):
    index = indices[name]
    rng = np.random.default_rng(0)
    batch = np.vstack([osm_points[:200], rng.random((50, 2)) + 1.5])
    got = index.point_queries(batch)
    expected = np.array([index.point_query(p) for p in batch])
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("name", ["ZM", "ML"])
def test_vectorised_path_all_hits_and_misses(indices, osm_points, name):
    index = indices[name]
    hits = index.point_queries(osm_points[:300])
    assert hits.all()
    misses = index.point_queries(osm_points[:50] + 2.0)
    assert not misses.any()


def test_batch_on_two_stage_rmi(osm_points):
    config = ELSIConfig(train_epochs=80)
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=4
    ).build(osm_points)
    got = index.point_queries(osm_points[:200])
    assert got.all()


def test_search_ranges_match_scalar(osm_points):
    config = ELSIConfig(train_epochs=80)
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=4
    ).build(osm_points)
    keys = index.store.keys[::37]
    lo, hi = index.model.search_ranges(keys)
    for i, key in enumerate(keys):
        s_lo, s_hi = index.model.search_range(float(key))
        assert lo[i] == s_lo
        assert hi[i] == s_hi


def test_batch_after_native_inserts(osm_points):
    config = ELSIConfig(train_epochs=80)
    index = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)
    extra = np.random.default_rng(1).random((40, 2))
    for p in extra:
        index.insert(p)
    assert index.point_queries(extra).all()


def test_single_row_batch(indices, osm_points):
    index = indices["ZM"]
    assert index.point_queries(osm_points[0]).shape == (1,)


class TestBatchEdgeCases:
    """Serving-path edge cases: empty and single-point request batches."""

    @pytest.mark.parametrize("name", ["ZM", "ML", "RSMI", "LISA"])
    def test_empty_batch(self, indices, name):
        index = indices[name]
        out = index.point_queries(np.empty((0, 2)))
        assert out.shape == (0,)
        assert out.dtype == bool

    def test_empty_batch_against_empty_store(self, osm_points):
        from repro.perf.batching import batch_point_membership
        from repro.storage.blocks import BlockStore

        store = BlockStore(np.empty((0, 2)), np.empty(0))
        out = batch_point_membership(
            store, np.empty(0), np.empty(0), np.empty(0), np.empty((0, 2))
        )
        assert out.shape == (0,)

    def test_single_point_batch_no_gather(self, indices, osm_points):
        """A one-request batch must not pay the range-merge machinery —
        it degenerates to one store scan."""
        index = indices["ZM"]
        store = index.store
        single = index.point_queries(osm_points[:1])
        scalar = index.point_query(osm_points[0])
        assert bool(single[0]) == scalar
        # The single-point fast path charges the same block reads as the
        # scalar predict-and-scan (one store.scan, no fused gather).
        store.reset_block_reads()
        index.point_queries(osm_points[:1])
        batch_reads = store.block_reads
        store.reset_block_reads()
        index.point_query(osm_points[0])
        assert batch_reads == store.block_reads

    @pytest.mark.parametrize("name", ["ZM", "ML", "RSMI", "LISA"])
    def test_single_point_matches_scalar(self, indices, osm_points, name):
        index = indices[name]
        miss = np.array([[1.7, 1.9]])
        assert index.point_queries(osm_points[3:4])[0] == index.point_query(
            osm_points[3]
        )
        assert index.point_queries(miss)[0] == index.point_query(miss[0])


class TestBatchKNN:
    """The vectorised expanding-window kNN must agree with the scalar path."""

    @pytest.mark.parametrize("name", ["ZM", "LISA"])
    def test_batch_knn_matches_scalar(self, indices, osm_points, name):
        index = indices[name]
        queries = osm_points[::100]
        batch = index.knn_queries(queries, 7)
        assert len(batch) == len(queries)
        for q, got in zip(queries, batch):
            np.testing.assert_array_equal(got, index.knn_query(q, 7))

    def test_batch_knn_flood(self, osm_points):
        from repro.indices import FloodIndex

        config = ELSIConfig(train_epochs=80)
        index = FloodIndex(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points
        )
        queries = osm_points[::200]
        for q, got in zip(queries, index.knn_queries(queries, 5)):
            np.testing.assert_array_equal(got, index.knn_query(q, 5))

    def test_batch_knn_k_exceeds_n(self, indices, osm_points):
        index = indices["ZM"]
        n = index.n_points
        results = index.knn_queries(osm_points[:3], n + 10)
        for got in results:
            assert len(got) == n

    def test_batch_knn_empty(self, indices):
        assert indices["ZM"].knn_queries(np.empty((0, 2)), 5) == []

    def test_batch_knn_outside_bounds(self, indices, osm_points):
        index = indices["ZM"]
        far = np.array([[5.0, 5.0], [-3.0, 0.5]])
        batch = index.knn_queries(far, 4)
        for q, got in zip(far, batch):
            np.testing.assert_array_equal(got, index.knn_query(q, 4))


class TestMLBatchKNN:
    """ML-Index's batched iDistance kNN must agree with the scalar radius
    loop exactly — candidate order, ties, and edge cases included."""

    @pytest.mark.parametrize("k", [1, 7, 23])
    def test_matches_scalar(self, indices, osm_points, k):
        index = indices["ML"]
        rng = np.random.default_rng(5)
        queries = np.vstack(
            [osm_points[::80], rng.random((30, 2)), rng.random((10, 2)) + 1.5]
        )
        batch = index.knn_queries(queries, k)
        assert len(batch) == len(queries)
        for q, got in zip(queries, batch):
            np.testing.assert_array_equal(got, index.knn_query(q, k))

    def test_ties_resolve_identically(self, osm_points):
        # Duplicated points force exact distance ties; stable ordering must
        # make both paths pick the same representatives.
        config = ELSIConfig(train_epochs=80)
        dup = np.vstack([osm_points[:400], osm_points[:400]])
        index = MLIndex(builder=ELSIModelBuilder(config, method="SP")).build(dup)
        queries = osm_points[:25]
        for q, got in zip(queries, index.knn_queries(queries, 6)):
            np.testing.assert_array_equal(got, index.knn_query(q, 6))

    def test_k_exceeds_n(self, osm_points):
        config = ELSIConfig(train_epochs=60)
        index = MLIndex(
            builder=ELSIModelBuilder(config, method="SP"), n_references=2
        ).build(osm_points[:6])
        queries = osm_points[:4]
        for q, got in zip(queries, index.knn_queries(queries, 10)):
            np.testing.assert_array_equal(got, index.knn_query(q, 10))
            # At radii past the data diameter the annulus intervals overlap
            # partitions, so the (scalar and batch) candidate list can carry
            # duplicates — but it must cover the whole dataset.
            assert len(np.unique(got, axis=0)) == 6

    def test_empty_batch(self, indices):
        assert indices["ML"].knn_queries(np.empty((0, 2)), 3) == []

    def test_invalid_k_rejected(self, indices, osm_points):
        with pytest.raises(ValueError, match="k must be"):
            indices["ML"].knn_queries(osm_points[:2], 0)

    def test_query_stats_match_scalar(self, osm_points):
        config = ELSIConfig(train_epochs=80)
        queries = osm_points[::150]
        scalar = MLIndex(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points
        )
        batch = MLIndex(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points
        )
        for q in queries:
            scalar.knn_query(q, 5)
        batch.knn_queries(queries, 5)
        assert batch.query_stats.queries == scalar.query_stats.queries
        assert batch.query_stats.model_invocations == (
            scalar.query_stats.model_invocations
        )
        assert batch.query_stats.points_scanned == scalar.query_stats.points_scanned


# ----------------------------------------------------------------------
# Batch window queries
# ----------------------------------------------------------------------
class TestBatchWindowQueries:
    def _windows(self, osm_points):
        from repro.spatial.rect import Rect

        rng = np.random.default_rng(5)
        windows = []
        for _ in range(12):
            center = osm_points[rng.integers(len(osm_points))]
            windows.append(Rect.centered(center, float(rng.uniform(0.01, 0.2))))
        windows.append(Rect((2.0, 2.0), (3.0, 3.0)))  # empty window
        return windows

    @pytest.mark.parametrize("name", ["ZM", "ML", "RSMI", "LISA"])
    def test_batch_matches_scalar(self, indices, osm_points, name):
        index = indices[name]
        windows = self._windows(osm_points)
        batch = index.window_queries(windows)
        assert len(batch) == len(windows)
        for w, got in zip(windows, batch):
            np.testing.assert_array_equal(got, index.window_query(w))

    def test_batch_window_empty_list(self, indices):
        assert indices["ZM"].window_queries([]) == []

    def test_batch_window_query_stats_match_scalar(self, osm_points):
        from repro.core.config import ELSIConfig

        config = ELSIConfig(train_epochs=80)
        a = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)
        b = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)
        windows = self._windows(osm_points)
        a.window_queries(windows)
        for w in windows:
            b.window_query(w)
        assert a.query_stats.queries == b.query_stats.queries
        assert a.query_stats.points_scanned == b.query_stats.points_scanned

    def test_update_processor_batch_merges_side_list(self, osm_points):
        from repro.core.config import ELSIConfig
        from repro.core.update_processor import UpdateProcessor

        config = ELSIConfig(train_epochs=80)
        index = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points
        )
        proc = UpdateProcessor(index, config=config)
        proc.insert(np.array([0.501, 0.501]))
        proc.delete(osm_points[0])
        windows = self._windows(osm_points)
        batch = proc.window_queries(windows)
        for w, got in zip(windows, batch):
            expected = proc.window_query(w)
            np.testing.assert_array_equal(
                got[np.lexsort(got.T)] if len(got) else got,
                expected[np.lexsort(expected.T)] if len(expected) else expected,
            )
