"""Lloyd's k-means with k-means++ seeding.

Used by the CL build method (cluster centroids as the reduced training set,
Section V-A2) and by the iDistance mapping of ML-Index (reference points).
The paper notes a straightforward implementation costs ``O(C * n * d * i)``
for ``i`` iterations; this one is that algorithm, vectorised per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int


def _kmeanspp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = len(points)
    centroids = np.empty((k, points.shape[1]), dtype=points.dtype)
    centroids[0] = points[rng.integers(n)]
    closest_sq = np.full(n, np.inf, dtype=points.dtype)
    for i in range(1, k):
        diff = points - centroids[i - 1]
        dist_sq = np.einsum("ij,ij->i", diff, diff)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
        total = closest_sq.sum()
        if total <= 0.0:
            # All points coincide with chosen centroids; duplicate one.
            centroids[i:] = points[rng.integers(n, size=k - i)]
            return centroids
        # rng.choice needs float64 probabilities summing to one exactly.
        probs = closest_sq.astype(np.float64) / float(total)
        probs /= probs.sum()
        centroids[i] = points[rng.choice(n, p=probs)]
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    max_iterations: int = 25,
    tolerance: float = 1e-7,
    seed: int = 0,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` clusters; returns centroids and labels.

    ``max_iterations`` defaults low because CL only needs centroids that
    summarise density, not a converged optimum; the paper's complexity
    analysis treats the iteration count ``i`` as a constant factor.

    Floating inputs keep their dtype (float32 points cluster in float32 —
    centroids, distances and inertia included); other dtypes upcast to
    float64.
    """
    pts = np.asarray(points)
    if not np.issubdtype(pts.dtype, np.floating):
        pts = pts.astype(np.float64)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValueError("need a non-empty (n, d) array of points")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > len(pts):
        raise ValueError(f"k={k} exceeds the number of points {len(pts)}")

    rng = np.random.default_rng(seed)
    centroids = _kmeanspp_init(pts, k, rng)
    labels = np.zeros(len(pts), dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # Assignment step: nearest centroid by squared Euclidean distance,
        # computed blockwise to bound memory at large n * k.
        labels = _assign(pts, centroids)
        new_centroids = centroids.copy()
        for c in range(k):
            members = pts[labels == c]
            if len(members):
                new_centroids[c] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the point farthest from its
                # centroid, the usual k-means repair.
                diffs = pts - centroids[labels]
                dist_sq = np.einsum("ij,ij->i", diffs, diffs)
                new_centroids[c] = pts[int(np.argmax(dist_sq))]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift <= tolerance:
            break

    labels = _assign(pts, centroids)
    diffs = pts - centroids[labels]
    inertia = float(np.einsum("ij,ij->i", diffs, diffs).sum())
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=inertia, iterations=iterations
    )


def _assign(points: np.ndarray, centroids: np.ndarray, block: int = 8192) -> np.ndarray:
    """Nearest-centroid labels, processed in blocks of rows."""
    labels = np.empty(len(points), dtype=np.int64)
    c_norm = np.einsum("ij,ij->i", centroids, centroids)
    for start in range(0, len(points), block):
        chunk = points[start : start + block]
        # ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2; ||p||^2 constant per row.
        scores = chunk @ centroids.T * -2.0 + c_norm
        labels[start : start + block] = np.argmin(scores, axis=1)
    return labels
