"""Tests for the serving subsystem (micro-batching, generations, snapshots).

The centrepiece is the swap-under-load test: queries keep flowing while a
background rebuild swaps the generation pointer, and every reply must (a)
arrive without ever blocking on the rebuild and (b) name exactly one
generation — no batch may mix pre- and post-swap index state.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.update_processor import UpdateProcessor
from repro.faults import get_fault_registry
from repro.indices import ZMIndex
from repro.serve import (
    DEGRADED,
    HEALTHY,
    READ_ONLY,
    IndexServer,
    LatencyHistogram,
    RebuildFailed,
    RequestTimeout,
    ServeConfig,
    ServeWorkload,
    ServerClosed,
    ServerOverloaded,
    ServerReadOnly,
    SnapshotManager,
    run_baseline,
    run_closed_loop,
)
from repro.spatial.rect import Rect


@pytest.fixture(scope="module")
def built_index(osm_points):
    config = ELSIConfig(train_epochs=80)
    return ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)


def _server(index, **kwargs) -> IndexServer:
    kwargs.setdefault("config", ServeConfig(max_batch_size=64, max_wait_seconds=0.001))
    return IndexServer(index, elsi_config=ELSIConfig(train_epochs=80), **kwargs)


class TestBasicServing:
    def test_point_queries_match_direct(self, built_index, osm_points):
        rng = np.random.default_rng(0)
        misses = rng.random((30, 2)) + 1.5
        with _server(built_index) as server:
            hit_replies = [server.submit_point(p) for p in osm_points[:60]]
            miss_replies = [server.submit_point(p) for p in misses]
            assert all(r.wait(20) for r in hit_replies)
            assert not any(r.wait(20) for r in miss_replies)

    def test_window_and_knn_match_direct(self, built_index, osm_points):
        window = Rect.centered(np.array([0.5, 0.5]), 0.15)
        with _server(built_index) as server:
            got = server.window_query(window)
            assert len(got) == len(built_index.window_query(window))
            nn = server.knn_query(osm_points[0], 5)
            np.testing.assert_array_equal(nn, built_index.knn_query(osm_points[0], 5))

    def test_reply_records_generation_and_latency(self, built_index, osm_points):
        with _server(built_index) as server:
            reply = server.submit_point(osm_points[0])
            reply.wait(20)
            assert reply.generation == server.generation
            assert reply.latency_seconds >= 0.0

    def test_submit_before_start_rejected(self, built_index, osm_points):
        server = _server(built_index)
        with pytest.raises(RuntimeError):
            server.submit_point(osm_points[0])

    def test_stats_surface(self, built_index, osm_points):
        with _server(built_index) as server:
            for p in osm_points[:40]:
                server.point_query(p)
            snap = server.stats.snapshot()
        assert snap["submitted"]["point"] == 40
        assert snap["completed"] == 40
        assert snap["errors"] == 0
        assert snap["batches"] >= 1
        assert snap["latency"]["count"] == 40
        assert snap["latency"]["p99_seconds"] >= snap["latency"]["p50_seconds"]

    def test_window_micro_batch_matches_direct(self, built_index, osm_points):
        rng = np.random.default_rng(3)
        windows = [
            Rect.centered(osm_points[rng.integers(len(osm_points))], 0.1)
            for _ in range(8)
        ]
        with _server(built_index) as server:
            replies = [server.submit_window(w) for w in windows]
            for w, reply in zip(windows, replies):
                np.testing.assert_array_equal(
                    reply.wait(20), built_index.window_query(w)
                )

    def test_stats_snapshot_export_format(self, built_index, osm_points):
        with _server(built_index) as server:
            for p in osm_points[:10]:
                server.point_query(p)
            dump = server.stats_snapshot()
        # Exporter format: {name: [{labels, kind, value}, ...]}.
        assert dump["serve.requests_submitted"] == [
            {"labels": {"kind": "point"}, "kind": "counter", "value": 10.0}
        ]
        assert dump["serve.batches"][0]["kind"] == "counter"
        assert dump["serve.request_latency_seconds"][0]["kind"] == "histogram"
        assert dump["serve.request_latency_seconds"][0]["value"]["count"] == 10
        # Serving-health gauges are exported alongside the counters.
        assert dump["serve.generation_age_seconds"][0]["value"] >= 0.0
        assert "serve.rebuild_journal_depth" in dump

    def test_stats_export_text(self, built_index, osm_points):
        with _server(built_index) as server:
            server.point_query(osm_points[0])
            text = server.stats.export_text()
        assert 'serve.requests_submitted{kind="point"} 1' in text
        assert "serve.request_latency_seconds_count 1" in text

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ServeConfig(max_wait_seconds=-1.0)

    def test_unbuilt_index_rejected(self):
        with pytest.raises(ValueError):
            IndexServer(ZMIndex())


class TestUpdates:
    def test_insert_visible_to_queries(self, built_index):
        fresh = np.array([0.111, 0.222])
        with _server(built_index, config=ServeConfig(auto_rebuild=False)) as server:
            assert not server.point_query(fresh)
            server.insert(fresh)
            assert server.point_query(fresh)
            assert server.delete(fresh)
            assert not server.point_query(fresh)

    def test_manual_rebuild_swaps_generation(self, osm_points):
        config = ELSIConfig(train_epochs=60)
        index = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points[:800]
        )
        server = _server(index, config=ServeConfig(auto_rebuild=False))
        with server:
            rng = np.random.default_rng(5)
            extra = rng.random((50, 2)) * 0.2
            for p in extra:
                server.insert(p)
            g0 = server.generation
            n0 = server.n_points
            server.rebuild_now()
            assert server.generation == g0 + 1
            assert server.n_points == n0
            # Every inserted point survives the rebuild.
            for p in extra:
                assert server.point_query(p)
        assert server.stats.rebuilds == 1
        assert server.stats.generation_swaps == 1


class TestSwapUnderLoad:
    """Queries during a background rebuild never block on it and never see
    a half-finished generation."""

    def test_queries_flow_and_stay_consistent(self, osm_points):
        config = ELSIConfig(train_epochs=80)
        index = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points[:1500]
        )
        server = _server(index, config=ServeConfig(auto_rebuild=False))
        rng = np.random.default_rng(9)
        inserts = rng.random((120, 2)) * 0.1

        with server:
            for p in inserts:
                server.insert(p)
            g0 = server.generation

            replies = []
            stop = threading.Event()

            def query_load() -> None:
                i = 0
                while not stop.is_set():
                    replies.append(server.submit_point(osm_points[i % 1500]))
                    # Also probe the inserted points: both generations must
                    # answer True (side list before the swap, base after).
                    replies.append(server.submit_point(inserts[i % len(inserts)]))
                    i += 1
                    time.sleep(0)

            loader = threading.Thread(target=query_load)
            loader.start()
            time.sleep(0.02)
            rebuild_seconds = server.rebuild_now()
            time.sleep(0.02)
            stop.set()
            loader.join()

            assert server.generation == g0 + 1
            generations = set()
            max_latency = 0.0
            for reply in replies:
                assert reply.wait(30) is True
                generations.add(reply.generation)
                max_latency = max(max_latency, reply.latency_seconds)
            # The load straddled the swap: early replies came from g0, late
            # ones from g0+1, and nothing else.
            assert generations <= {g0, g0 + 1}
            assert g0 + 1 in generations
            # Queries never waited for the rebuild: even on a slow CI
            # machine, a reply taking as long as the rebuild itself means
            # serving was blocked.
            assert len(replies) > 0
            assert max_latency < max(rebuild_seconds, 0.05) * 10

    def test_batches_never_mix_generations(self, osm_points):
        """All replies of one micro-batch name the same generation."""
        config = ELSIConfig(train_epochs=60)
        index = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points[:1000]
        )
        server = IndexServer(
            index,
            ServeConfig(max_batch_size=32, max_wait_seconds=0.002, auto_rebuild=False),
            elsi_config=ELSIConfig(train_epochs=60),
        )
        with server:
            rng = np.random.default_rng(2)
            for p in rng.random((40, 2)) * 0.1:
                server.insert(p)

            swapping = threading.Thread(target=server.rebuild_now)
            batches: list[list] = []
            swapping.start()
            while swapping.is_alive():
                window = [server.submit_point(p) for p in osm_points[:32]]
                for reply in window:
                    reply.wait(30)
                batches.append(window)
            swapping.join()
            for window in batches:
                gens = {reply.generation for reply in window}
                # Replies submitted together may span dispatcher batches,
                # but each dispatcher batch resolves from one generation —
                # so a 32-submit window sees at most the two generations
                # alive during the swap, never a third or a mix within one
                # service call.
                assert len(gens) <= 2

    def test_updates_during_rebuild_not_lost(self, osm_points):
        """Inserts that arrive mid-rebuild are journalled and replayed into
        the successor generation."""
        config = ELSIConfig(train_epochs=60)
        index = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points[:1000]
        )
        server = _server(index, config=ServeConfig(auto_rebuild=False))
        with server:
            rng = np.random.default_rng(4)
            for p in rng.random((30, 2)) * 0.1:
                server.insert(p)
            racing = rng.random((25, 2)) * 0.1 + 0.85

            inserted = []

            def race_inserts() -> None:
                for p in racing:
                    server.insert(p)
                    inserted.append(p)
                    time.sleep(0.001)

            racer = threading.Thread(target=race_inserts)
            racer.start()
            server.rebuild_now()
            racer.join()

            for p in inserted:
                assert server.point_query(p), "insert lost across generation swap"
            assert server.n_points == 1000 + 30 + 25


class TestSnapshots:
    def test_save_load_round_trip(self, built_index, osm_points, tmp_path):
        manager = SnapshotManager(tmp_path)
        manager.save(built_index, 3)
        assert manager.generations() == [3]
        loaded, gen = manager.load()
        assert gen == 3
        np.testing.assert_array_equal(
            loaded.point_queries(osm_points[:50]),
            built_index.point_queries(osm_points[:50]),
        )

    def test_latest_and_prune(self, built_index, tmp_path):
        manager = SnapshotManager(tmp_path)
        for gen in (1, 2, 5):
            manager.save(built_index, gen)
        assert manager.latest() == 5
        removed = manager.prune(keep=1)
        assert len(removed) == 2
        assert manager.generations() == [5]

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SnapshotManager(tmp_path).load()

    def test_server_snapshots_on_rebuild(self, osm_points, tmp_path):
        config = ELSIConfig(train_epochs=60)
        index = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points[:800]
        )
        server = _server(
            index, config=ServeConfig(auto_rebuild=False), snapshots=str(tmp_path)
        )
        with server:
            server.insert(np.array([0.4, 0.6]))
            server.rebuild_now()
            gen = server.generation
        restored = IndexServer.from_snapshot(str(tmp_path))
        assert restored.generation == gen
        with restored:
            assert restored.point_query(np.array([0.4, 0.6]))


class TestLifecycle:
    def test_submit_after_close_raises_server_closed(self, built_index, osm_points):
        server = _server(built_index)
        with server:
            server.point_query(osm_points[0])
        with pytest.raises(ServerClosed):
            server.submit_point(osm_points[0])
        with pytest.raises(ServerClosed):
            server.insert(np.array([0.5, 0.5]))
        with pytest.raises(ServerClosed):
            server.delete(np.array([0.5, 0.5]))

    def test_start_after_close_raises(self, built_index):
        server = _server(built_index)
        server.start()
        server.close()
        with pytest.raises(ServerClosed):
            server.start()

    def test_close_is_idempotent(self, built_index):
        server = _server(built_index).start()
        server.close()
        server.close()

    def test_submit_close_race_never_strands_a_reply(self, built_index, osm_points):
        """Submissions racing close() must either raise ServerClosed or
        get a completed reply — never a Reply left to hang forever."""
        server = _server(built_index).start()
        replies: list = []
        lock = threading.Lock()

        def spam():
            for point in osm_points[:200]:
                try:
                    reply = server.submit_point(point)
                except ServerClosed:
                    return
                with lock:
                    replies.append(reply)

        threads = [threading.Thread(target=spam) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.01)
        server.close()
        for t in threads:
            t.join()
        assert replies
        for reply in replies:
            try:
                # A TimeoutError here means the request was enqueued after
                # shutdown and stranded — the race this test guards.
                reply.wait(timeout=10.0)
            except ServerClosed:
                pass


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error(self, built_index, osm_points):
        config = ServeConfig(
            max_batch_size=4, max_wait_seconds=0.0, max_queue_depth=4
        )
        with _server(built_index, config=config) as server:
            # Stall the single dispatcher inside one batch so the queue
            # genuinely backs up behind it.
            get_fault_registry().arm(
                "serve.dispatch", kind="delay", delay_seconds=0.3
            )
            first = server.submit_point(osm_points[0])
            time.sleep(0.05)
            accepted = [first]
            with pytest.raises(ServerOverloaded):
                for i in range(1, 32):
                    accepted.append(server.submit_point(osm_points[i]))
            # Everything that *was* admitted still completes.
            for reply in accepted:
                reply.wait(20)
            assert server.stats.shed["overloaded"] >= 1
        snap = server.stats.snapshot()
        assert snap["shed"]["overloaded"] >= 1

    def test_aged_requests_shed_with_timeout(self, built_index, osm_points):
        config = ServeConfig(
            max_batch_size=4, max_wait_seconds=0.0, request_timeout_seconds=0.05
        )
        with _server(built_index, config=config) as server:
            get_fault_registry().arm(
                "serve.dispatch", kind="delay", delay_seconds=0.3
            )
            fresh = server.submit_point(osm_points[0])  # enters the stalled batch
            time.sleep(0.1)
            stale = server.submit_point(osm_points[1])  # queued behind the stall
            assert fresh.wait(20) is True
            with pytest.raises(RequestTimeout):
                stale.wait(20)
            assert server.stats.shed["timeout"] >= 1

    def test_bad_admission_config_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(max_queue_depth=-1)
        with pytest.raises(ValueError):
            ServeConfig(request_timeout_seconds=0.0)
        with pytest.raises(ValueError):
            ServeConfig(fsync_policy="sync-maybe")
        with pytest.raises(ValueError):
            ServeConfig(retry_base_delay=0.5, retry_max_delay=0.1)


@pytest.fixture()
def small_server_parts(osm_points):
    config = ELSIConfig(train_epochs=60)
    factory = lambda: ZMIndex(builder=ELSIModelBuilder(config, method="SP"))  # noqa: E731
    index = factory().build(osm_points[:800])
    return index, config, factory


class TestFaultTolerance:
    """Health walks healthy -> degraded -> read_only; retries converge."""

    def _server(self, parts, **kwargs):
        index, config, factory = parts
        kwargs.setdefault(
            "config",
            ServeConfig(
                auto_rebuild=False,
                max_retries=2,
                retry_base_delay=0.01,
                retry_max_delay=0.05,
            ),
        )
        return IndexServer(
            index, elsi_config=config, index_factory=factory, **kwargs
        )

    def test_rebuild_retries_then_succeeds(self, small_server_parts):
        server = self._server(small_server_parts)
        server.insert(np.array([0.77, 0.77]))
        get_fault_registry().arm("rebuild.worker", kind="error", times=1)
        server.rebuild_now()
        assert server.generation == 1
        assert server.health == HEALTHY
        assert server.stats.retries == {"rebuild": 1}
        assert server.stats.rebuild_failures == 1
        assert server.last_rebuild_error is None
        server.close()

    def test_exhausted_rebuild_budget_goes_read_only(self, small_server_parts):
        server = self._server(
            small_server_parts,
            config=ServeConfig(
                auto_rebuild=False, max_retries=1,
                retry_base_delay=0.01, retry_max_delay=0.02,
            ),
        )
        get_fault_registry().arm("rebuild.worker", kind="error", times=0)
        with pytest.raises(RebuildFailed):
            server.rebuild_now()
        assert server.health == READ_ONLY
        assert server.last_rebuild_error is not None
        with pytest.raises(ServerReadOnly):
            server.insert(np.array([0.5, 0.5]))
        # Queries still flow in read-only mode.
        with server:
            assert server.point_query(np.array([0.5, 0.5])) in (True, False)
            # A successful rebuild restores full health and write access.
            get_fault_registry().disarm()
            server.rebuild_now()
            assert server.health == HEALTHY
            server.insert(np.array([0.51, 0.51]))
            assert server.point_query(np.array([0.51, 0.51]))

    def test_snapshot_failure_degrades_but_serves(
        self, small_server_parts, tmp_path
    ):
        server = self._server(
            small_server_parts,
            config=ServeConfig(auto_rebuild=False, max_retries=0),
            snapshots=str(tmp_path),
        )
        generations_before = server.snapshots.generations()
        get_fault_registry().arm("snapshot.write", kind="error", times=0)
        server.rebuild_now()
        assert server.generation == 1  # the rebuild itself landed
        assert server.health == DEGRADED
        assert server.stats.snapshot_failures >= 1
        assert server.snapshots.generations() == generations_before
        server.insert(np.array([0.6, 0.6]))  # degraded still accepts writes
        server.close()

    def test_rebuild_loop_surfaces_worker_errors(self, small_server_parts):
        """Background-worker failures land on last_rebuild_error and the
        health gauge instead of dying silently (the old behaviour)."""
        index, config, factory = small_server_parts
        server = IndexServer(
            index,
            ServeConfig(
                rebuild_check_every=1, max_retries=0,
                retry_base_delay=0.01, retry_max_delay=0.02,
            ),
            elsi_config=ELSIConfig(train_epochs=60, f_u=1),
            index_factory=factory,
        )
        get_fault_registry().arm("rebuild.worker", kind="error", times=0)
        with server:
            rng = np.random.default_rng(11)
            # Heavy drift concentrated in one corner trips to_rebuild().
            try:
                for p in rng.random((600, 2)) * 0.05:
                    server.insert(p)
            except ServerReadOnly:
                pass
            deadline = time.time() + 10.0
            while server.last_rebuild_error is None and time.time() < deadline:
                time.sleep(0.01)
        assert server.last_rebuild_error is not None
        assert server.health == READ_ONLY

    def test_journal_replay_preserves_submission_order(self, small_server_parts):
        """Interleaved insert/delete submitted while a rebuild is in
        flight must apply in submission order after the swap."""
        server = self._server(small_server_parts)
        get_fault_registry().arm(
            "rebuild.worker", kind="delay", delay_seconds=0.4
        )
        kept = np.array([0.91, 0.915])
        dropped = np.array([0.92, 0.925])
        worker = threading.Thread(target=server.rebuild_now)
        worker.start()
        deadline = time.time() + 5.0
        while not server._rebuilding and time.time() < deadline:
            time.sleep(0.001)
        assert server._rebuilding, "rebuild window never opened"
        # Same point, conflicting ops: only submission order disambiguates.
        server.insert(kept)
        assert server.delete(kept)
        server.insert(kept)      # net effect: present
        server.insert(dropped)
        assert server.delete(dropped)  # net effect: absent
        worker.join()
        assert server.generation == 1
        processor = server._gen.processor
        assert processor.point_query(kept), "journal replay lost the final insert"
        assert not processor.point_query(dropped), "journal replay resurrected a delete"
        server.close()


class TestSnapshotHardening:
    def test_orphaned_tmp_files_cleaned_on_startup(self, tmp_path):
        orphan = tmp_path / ".gen-000004.tmp.npz"
        orphan.write_bytes(b"half a snapshot")
        manager = SnapshotManager(tmp_path)
        assert not orphan.exists()
        assert manager.generations() == []

    def test_load_falls_back_past_corrupt_snapshot(
        self, built_index, osm_points, tmp_path
    ):
        manager = SnapshotManager(tmp_path)
        manager.save(built_index, 0)
        manager.save(built_index, 1)
        manager.path_for(1).write_bytes(b"\x00" * 100)  # torn newest snapshot
        loaded, gen = manager.load()
        assert gen == 0
        assert (tmp_path / "gen-000001.npz.corrupt").exists()
        np.testing.assert_array_equal(
            loaded.point_queries(osm_points[:20]),
            built_index.point_queries(osm_points[:20]),
        )

    def test_explicit_generation_load_is_strict(self, built_index, tmp_path):
        manager = SnapshotManager(tmp_path)
        manager.save(built_index, 2)
        manager.path_for(2).write_bytes(b"garbage")
        with pytest.raises(Exception):
            manager.load(2)
        assert manager.path_for(2).exists()  # strict mode never quarantines

    def test_all_corrupt_raises_not_found(self, built_index, tmp_path):
        manager = SnapshotManager(tmp_path)
        manager.save(built_index, 0)
        manager.path_for(0).write_bytes(b"junk")
        with pytest.raises(FileNotFoundError):
            manager.load()

    def test_prune_refuses_serving_generation(self, built_index, tmp_path):
        manager = SnapshotManager(tmp_path)
        for gen in (1, 2, 5):
            manager.save(built_index, gen)
        manager.mark_serving(1)
        removed = manager.prune(keep=1)
        assert [p.name for p in removed] == ["gen-000002.npz"]
        assert manager.generations() == [1, 5]
        removed = manager.prune(keep=1, protect=5)
        assert removed == []


class TestDriver:
    def test_closed_loop_serves_everything(self, built_index, osm_points):
        workload = ServeWorkload.mixed(osm_points, 300, seed=1)
        with _server(built_index) as server:
            result = run_closed_loop(server, workload, clients=4, pipeline=16)
        assert result.errors == 0
        assert result.n_requests == 300
        assert result.stats["completed"] == 300
        assert result.throughput > 0

    def test_baseline_runs_same_workload(self, built_index, osm_points):
        workload = ServeWorkload.points_only(osm_points[:100])
        processor = UpdateProcessor(built_index, ELSIConfig())
        result = run_baseline(processor, workload)
        assert result.n_requests == 100
        assert result.throughput > 0

    def test_mixed_workload_composition(self, osm_points):
        workload = ServeWorkload.mixed(
            osm_points, 200, point_fraction=0.5, knn_fraction=0.25, seed=3
        )
        kinds = set(workload.kinds)
        assert kinds == {"point", "knn", "window"}


class TestLatencyHistogram:
    def test_percentiles_bracket_samples(self):
        hist = LatencyHistogram()
        hist.record_many([1e-5] * 90 + [1e-2] * 10)
        assert hist.count == 100
        assert hist.percentile(50) <= 1e-4
        assert hist.percentile(99) >= 1e-2 / 2
        assert hist.max == 1e-2

    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.mean == 0.0
