"""Tests for the benchmark harness and (tiny-scale) experiment drivers."""

import numpy as np
import pytest

from repro.bench.experiments import Context
from repro.bench.harness import (
    ExperimentScale,
    format_table,
    measure_query_seconds,
    time_call,
)


class TestScale:
    def test_presets(self):
        for maker in (ExperimentScale.smoke, ExperimentScale.default, ExperimentScale.large):
            scale = maker()
            assert scale.n > 0
            assert scale.k == 25  # the paper's kNN k

    def test_ordering(self):
        assert ExperimentScale.smoke().n < ExperimentScale.default().n < ExperimentScale.large().n

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "default")
        assert ExperimentScale.from_env().name == "default"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            ExperimentScale.from_env()

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert ExperimentScale.from_env().name == "smoke"


class TestHarness:
    def test_time_call(self):
        result, seconds = time_call(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0

    def test_measure_query_seconds(self, osm_points, sp_builder):
        from repro.indices import ZMIndex
        from repro.queries.workload import point_workload

        index = ZMIndex(builder=sp_builder).build(osm_points)
        queries = point_workload(osm_points, 20, seed=0)
        per_query = measure_query_seconds(index, queries)
        assert per_query > 0

    def test_measure_empty_rejected(self):
        with pytest.raises(ValueError):
            measure_query_seconds(None, [])

    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["SP", 1.5], ["OG", 123456.0]], title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1]
        assert "SP" in lines[3]
        assert "1.23e+05" in text  # large floats in scientific notation

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestContext:
    @pytest.fixture(scope="class")
    def ctx(self):
        tiny = ExperimentScale(
            name="tiny",
            n=600,
            n_point_queries=40,
            n_window_queries=10,
            n_knn_queries=5,
            k=5,
            selector_cardinalities=(300,),
            selector_deltas=(0.0, 0.6),
            train_epochs=60,
            rl_steps=30,
        )
        return Context(tiny)

    def test_dataset_caching(self, ctx):
        a = ctx.dataset("OSM1")
        b = ctx.dataset("OSM1")
        assert a is b
        assert len(a) == 600

    def test_config_with_overrides(self, ctx):
        cfg = ctx.config_with(lam=0.3, rho=0.05)
        assert cfg.lam == 0.3
        assert cfg.rho == 0.05
        assert cfg.train_epochs == ctx.config.train_epochs

    def test_build_learned_and_traditional(self, ctx):
        points = ctx.dataset("OSM1")
        index, seconds = ctx.build_learned("ZM", points, method="SP")
        assert index.n_points == 600
        assert seconds > 0
        index, seconds = ctx.build_traditional("KDB", points)
        assert index.n_points == 600

    def test_selector_trained_lazily(self, ctx):
        selector = ctx.selector
        assert selector is ctx.selector  # cached
        choice = selector.select(600, 0.3, ["SP", "MR", "OG"], lam=0.8)
        assert choice in ("SP", "MR", "OG")

    def test_table1_driver_structure(self, ctx):
        from repro.bench.experiments import table1_cost_decomposition

        rows = table1_cost_decomposition(ctx)
        assert {r["method"] for r in rows} == set(ctx.config.methods)
        for row in rows:
            assert row["error_width"] >= 0
            assert row["train_set_size"] >= 0

    def test_fig13_size_defaults_scale_with_n(self, ctx):
        from repro.bench.experiments import fig13_window_sweeps

        result = fig13_window_sweeps(ctx, lams=(0.8,))
        counts = result["by_size_counts"]["RR*"]
        # Expected result counts grow roughly geometrically.
        assert counts[-1] > counts[0]
