"""Unit tests for the iDistance mapping (ML-Index substrate)."""

import numpy as np
import pytest

from repro.spatial.idistance import IDistanceMapping


@pytest.fixture(scope="module")
def mapping(request):
    rng = np.random.default_rng(0)
    pts = rng.random((1_000, 2))
    return IDistanceMapping.fit(pts, n_references=8, seed=0), pts


def test_keys_partition_disjoint(mapping):
    m, pts = mapping
    keys = m.keys(pts)
    ids, dists = m.nearest_reference(pts)
    # Key = id * stretch + dist, and dist < stretch, so partitions never
    # overlap in key space.
    np.testing.assert_array_equal((keys // m.stretch).astype(int), ids)
    assert np.all(dists < m.stretch)


def test_key_formula(mapping):
    m, pts = mapping
    ids, dists = m.nearest_reference(pts[:50])
    keys = m.keys(pts[:50])
    np.testing.assert_allclose(keys, ids * m.stretch + dists)


def test_nearest_reference_is_nearest(mapping):
    m, pts = mapping
    ids, dists = m.nearest_reference(pts[:100])
    all_dists = np.linalg.norm(pts[:100, None, :] - m.references[None], axis=2)
    np.testing.assert_array_equal(ids, np.argmin(all_dists, axis=1))
    np.testing.assert_allclose(dists, all_dists.min(axis=1), atol=1e-12)


def test_single_point_input(mapping):
    m, pts = mapping
    key = m.keys(pts[0])
    assert key.shape == (1,)


def test_partition_interval(mapping):
    m, _pts = mapping
    lo, hi = m.partition_interval(3)
    assert lo == pytest.approx(3 * m.stretch)
    assert hi == pytest.approx(4 * m.stretch)
    with pytest.raises(ValueError):
        m.partition_interval(m.n_references)


def test_annulus_covers_ball(mapping):
    """Every point within `radius` of the centre has its key inside the
    annulus range of its partition — the iDistance search invariant."""
    m, pts = mapping
    center = np.array([0.5, 0.5])
    radius = 0.2
    ranges = m.annulus_keys(center, radius)
    dist_to_center = np.linalg.norm(pts - center, axis=1)
    in_ball = pts[dist_to_center <= radius]
    keys = m.keys(in_ball)
    ids, _ = m.nearest_reference(in_ball)
    for key, pid in zip(keys, ids):
        lo, hi = ranges[pid]
        assert lo - 1e-9 <= key <= hi + 1e-9


def test_negative_radius_rejected(mapping):
    m, _pts = mapping
    with pytest.raises(ValueError):
        m.annulus_keys(np.array([0.5, 0.5]), -0.1)


def test_fit_fewer_points_than_references():
    pts = np.random.default_rng(1).random((3, 2))
    m = IDistanceMapping.fit(pts, n_references=10)
    assert m.n_references == 3


def test_fit_empty_rejected():
    with pytest.raises(ValueError):
        IDistanceMapping.fit(np.empty((0, 2)))
