"""Ablation — RMI stage-2 branching in the ZM/ML base indices.

A design choice DESIGN.md calls out: a single global model has one pair of
worst-case error bounds, so skewed key CDFs force wide scans; stage-2
models localise the bounds.  This benchmark quantifies the scan-cost /
build-time trade-off that justified the repo's default of branching = 8.
"""

from repro.bench.harness import format_table, time_call
from repro.core import ELSIModelBuilder
from repro.indices import ZMIndex


def test_ablation_rmi_branching(ctx, benchmark):
    points = ctx.dataset("OSM1")
    sample = points[:: max(1, len(points) // ctx.scale.n_point_queries)]

    def run():
        rows = []
        for branching in (1, 2, 4, 8, 16):
            builder = ELSIModelBuilder(ctx.config, method="SP")
            index = ZMIndex(builder=builder, branching=branching)
            _, build_seconds = time_call(index.build, points)
            index.query_stats.reset()
            for p in sample:
                index.point_query(p)
            rows.append(
                {
                    "branching": branching,
                    "build_seconds": build_seconds,
                    "models": index.build_stats.n_models,
                    "avg_scan": index.query_stats.points_scanned / len(sample),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["branching", "build (s)", "models", "avg points scanned / query"],
        [
            [r["branching"], f"{r['build_seconds']:.3f}", r["models"], f"{r['avg_scan']:.0f}"]
            for r in rows
        ],
        title="Ablation: RMI branching (ZM + SP on OSM1)",
    ))

    by = {r["branching"]: r for r in rows}
    # More stage-2 models -> tighter local bounds -> smaller scans.
    assert by[8]["avg_scan"] < by[1]["avg_scan"]
    # ... at a bounded build-time cost (more models to train).
    assert by[8]["build_seconds"] < 20 * by[1]["build_seconds"] + 1.0
