"""Tests for index persistence (save/load round-trips)."""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import PGMBuilder, ZMIndex
from repro.spatial.rect import Rect
from repro.storage.persist import load_zm_index, save_zm_index


@pytest.fixture()
def built_index(osm_points):
    config = ELSIConfig(train_epochs=80)
    return ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)


class TestRoundTrip:
    def test_point_queries_identical(self, built_index, osm_points, tmp_path):
        path = tmp_path / "zm.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        for p in osm_points[::50]:
            assert loaded.point_query(p) == built_index.point_query(p)

    def test_window_queries_identical(self, built_index, osm_points, tmp_path):
        path = tmp_path / "zm.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        window = Rect.centered(np.array([0.5, 0.5]), 0.1)
        a = built_index.window_query(window)
        b = loaded.window_query(window)
        assert len(a) == len(b)

    def test_predictions_bitwise_equal(self, built_index, tmp_path):
        path = tmp_path / "zm.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        keys = built_index.store.keys[::37]
        np.testing.assert_array_equal(
            built_index.model.stage1.predict_positions(keys),
            loaded.model.stage1.predict_positions(keys),
        )
        assert loaded.model.stage1.err_l == built_index.model.stage1.err_l
        assert loaded.model.stage1.err_u == built_index.model.stage1.err_u

    def test_metadata_preserved(self, built_index, tmp_path):
        path = tmp_path / "zm.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        assert loaded.n_points == built_index.n_points
        assert loaded.bits == built_index.bits
        assert loaded.bounds == built_index.bounds
        assert loaded.model.stage1.method_name == "SP"

    def test_two_stage_round_trip(self, osm_points, tmp_path):
        config = ELSIConfig(train_epochs=60)
        index = ZMIndex(
            builder=ELSIModelBuilder(config, method="SP"), branching=4
        ).build(osm_points)
        path = tmp_path / "zm2.npz"
        save_zm_index(index, path)
        loaded = load_zm_index(path)
        assert loaded.model.is_two_stage == index.model.is_two_stage
        for p in osm_points[::100]:
            assert loaded.point_query(p)

    def test_pla_model_round_trip(self, osm_points, tmp_path):
        index = ZMIndex(builder=PGMBuilder(epsilon_positions=32)).build(osm_points)
        path = tmp_path / "zm_pgm.npz"
        save_zm_index(index, path)
        loaded = load_zm_index(path)
        assert loaded.model.stage1.err_l == index.model.stage1.err_l
        for p in osm_points[::100]:
            assert loaded.point_query(p)

    def test_native_inserts_preserved(self, built_index, tmp_path):
        extra = np.array([0.123, 0.456])
        built_index.insert(extra)
        path = tmp_path / "zm3.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        assert loaded.point_query(extra)
        assert loaded.n_points == built_index.n_points


class TestErrors:
    def test_unbuilt_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_zm_index(ZMIndex(), tmp_path / "x.npz")

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, meta=np.frombuffer(b'{"format": "other"}', dtype=np.uint8))
        with pytest.raises(ValueError):
            load_zm_index(path)
