"""End-to-end integration tests: ELSI over every (base index x method),
the headline build-speedup claim, and the update -> rebuild loop.
"""

import time

import numpy as np
import pytest

from repro.core import ELSI, ELSIConfig
from repro.core.build_processor import ELSIModelBuilder
from repro.core.methods.model_reuse import ModelReuseMethod
from repro.data import load_dataset
from repro.indices import LISAIndex, MLIndex, RSMIIndex, ZMIndex
from repro.queries.evaluate import brute_force_window, window_recall
from repro.queries.workload import point_workload, window_workload
from repro.spatial.rect import Rect

INDICES = {"ZM": ZMIndex, "ML": MLIndex, "RSMI": RSMIIndex, "LISA": LISAIndex}
APPLICABLE = {
    "ZM": ("SP", "CL", "MR", "RS", "RL", "OG"),
    "ML": ("SP", "CL", "MR", "RS", "RL", "OG"),
    "RSMI": ("SP", "CL", "MR", "RS", "RL", "OG"),
    "LISA": ("SP", "MR", "RS", "OG"),  # CL/RL inapplicable (Section VII-A)
}


@pytest.fixture(scope="module")
def config():
    return ELSIConfig(train_epochs=120, rl_steps=60)


@pytest.fixture(scope="module")
def points():
    return load_dataset("OSM1", 3_000)


@pytest.mark.parametrize(
    "index_name,method",
    [(i, m) for i, methods in APPLICABLE.items() for m in methods],
)
def test_every_index_method_combination(index_name, method, config, points):
    """Every applicable (base index, build method) pair builds a working
    index: point queries find all points, windows keep high recall."""
    builder = ELSIModelBuilder(config, method=method)
    index = INDICES[index_name](builder=builder).build(points)
    assert all(index.point_query(p) for p in points[::100])
    rng = np.random.default_rng(0)
    recalls = []
    for _ in range(10):
        center = points[rng.integers(len(points))]
        window = Rect.centered(center, 0.05)
        got = index.window_query(window)
        recalls.append(window_recall(got, brute_force_window(points, window)))
    assert np.mean(recalls) > 0.9
    used = index.build_stats.methods_used
    assert used.get(method, 0) >= 1 or method in ("CL", "RL")


def test_elsi_headline_build_speedup(config):
    """The paper's core claim at reproduction scale: ELSI reduces learned
    index build times by an order of magnitude without hurting query
    correctness (Figure 8 / Table II shape)."""
    points = load_dataset("OSM1", 10_000)
    ModelReuseMethod(
        epsilon=config.epsilon,
        hidden_size=config.hidden_size,
        train_epochs=config.train_epochs,
    ).prepare()

    started = time.perf_counter()
    og = ZMIndex(builder=ELSIModelBuilder(config, method="OG")).build(points)
    og_seconds = time.perf_counter() - started

    started = time.perf_counter()
    fast = ZMIndex(builder=ELSIModelBuilder(config, method="MR")).build(points)
    fast_seconds = time.perf_counter() - started

    assert fast_seconds < og_seconds / 3
    # Query efficiency retained: both answer correctly with bounded scans.
    queries = point_workload(points, 200, seed=0)
    assert all(q.run(fast) for q in queries)
    assert all(q.run(og) for q in queries)


def test_window_queries_after_elsi_build(config, points):
    """ZM/ML windows stay exact under ELSI; RSMI/LISA recall stays high."""
    for name, cls in INDICES.items():
        builder = ELSIModelBuilder(config, method="SP")
        index = cls(builder=builder).build(points)
        queries = window_workload(points, 20, 1e-3, seed=1)
        recalls = [
            window_recall(q.run(index), brute_force_window(points, q.window))
            for q in queries
        ]
        threshold = 1.0 if name in ("ZM", "ML") else 0.9
        assert np.mean(recalls) >= threshold, name


def test_full_lifecycle_with_updates(config):
    """Build -> query -> insert skewed data -> rebuild -> query again."""
    points = load_dataset("OSM1", 2_000)
    elsi = ELSI(config)
    index = elsi.build(ZMIndex, points, method="RS")
    processor = elsi.updates(index)

    inserts = load_dataset("Skewed", 600, seed=3)
    for p in inserts:
        processor.insert(p)
    assert processor.n_effective == 2_600

    # Queries see both old and new points before the rebuild.
    assert processor.point_query(points[42])
    assert processor.point_query(inserts[17])

    assert processor.to_rebuild()  # heavy skewed drift
    processor.rebuild()
    assert processor.rebuilds == 1
    assert processor.point_query(points[42])
    assert processor.point_query(inserts[17])

    window = Rect.centered(np.array([0.5, 0.1]), 0.2)
    got = processor.window_query(window)
    truth = brute_force_window(processor.current_points(), window)
    assert window_recall(got, truth) > 0.95


def test_selector_end_to_end(config):
    """Train a selector on a small grid, then let it drive a build."""
    elsi = ELSI(config)
    elsi.train_selector(
        lambda b: ZMIndex(builder=b, branching=1),
        cardinalities=(400, 1_000),
        deltas=(0.0, 0.4, 0.8),
        n_queries=60,
    )
    points = load_dataset("NYC", 2_000)
    index = elsi.build(ZMIndex, points)
    assert index.n_points == 2_000
    assert sum(index.build_stats.methods_used.values()) == index.build_stats.n_models
    # lambda = 0.8 prioritises build time: OG should not be chosen.
    assert "OG" not in index.build_stats.methods_used


def test_multi_model_index_uses_elsi_per_model(config, points):
    """RSMI trains one model per node, each through the ELSI builder
    (the Figure 3 scenario)."""
    builder = ELSIModelBuilder(config, method="SP")
    index = RSMIIndex(builder=builder, leaf_capacity=500).build(points)
    assert index.n_models() >= 3
    assert index.build_stats.methods_used["SP"] == index.n_models()
