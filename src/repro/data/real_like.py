"""Synthetic stand-ins for the paper's four real data sets.

The real traces (OpenStreetMap extracts, TPC-H lineitem columns, NYC taxi
pickups) are not available offline.  Each generator below reproduces the
distributional properties that the paper's experiments actually exercise —
spatial skew, clustering structure, and axis discreteness — so the relative
behaviour of the indices and build methods is preserved (DESIGN.md §1).
"""

from __future__ import annotations

import numpy as np

__all__ = ["nyc_like", "osm_like", "tpch_like"]


def osm_like(n: int, seed: int = 0, n_hubs: int = 40) -> np.ndarray:
    """OpenStreetMap-style points: multi-scale clusters along linear features.

    OSM node density follows settlements and road networks: dense urban
    hubs, elongated corridors between them, and sparse rural noise.  We mix
    (i) Gaussian hubs with Zipf-distributed weights, (ii) points scattered
    along random hub-to-hub segments, and (iii) a thin uniform background.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    hubs = rng.random((n_hubs, 2))
    weights = 1.0 / np.arange(1, n_hubs + 1) ** 1.1
    weights /= weights.sum()

    n_hub_pts = int(n * 0.6)
    n_road_pts = int(n * 0.3)
    n_noise = n - n_hub_pts - n_road_pts

    assignment = rng.choice(n_hubs, size=n_hub_pts, p=weights)
    scales = rng.uniform(0.004, 0.03, size=n_hubs)
    hub_pts = hubs[assignment] + rng.normal(0.0, 1.0, (n_hub_pts, 2)) * scales[
        assignment
    ][:, None]

    # Corridors: sample t in [0,1] along random hub pairs with small jitter.
    a = hubs[rng.choice(n_hubs, size=n_road_pts, p=weights)]
    b = hubs[rng.choice(n_hubs, size=n_road_pts, p=weights)]
    t = rng.random((n_road_pts, 1))
    road_pts = a + t * (b - a) + rng.normal(0.0, 0.002, (n_road_pts, 2))

    noise = rng.random((n_noise, 2))
    pts = np.vstack([hub_pts, road_pts, noise])
    rng.shuffle(pts)
    return np.clip(pts, 0.0, 1.0)


def tpch_like(n: int, seed: int = 0, n_quantities: int = 50, n_days: int = 2526) -> np.ndarray:
    """TPC-H lineitem (quantity, shipdate): an integer lattice distribution.

    Quantity is uniform on 1..50 and shipdate near-uniform over ~7 years of
    days in the benchmark; both axes are *discrete*, so points pile up on a
    lattice — the property that distinguishes TPC-H from the map data in
    Figures 8–14.  Coordinates are normalised to [0, 1].
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    quantity = rng.integers(1, n_quantities + 1, size=n)
    # Shipdate ramps up/down at the date-range edges like the benchmark.
    days = rng.integers(0, n_days, size=n)
    x = (quantity - 1) / max(n_quantities - 1, 1)
    y = days / max(n_days - 1, 1)
    return np.column_stack([x, y]).astype(np.float64)


def nyc_like(n: int, seed: int = 0) -> np.ndarray:
    """NYC yellow-taxi pickups: extreme density skew on a street grid.

    The vast majority of pickups concentrate in Manhattan with a street-grid
    micro-structure; secondary masses sit at the airports, and a light tail
    spreads over the outer boroughs.  This generator reproduces that
    three-scale skew, which is what makes Grid's build slow in Figure 8.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    n_core = int(n * 0.75)
    n_airport = int(n * 0.1)
    n_tail = n - n_core - n_airport

    # Manhattan: a narrow rotated strip with avenue/street quantisation.
    t = rng.random(n_core)  # along the island
    u = rng.normal(0.0, 0.015, n_core)  # across
    # Quantise to a street grid, then jitter within a block.
    t = np.round(t * 200) / 200 + rng.normal(0.0, 0.001, n_core)
    u = np.round(u * 400) / 400 + rng.normal(0.0, 0.0005, n_core)
    angle = np.deg2rad(29.0)  # Manhattan's grid offset from north
    cx, cy = 0.45, 0.55
    x = cx + u * np.cos(angle) - (t - 0.5) * 0.35 * np.sin(angle)
    y = cy + u * np.sin(angle) + (t - 0.5) * 0.35 * np.cos(angle)
    core = np.column_stack([x, y])

    airports = np.array([[0.75, 0.35], [0.85, 0.45]])
    which = rng.integers(0, 2, size=n_airport)
    airport_pts = airports[which] + rng.normal(0.0, 0.01, (n_airport, 2))

    tail = rng.normal([0.5, 0.5], 0.2, (n_tail, 2))
    pts = np.vstack([core, airport_pts, tail])
    rng.shuffle(pts)
    return np.clip(pts, 0.0, 1.0)
