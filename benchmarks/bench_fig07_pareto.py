"""Figure 7 — build-time / query-time Pareto fronts of the build methods.

Per base index (ZM, ML, RSMI, LISA) and method, sweeps the method's
parameter (rho, C, eps, beta, eta) and reports build seconds vs point-query
microseconds.

Paper shapes to hold: SP/MR own the fast-build end; RS/RL reach the
fast-query end at far lower build cost than CL; RSP never beats SP; OG has
the largest build time.
"""

import numpy as np

from repro.bench.experiments import fig07_pareto
from repro.bench.harness import format_table


def test_fig07_pareto(ctx, benchmark):
    rows = benchmark.pedantic(fig07_pareto, args=(ctx,), rounds=1, iterations=1)

    print()
    table = [
        [r["index"], r["method"], r["param"], f"{r['build_seconds']:.3f}", f"{r['query_us']:.1f}"]
        for r in rows
    ]
    print(format_table(
        ["index", "method", "param", "build (s)", "point query (us)"],
        table,
        title="Figure 7: build vs query Pareto (OSM1)",
    ))

    by = lambda index, method: [  # noqa: E731
        r for r in rows if r["index"] == index and r["method"] == method
    ]
    for index_name in ("ZM", "ML", "RSMI"):
        og = by(index_name, "OG")[0]
        sp_fast = min(by(index_name, "SP"), key=lambda r: r["build_seconds"])
        mr_fast = min(by(index_name, "MR"), key=lambda r: r["build_seconds"])
        # ELSI methods build much faster than OG.
        assert sp_fast["build_seconds"] < og["build_seconds"]
        assert mr_fast["build_seconds"] < og["build_seconds"]
        # CL's clustering is the costliest reduction (Table I analysis).
        cl_slow = max(by(index_name, "CL"), key=lambda r: r["build_seconds"])
        assert cl_slow["build_seconds"] > sp_fast["build_seconds"]

    # Query times of reduced-set methods stay within 2x of OG on average.
    for index_name in ("ZM", "ML", "RSMI", "LISA"):
        og_q = by(index_name, "OG")[0]["query_us"]
        reduced = [r["query_us"] for r in rows if r["index"] == index_name and r["method"] != "OG"]
        assert np.median(reduced) < 2.0 * og_q + 5.0
