"""Query value types shared by the workload generators and the harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spatial.rect import Rect

__all__ = ["KNNQuery", "PointQuery", "WindowQuery"]


@dataclass(frozen=True)
class PointQuery:
    """An exact-coordinates membership query."""

    point: tuple[float, ...]

    @property
    def array(self) -> np.ndarray:
        return np.asarray(self.point, dtype=np.float64)

    def run(self, index) -> bool:
        return index.point_query(self.array)


@dataclass(frozen=True)
class WindowQuery:
    """A rectangular range query."""

    window: Rect

    def run(self, index) -> np.ndarray:
        return index.window_query(self.window)


@dataclass(frozen=True)
class KNNQuery:
    """A k-nearest-neighbours query."""

    point: tuple[float, ...]
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    @property
    def array(self) -> np.ndarray:
        return np.asarray(self.point, dtype=np.float64)

    def run(self, index) -> np.ndarray:
        return index.knn_query(self.array, self.k)
