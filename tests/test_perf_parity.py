"""Batch/serial parity properties for every index with a vectorised
``point_queries``, plus the scalar lo-clamp regression (inserts near rank 0)."""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import FloodIndex, LISAIndex, MLIndex, RSMIIndex, ZMIndex

INDEX_CLASSES = {
    cls.name: cls for cls in (ZMIndex, MLIndex, LISAIndex, FloodIndex, RSMIIndex)
}
SUPPORTS_INSERT = {"ZM", "ML", "LISA", "RSMI"}


@pytest.fixture(scope="module")
def built(osm_points):
    config = ELSIConfig(train_epochs=80)
    return {
        name: cls(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)
        for name, cls in INDEX_CLASSES.items()
    }


def _mixed_workload(points, rng):
    """Hits, far misses, and near-misses (indexed coords with one nudged)."""
    near = points[100:150].copy()
    near[:, 1] += 1e-7
    return np.vstack([points[::13], rng.random((60, 2)) * 2.0, near])


@pytest.mark.parametrize("name", sorted(INDEX_CLASSES))
def test_batch_equals_scalar_loop(built, osm_points, name):
    index = built[name]
    batch = _mixed_workload(osm_points, np.random.default_rng(11))
    expected = np.array([index.point_query(p) for p in batch], dtype=bool)
    np.testing.assert_array_equal(index.point_queries(batch), expected)
    # Sanity: the workload actually mixes hits and misses.
    assert expected.any() and not expected.all()


@pytest.mark.parametrize("name", sorted(SUPPORTS_INSERT))
def test_batch_equals_scalar_after_inserts(osm_points, name):
    config = ELSIConfig(train_epochs=80)
    index = INDEX_CLASSES[name](
        builder=ELSIModelBuilder(config, method="SP")
    ).build(osm_points)
    rng = np.random.default_rng(23)
    extra = rng.random((30, 2))
    for p in extra:
        index.insert(p)
    batch = np.vstack([extra, _mixed_workload(osm_points, rng)])
    expected = np.array([index.point_query(p) for p in batch], dtype=bool)
    np.testing.assert_array_equal(index.point_queries(batch), expected)
    assert expected[:30].all()  # inserted points are all found


@pytest.mark.parametrize("name", ["ZM", "ML"])
def test_scalar_lo_clamp_with_inserts_near_rank_zero(osm_points, name):
    """Regression: ``lo -= native_inserts`` used to go negative for keys
    predicted near rank 0, corrupting the points-scanned accounting and
    diverging from the clamped batch path."""
    config = ELSIConfig(train_epochs=80)
    index = INDEX_CLASSES[name](
        builder=ELSIModelBuilder(config, method="SP")
    ).build(osm_points)
    order = np.argsort(index.store.keys, kind="stable")
    smallest = index.store.points[order[:5]]
    for p in smallest + 1e-9:  # land next to the smallest keys
        index.insert(p)

    before = index.query_stats.points_scanned
    for p in smallest:
        assert index.point_query(p)
    scanned = index.query_stats.points_scanned - before
    # A negative `lo` would overstate the scan by up to `inserts` points
    # per query relative to what the store can actually return.
    assert 0 <= scanned <= 5 * len(index.store)
    np.testing.assert_array_equal(
        index.point_queries(smallest),
        np.array([index.point_query(p) for p in smallest], dtype=bool),
    )


def test_batch_stats_accounting(built, osm_points):
    index = built["ZM"]
    index.query_stats.reset()
    batch = osm_points[:64]
    index.point_queries(batch)
    assert index.query_stats.queries == 64
    assert index.query_stats.model_invocations >= 64
    assert index.query_stats.points_scanned > 0
