"""A configurable map-executor for embarrassingly parallel build jobs.

Per-partition model fits (RMI stage-2 leaves, Flood per-column models, the
ELSI error-bound measurement pass) are independent jobs today dispatched
from Python ``for`` loops.  :class:`MapExecutor` gives them one dispatch
point with interchangeable backends:

``serial``
    Plain in-process loop; the reference backend every other backend must
    reproduce bit-for-bit (job functions are pure, so dispatch order
    cannot change results).
``thread``
    A thread pool.  NumPy releases the GIL inside BLAS kernels, so
    training-heavy jobs overlap on multicore hosts.
``process``
    A process pool (fork-based on Linux).  Jobs and results must pickle;
    sidesteps the GIL entirely at the cost of serialisation.
``fused``
    Behaves like ``serial`` for generic :meth:`MapExecutor.map` calls, but
    signals batch-aware callers (``ModelBuilder.build_models``) to train
    all same-architecture models in one vectorised pass
    (:mod:`repro.perf.fused`) — the backend that pays off even on a single
    core, where thread/process parallelism cannot.

Results always come back in input order regardless of backend or chunking,
and chunked dispatch (``chunk_size``) amortises per-job overhead for large
fan-outs.

Backend selection: the ``REPRO_PARALLELISM`` environment variable
(``backend`` or ``backend:workers``, e.g. ``thread:4``) overrides
``ELSIConfig.parallelism``; see :func:`resolve_executor`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["BACKENDS", "ENV_VAR", "MapExecutor", "resolve_executor"]

ENV_VAR = "REPRO_PARALLELISM"
BACKENDS = ("serial", "thread", "process", "fused")

T = TypeVar("T")
R = TypeVar("R")


def _apply_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    """Module-level chunk worker so the process backend can pickle it."""
    return [fn(item) for item in chunk]


class MapExecutor:
    """Deterministic, order-stable ``map`` over independent jobs.

    Parameters
    ----------
    backend:
        One of :data:`BACKENDS`.
    max_workers:
        Pool size for thread/process backends (default ``os.cpu_count()``).
    chunk_size:
        Jobs per dispatched chunk; ``None`` picks ``ceil(len / (4 *
        workers))`` so each worker sees a few chunks (load balancing)
        without per-job dispatch overhead.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "MapExecutor":
        """Parse ``"backend"`` or ``"backend:workers"`` (e.g. ``thread:4``)."""
        name, _, workers = spec.strip().lower().partition(":")
        max_workers = None
        if workers:
            try:
                max_workers = int(workers)
            except ValueError as exc:
                raise ValueError(
                    f"worker count in {spec!r} must be an integer"
                ) from exc
        return cls(backend=name, max_workers=max_workers)

    @property
    def workers(self) -> int:
        """Effective pool size."""
        if self.backend in ("serial", "fused"):
            return 1
        return self.max_workers or os.cpu_count() or 1

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]`` with the configured backend.

        Results are returned in input order for every backend; a job that
        raises propagates its exception to the caller.
        """
        jobs = list(items)
        if not jobs:
            return []
        if self.backend in ("serial", "fused") or len(jobs) == 1 or self.workers == 1:
            return [fn(item) for item in jobs]

        chunks = self._chunked(jobs)
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                chunk_results = list(
                    pool.map(lambda c: _apply_chunk(fn, c), chunks)
                )
        else:  # process
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                chunk_results = list(
                    pool.map(_apply_chunk, [fn] * len(chunks), chunks)
                )
        return [result for chunk in chunk_results for result in chunk]

    def _chunked(self, jobs: list[T]) -> list[list[T]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(jobs) // (4 * self.workers)))
        return [jobs[i : i + size] for i in range(0, len(jobs), size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MapExecutor(backend={self.backend!r}, max_workers={self.max_workers},"
            f" chunk_size={self.chunk_size})"
        )


def resolve_executor(
    executor: "MapExecutor | str | None" = None,
    *,
    default_workers: int | None = None,
) -> MapExecutor:
    """Resolve the executor to use, honouring the environment override.

    Precedence: ``REPRO_PARALLELISM`` environment variable (highest), then
    ``executor`` (a :class:`MapExecutor`, a backend spec string such as
    ``"thread:4"``, or ``None``), then the serial default.  This is how
    ``ELSIConfig.parallelism`` and the env override interact: the config
    value is passed as ``executor`` and loses to the env variable, so a
    deployment can force a backend without touching code.
    """
    spec = os.environ.get(ENV_VAR)
    if spec:
        return MapExecutor.from_spec(spec)
    if isinstance(executor, MapExecutor):
        return executor
    if isinstance(executor, str):
        parsed = MapExecutor.from_spec(executor)
        if parsed.max_workers is None and default_workers is not None:
            parsed.max_workers = default_workers
        return parsed
    return MapExecutor(backend="serial")
