"""Tests for flame graphs (repro.obs.flame) and the obs flame CLI."""

import json
import time

import pytest

from repro.cli import main
from repro.obs.flame import (
    SamplingProfiler,
    folded_stacks,
    render_folded,
    render_svg,
    top_paths,
)
from repro.obs.trace import SpanRecord


def _rec(name, span_id, parent_id, start, duration):
    return SpanRecord(
        name=name,
        span_id=span_id,
        parent_id=parent_id,
        start=start,
        duration=duration,
        attrs={},
        pid=1,
        thread="main",
    )


@pytest.fixture
def synthetic_trace():
    """build(0.10s) -> train(0.06s) -> epoch(0.05s); query(0.02s)."""
    return [
        _rec("build", "a", None, 0.0, 0.10),
        _rec("train", "b", "a", 0.01, 0.06),
        _rec("epoch", "c", "b", 0.02, 0.05),
        _rec("query", "d", None, 0.2, 0.02),
    ]


class TestFoldedStacks:
    def test_self_time_per_path(self, synthetic_trace):
        stacks = folded_stacks(synthetic_trace)
        assert stacks["build"] == pytest.approx(0.04)
        assert stacks["build;train"] == pytest.approx(0.01)
        assert stacks["build;train;epoch"] == pytest.approx(0.05)
        assert stacks["query"] == pytest.approx(0.02)

    def test_values_sum_to_root_totals(self, synthetic_trace):
        stacks = folded_stacks(synthetic_trace)
        assert sum(stacks.values()) == pytest.approx(0.12)

    def test_repeated_paths_merge(self):
        records = [
            _rec("query", "a", None, 0.0, 0.01),
            _rec("query", "b", None, 0.1, 0.03),
        ]
        stacks = folded_stacks(records)
        assert stacks == {"query": pytest.approx(0.04)}

    def test_negative_self_time_clamped(self):
        # Child longer than parent (clock skew): self time clamps at 0.
        records = [
            _rec("outer", "a", None, 0.0, 0.01),
            _rec("inner", "b", "a", 0.0, 0.02),
        ]
        stacks = folded_stacks(records)
        assert stacks["outer"] == 0.0
        assert stacks["outer;inner"] == pytest.approx(0.02)

    def test_render_folded_format(self, synthetic_trace):
        text = render_folded(folded_stacks(synthetic_trace))
        lines = text.splitlines()
        assert lines[0].startswith("build;train;epoch ")  # heaviest first
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert int(value) >= 1

    def test_top_paths(self, synthetic_trace):
        top = top_paths(folded_stacks(synthetic_trace), limit=2)
        assert len(top) == 2
        assert top[0][0] == "build;train;epoch"


class TestSvg:
    def test_contains_frames_and_tooltips(self, synthetic_trace):
        svg = render_svg(folded_stacks(synthetic_trace))
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<rect" in svg
        assert "train" in svg
        assert "<title>" in svg
        assert "%" in svg

    def test_empty_trace_renders(self):
        svg = render_svg({})
        assert svg.startswith("<svg")


class TestCli:
    def test_obs_flame_writes_svg_and_folded(self, synthetic_trace, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        with open(trace, "w") as fh:
            for rec in synthetic_trace:
                fh.write(json.dumps(rec.to_dict()) + "\n")
        svg_path = tmp_path / "flame.svg"
        folded_path = tmp_path / "flame.folded"
        rc = main([
            "obs", "flame", str(trace),
            "--output", str(svg_path),
            "--folded", str(folded_path),
            "--top", "3",
        ])
        assert rc == 0
        assert svg_path.read_text().startswith("<svg")
        assert "build;train;epoch" in folded_path.read_text()
        out = capsys.readouterr().out
        assert "top 3 paths" in out

    def test_obs_flame_missing_trace_fails(self, tmp_path):
        rc = main(["obs", "flame", str(tmp_path / "nope.jsonl")])
        assert rc == 1


def _busy_wait(deadline: float) -> None:
    while time.perf_counter() < deadline:
        sum(i * i for i in range(500))


class TestSamplingProfiler:
    def test_captures_busy_function(self):
        with SamplingProfiler(interval=0.002) as prof:
            _busy_wait(time.perf_counter() + 0.15)
        stacks = prof.stacks()
        assert prof.samples > 0
        assert any("_busy_wait" in path for path in stacks)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_double_start_rejected(self):
        prof = SamplingProfiler(interval=0.01).start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()
        prof.stop()  # idempotent
