"""Experiment infrastructure: scales, timing and paper-style tables.

The paper's experiments run on 10^8-point data sets; this harness scales
every experiment through an :class:`ExperimentScale`, selectable with the
``REPRO_SCALE`` environment variable (``smoke`` / ``default`` / ``large``)
so CI smoke runs and fuller reproductions share one code path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ExperimentScale",
    "format_table",
    "measure_query_seconds",
    "time_call",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that scale every experiment.

    Attributes
    ----------
    n:
        Data set cardinality (the paper: 1e8+).
    n_point_queries / n_window_queries / n_knn_queries:
        Workload sizes (the paper: all points / 1 000 / 1 000).
    selector_cardinalities / selector_deltas:
        The (10^l..10^u) × dist grid for scorer training (Section VII-B2).
    train_epochs:
        FFN epochs for index models (the paper: 500).
    """

    name: str
    n: int
    n_point_queries: int
    n_window_queries: int
    n_knn_queries: int
    k: int
    selector_cardinalities: tuple[int, ...]
    selector_deltas: tuple[float, ...]
    train_epochs: int
    rl_steps: int

    @staticmethod
    def smoke() -> "ExperimentScale":
        """Seconds-scale runs for CI."""
        return ExperimentScale(
            name="smoke",
            n=2_000,
            n_point_queries=200,
            n_window_queries=50,
            n_knn_queries=20,
            k=25,
            selector_cardinalities=(500, 1_000),
            selector_deltas=(0.0, 0.4, 0.8),
            train_epochs=150,
            rl_steps=60,
        )

    @staticmethod
    def default() -> "ExperimentScale":
        """Minutes-scale runs; the benchmark suite's default."""
        return ExperimentScale(
            name="default",
            n=20_000,
            n_point_queries=500,
            n_window_queries=200,
            n_knn_queries=50,
            k=25,
            selector_cardinalities=(500, 1_000, 2_000, 5_000, 10_000),
            selector_deltas=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
            train_epochs=300,
            rl_steps=150,
        )

    @staticmethod
    def large() -> "ExperimentScale":
        """Closer-to-paper runs (hour scale on a laptop)."""
        return ExperimentScale(
            name="large",
            n=100_000,
            n_point_queries=2_000,
            n_window_queries=1_000,
            n_knn_queries=200,
            k=25,
            selector_cardinalities=(1_000, 3_000, 10_000, 30_000, 100_000),
            selector_deltas=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
            train_epochs=500,
            rl_steps=300,
        )

    @staticmethod
    def from_env(default: str = "smoke") -> "ExperimentScale":
        """Scale selected by the ``REPRO_SCALE`` environment variable."""
        name = os.environ.get("REPRO_SCALE", default).lower()
        presets = {
            "smoke": ExperimentScale.smoke,
            "default": ExperimentScale.default,
            "large": ExperimentScale.large,
        }
        if name not in presets:
            raise ValueError(f"REPRO_SCALE must be one of {sorted(presets)}, got {name!r}")
        return presets[name]()


def time_call(fn, *args, **kwargs):
    """(result, elapsed_seconds) of one call."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def measure_query_seconds(index, queries) -> float:
    """Average seconds per query over a workload list."""
    if not queries:
        raise ValueError("need at least one query")
    started = time.perf_counter()
    for query in queries:
        query.run(index)
    return (time.perf_counter() - started) / len(queries)


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """A fixed-width text table in the style of the paper's tables."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    return str(value)
