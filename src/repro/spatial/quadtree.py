"""A 2^d-ary space-partitioning tree (quadtree when d = 2, octree when d = 3).

This is the partitioning substrate of the RS build method (Algorithm 2):
each cell splits into ``2**d`` equal children at its midpoint until no cell
holds more than ``max_points`` points.  Leaves keep the *indices* of their
points into the original array so callers can relate partitions back to
mapped keys, which is exactly what RS's median-in-mapped-space selection
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.spatial.rect import Rect

__all__ = ["QuadTree", "QuadTreeNode"]


@dataclass
class QuadTreeNode:
    """One cell of the partition; internal nodes have ``children``."""

    bounds: Rect
    depth: int
    point_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    children: list["QuadTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def size(self) -> int:
        """Number of points in this cell (0 for internal nodes)."""
        return len(self.point_indices)


class QuadTree:
    """Recursive midpoint partitioning of ``points`` within ``bounds``.

    Parameters
    ----------
    points:
        (n, d) array of coordinates.
    max_points:
        The β of Algorithm 2 — leaves hold at most this many points.
    bounds:
        Partitioned space; defaults to the bounding box of ``points``.
    max_depth:
        Hard recursion cap so duplicate points cannot cause unbounded
        splitting; a leaf at ``max_depth`` may exceed ``max_points``.
    """

    def __init__(
        self,
        points: np.ndarray,
        max_points: int,
        bounds: Rect | None = None,
        max_depth: int = 24,
    ) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError(f"expected an (n, d) array, got shape {pts.shape}")
        if max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {max_points}")
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        self.points = pts
        self.max_points = max_points
        self.max_depth = max_depth
        if bounds is None:
            if len(pts) == 0:
                bounds = Rect.unit(pts.shape[1] if pts.shape[1] else 2)
            else:
                bounds = Rect.bounding(pts)
        self.bounds = bounds
        self.root = self._build(np.arange(len(pts), dtype=np.int64), bounds, depth=0)

    def _build(self, indices: np.ndarray, bounds: Rect, depth: int) -> QuadTreeNode:
        node = QuadTreeNode(bounds=bounds, depth=depth)
        if len(indices) <= self.max_points or depth >= self.max_depth:
            node.point_indices = indices
            return node
        mid = bounds.center
        pts = self.points[indices]
        # Child code: bit `dim` set means the upper half along `dim`,
        # matching Rect.split_midpoint ordering.
        codes = np.zeros(len(indices), dtype=np.int64)
        for dim in range(bounds.ndim):
            codes |= (pts[:, dim] >= mid[dim]).astype(np.int64) << dim
        child_bounds = bounds.split_midpoint()
        for code, cb in enumerate(child_bounds):
            node.children.append(self._build(indices[codes == code], cb, depth + 1))
        return node

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def leaves(self, include_empty: bool = False) -> list[QuadTreeNode]:
        """All leaf cells, depth-first; empty leaves skipped by default."""
        out: list[QuadTreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if include_empty or node.size > 0:
                    out.append(node)
            else:
                stack.extend(reversed(node.children))
        return out

    def depth(self) -> int:
        """Maximum leaf depth."""
        best = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                stack.extend(node.children)
        return best

    def locate(self, point: np.ndarray) -> QuadTreeNode:
        """The leaf cell whose bounds contain ``point``.

        Points outside the tree bounds are clamped to the nearest cell
        (descending by midpoint comparisons never leaves the tree).
        """
        p = np.asarray(point, dtype=np.float64)
        node = self.root
        while not node.is_leaf:
            mid = node.bounds.center
            code = 0
            for dim in range(node.bounds.ndim):
                if p[dim] >= mid[dim]:
                    code |= 1 << dim
            node = node.children[code]
        return node

    def count_nodes(self) -> tuple[int, int]:
        """(internal, leaf) node counts."""
        internal = 0
        leaf = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaf += 1
            else:
                internal += 1
                stack.extend(node.children)
        return internal, leaf
