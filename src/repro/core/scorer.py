"""The ELSI method scorer (Section IV-B1, Figure 4).

Two FFNs estimate, for a (method, data set) pair, the *build-cost score*
``C_B`` and the *query-cost score* ``C_Q`` — the predicted speedups of the
method relative to the base index's original (OG) build, per the paper's
ground-truth construction ("we record the speedups of index building and
querying relative to those of the original methods").  The combined score
is Equation 2::

    C(P, D) = lam * C_B(P, D) + (1 - lam) * w_q * C_Q(P, D)

and the method with the *maximum* score is selected.

Inputs (Figure 4, component 1): a one-hot method embedding, the data set
cardinality (log10, scaled), and its distribution summarised as
``dist(D_U, D)`` — the KS distance from a uniform set of the same size.

Score normalisation.  Build speedups span orders of magnitude while query
speedups cluster around 1.0; scoring raw speedups would let the build term
drown the query term at any λ.  Scores are therefore normalised to
comparable ranges: ``C_B = log2(build speedup) / 8`` (clipped to [0, 1.5])
and ``C_Q =`` the raw query speedup.  This reproduces the paper's observed
selection behaviour: OG/RS/RL win for small λ, MR for λ ≥ 0.8 (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig, train_regressor

__all__ = ["MethodScorer", "ScorerSample", "build_score", "query_score"]


def build_score(build_speedup: float) -> float:
    """Normalised build-cost score from a raw build speedup."""
    if build_speedup <= 0:
        raise ValueError(f"speedups must be positive, got {build_speedup}")
    return float(np.clip(np.log2(build_speedup) / 8.0, 0.0, 1.5))


def query_score(query_speedup: float) -> float:
    """Normalised query-cost score from a raw query speedup."""
    if query_speedup <= 0:
        raise ValueError(f"speedups must be positive, got {query_speedup}")
    return float(np.clip(query_speedup, 0.0, 2.0))


@dataclass(frozen=True)
class ScorerSample:
    """One ground-truth record: a method's measured speedups on a data set."""

    method: str
    n: int
    dist_u: float
    build_speedup: float
    query_speedup: float


class MethodScorer:
    """The two-FFN cost estimator with Equation 2 scoring."""

    def __init__(
        self,
        method_names: tuple[str, ...] = ("SP", "CL", "MR", "RS", "RL", "OG"),
        hidden: int = 32,
        seed: int = 0,
    ) -> None:
        if not method_names:
            raise ValueError("need at least one method")
        self.method_names = tuple(method_names)
        self._index = {name: i for i, name in enumerate(self.method_names)}
        n_features = len(self.method_names) + 2
        self.build_net = FFN([n_features, hidden, 1], seed=seed)
        self.query_net = FFN([n_features, hidden, 1], seed=seed + 1)
        self._fitted = False

    # ------------------------------------------------------------------
    def features(self, method: str, n: int, dist_u: float) -> np.ndarray:
        """Figure 4 component 1: one-hot method + cardinality + distribution."""
        if method not in self._index:
            raise ValueError(f"unknown method {method!r}; known: {self.method_names}")
        if n < 1:
            raise ValueError(f"cardinality must be >= 1, got {n}")
        row = np.zeros(len(self.method_names) + 2)
        row[self._index[method]] = 1.0
        row[-2] = np.log10(n) / 8.0
        row[-1] = float(dist_u)
        return row

    def fit(
        self, samples: list[ScorerSample], epochs: int = 1500, seed: int = 0
    ) -> None:
        """Train both cost FFNs on measured speedup records."""
        if not samples:
            raise ValueError("cannot fit the scorer without samples")
        x = np.stack([self.features(s.method, s.n, s.dist_u) for s in samples])
        y_build = np.array([build_score(s.build_speedup) for s in samples])
        y_query = np.array([query_score(s.query_speedup) for s in samples])
        config = TrainConfig(epochs=epochs, seed=seed, patience=200)
        train_regressor(self.build_net, x, y_build, config)
        train_regressor(self.query_net, x, y_query, config)
        self._fitted = True

    # ------------------------------------------------------------------
    def predict_scores(
        self, n: int, dist_u: float, methods: list[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(C_B, C_Q) per candidate method (Figure 4 component 3)."""
        if not self._fitted:
            raise RuntimeError("scorer is not fitted; call fit() first")
        x = np.stack([self.features(m, n, dist_u) for m in methods])
        return self.build_net.predict(x), self.query_net.predict(x)

    def combined_scores(
        self,
        n: int,
        dist_u: float,
        methods: list[str],
        lam: float,
        w_q: float = 1.0,
    ) -> np.ndarray:
        """Equation 2 for every candidate method."""
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must lie in [0, 1], got {lam}")
        c_build, c_query = self.predict_scores(n, dist_u, methods)
        return lam * c_build + (1.0 - lam) * w_q * c_query

    def select(
        self,
        n: int,
        dist_u: float,
        methods: list[str],
        lam: float,
        w_q: float = 1.0,
    ) -> str:
        """The maximum-score method among the applicable candidates."""
        if not methods:
            raise ValueError("need at least one candidate method")
        scores = self.combined_scores(n, dist_u, methods, lam, w_q)
        return methods[int(np.argmax(scores))]
