"""Figure 9 — build time vs lambda.

The -F indices' build times as lambda sweeps 0 -> 1 on Skewed and OSM1,
with RR* and RSMI (no ELSI) reference lines.

Paper shapes to hold: build times fall (weakly) as lambda grows; MR
dominates the choices at lambda >= 0.8; query-optimised methods (RS, RL,
OG) appear at small lambda; -F builds stay far below RSMI-OG.
"""

import numpy as np

from repro.bench.experiments import fig09_build_vs_lambda
from repro.bench.harness import format_table


def test_fig09_build_vs_lambda(ctx, benchmark):
    result = benchmark.pedantic(
        fig09_build_vs_lambda, args=(ctx,), rounds=1, iterations=1
    )

    print()
    for name, data in result.items():
        lams = [lam for lam, _ in data["series"]["ML-F"]]
        rows = [
            [label] + [f"{seconds:.3f}" for _l, seconds in series]
            for label, series in data["series"].items()
        ]
        rows.append(["RR* (ref)"] + [f"{data['RR*']:.3f}"] * len(lams))
        rows.append(["RSMI (ref)"] + [f"{data['RSMI']:.3f}"] * len(lams))
        print(format_table(
            ["index"] + [f"lam={l}" for l in lams], rows,
            title=f"Figure 9: build time (s) vs lambda on {name}",
        ))
        print(f"methods chosen per lambda: "
              f"{ {l: m for l, m in data['methods_chosen'].items()} }")

    for name, data in result.items():
        for label, series in data["series"].items():
            seconds = [s for _l, s in series]
            # Large-lambda builds are no slower than small-lambda builds.
            assert np.mean(seconds[-2:]) <= np.mean(seconds[:2]) * 1.5, (name, label)
            # Large-lambda builds beat the *same index's* OG build.
            og = data["OG"][label.removesuffix("-F")]
            assert seconds[-1] < og, (name, label, seconds[-1], og)
        # MR is chosen at lambda >= 0.8 (the paper's observation).
        chosen_at_high = data["methods_chosen"][1.0]
        assert chosen_at_high.get("MR", 0) >= 1, (name, chosen_at_high)
