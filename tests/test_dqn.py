"""Unit tests for the replay buffer and DQN agent."""

import numpy as np
import pytest

from repro.ml.dqn import DQNAgent, DQNConfig, ReplayBuffer, Transition


def _transition(i: int, size: int = 4) -> Transition:
    state = np.zeros(size)
    state[i % size] = 1.0
    return Transition(state=state, action=i % size, reward=float(i), next_state=state)


class TestReplayBuffer:
    def test_push_and_len(self):
        buf = ReplayBuffer(capacity=10)
        for i in range(5):
            buf.push(_transition(i))
        assert len(buf) == 5

    def test_capacity_eviction(self):
        buf = ReplayBuffer(capacity=3)
        for i in range(7):
            buf.push(_transition(i))
        assert len(buf) == 3
        rewards = {t.reward for t in buf.sample_recent(3)}
        assert rewards == {4.0, 5.0, 6.0}

    def test_sample_recent_order(self):
        buf = ReplayBuffer(capacity=5)
        for i in range(5):
            buf.push(_transition(i))
        recent = buf.sample_recent(3)
        assert [t.reward for t in recent] == [2.0, 3.0, 4.0]

    def test_sample_recent_wraparound(self):
        buf = ReplayBuffer(capacity=4)
        for i in range(6):
            buf.push(_transition(i))
        recent = buf.sample_recent(2)
        assert [t.reward for t in recent] == [4.0, 5.0]

    def test_uniform_sample_no_replacement(self):
        buf = ReplayBuffer(capacity=10, seed=0)
        for i in range(10):
            buf.push(_transition(i))
        sample = buf.sample(10)
        assert len({t.reward for t in sample}) == 10

    def test_sample_from_empty(self):
        assert ReplayBuffer().sample(5) == []
        assert ReplayBuffer().sample_recent(5) == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)


class TestDQNAgent:
    def test_action_in_range(self):
        agent = DQNAgent(state_size=6, n_actions=6, seed=0)
        for _ in range(50):
            a = agent.select_action(np.ones(6))
            assert 0 <= a < 6

    def test_epsilon_decays(self):
        agent = DQNAgent(4, 4, DQNConfig(epsilon=0.5, epsilon_decay=0.9))
        start = agent.epsilon
        for i in range(30):
            agent.observe(_transition(i))
        assert agent.epsilon < start
        assert agent.epsilon >= agent.config.epsilon_min

    def test_trains_on_schedule(self):
        agent = DQNAgent(4, 4, DQNConfig(train_every=5))
        losses = [agent.observe(_transition(i)) for i in range(10)]
        # Losses returned exactly at steps 5 and 10.
        trained = [i for i, loss in enumerate(losses) if loss is not None]
        assert trained == [4, 9]

    def test_learns_to_prefer_rewarding_action(self):
        # Action 0 always yields reward 1, others 0: Q(s, 0) should win.
        agent = DQNAgent(
            2,
            2,
            DQNConfig(epsilon=1.0, epsilon_decay=0.95, epsilon_min=0.0, train_every=2),
            seed=0,
        )
        state = np.array([1.0, 0.0])
        for _ in range(300):
            action = agent.select_action(state)
            reward = 1.0 if action == 0 else 0.0
            agent.observe(Transition(state, action, reward, state))
        q = agent.q_network.forward(state[None, :])[0]
        assert q[0] > q[1]

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            DQNAgent(0, 2)
        with pytest.raises(ValueError):
            DQNAgent(2, 0)
