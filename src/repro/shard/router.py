"""Scatter-gather routing over the shard fleet.

The :class:`ShardRouter` is the client-facing face of the sharded tier:
it takes whole query batches, splits them along the shard map's key
ranges, fans the sub-batches to the owning workers concurrently, and
reassembles the answers in the caller's order.

Routing per query kind
----------------------
- **point batches** — each row goes to exactly the shard owning its
  curve code; one ``point_batch`` sub-request per involved shard.
- **window batches** — each window goes to every shard overlapping its
  corner-code interval (all shards under a Hilbert map); per-window
  results are the concatenation of the per-shard results in shard order.
  Note the row order within a window's result therefore differs from a
  single unsharded index's scan order — the *multiset* of points is
  identical (tests compare canonicalised forms).
- **kNN batches** — two-round scatter: round one asks each query's home
  shard for its k nearest; the kth distance bounds a ball, and round two
  queries only the other shards whose key range intersects the ball's
  bounding-rect interval (no such shard can hold anything closer than
  the current kth candidate).  The global answer is the top k of the
  union, ranked by distance with coordinates as the deterministic
  tie-break.

Failure handling (the PR 7 vocabulary, per shard)
-------------------------------------------------
- ``ServerOverloaded`` → exponential-backoff retry against the same
  shard, up to ``RouterConfig.max_retries``.
- dead worker (``ShardUnavailable``) → for *queries* the router respawns
  the shard (``from_snapshot(..., wal=True)`` recovery from its own
  directory) and retries — queries are idempotent; for *updates* the
  error surfaces: an acknowledged update is applied exactly once, and an
  unacknowledged one is reported, never silently retried across a crash
  boundary.
- wedged worker (``ShardTimeout``) → the handle poisons itself (the
  stale in-flight reply must never reach a later request), so the
  router treats it exactly like a death: idempotent queries respawn the
  shard (killing the wedged process) and retry; a timed-out *update*
  surfaces — its outcome is unknown, so it is never resent.
- ``ServerReadOnly`` → surfaces on single updates;
  :meth:`ShardRouter.apply_updates` instead degrades partially — healthy
  shards keep absorbing their updates, the read-only shard's rejections
  are itemised next to a fleet health summary.

Observability: :meth:`ShardRouter.stats_snapshot` merges every worker's
``stats_snapshot()`` export and the router's own counters into one view
via :meth:`MetricsRegistry.merge` — counters sum and histogram buckets
add, so fleet-wide percentiles are computed over the union of all
samples.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.serve.errors import ServerOverloaded, ServerReadOnly
from repro.shard.errors import ShardTimeout, ShardUnavailable
from repro.shard.handle import ShardHandle
from repro.shard.shardmap import ShardMap

__all__ = ["RouterConfig", "ShardRouter"]


@dataclass(frozen=True)
class RouterConfig:
    """Scatter-gather and failure-handling knobs.

    Attributes
    ----------
    request_timeout:
        Per-shard deadline for one sub-request.
    max_retries:
        Retry budget per sub-request (overload backoff and post-respawn
        retries both draw from it).
    retry_base_delay / retry_max_delay:
        Exponential-backoff window for ``ServerOverloaded`` retries.
    auto_respawn:
        Whether a dead shard is recovered (snapshots + WAL) and retried
        transparently for idempotent queries.  Off, queries raise
        :class:`~repro.shard.errors.ShardUnavailable` like updates do.
    """

    request_timeout: float = 60.0
    max_retries: int = 3
    retry_base_delay: float = 0.01
    retry_max_delay: float = 0.5
    auto_respawn: bool = True

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_base_delay < 0 or self.retry_max_delay < self.retry_base_delay:
            raise ValueError(
                "need 0 <= retry_base_delay <= retry_max_delay, got "
                f"{self.retry_base_delay}/{self.retry_max_delay}"
            )


class ShardRouter:
    """Fan query batches out to shard workers; fold the answers back."""

    def __init__(
        self,
        shard_map: ShardMap,
        handles: "list[ShardHandle]",
        config: RouterConfig | None = None,
    ) -> None:
        if shard_map.n_shards != len(handles):
            raise ValueError(
                f"shard map has {shard_map.n_shards} shards but "
                f"{len(handles)} handles were provided"
            )
        self.shard_map = shard_map
        self.handles = list(handles)
        self.config = config or RouterConfig()
        self.registry = MetricsRegistry()
        self._closed = False
        # One respawn lock per shard: concurrent scatter threads that hit
        # the same dead worker must not both restart it.
        self._respawn_locks = [threading.Lock() for _ in handles]
        self._pool = ThreadPoolExecutor(
            max_workers=max(len(handles), 1), thread_name_prefix="shard-scatter"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        for handle in self.handles:
            handle.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One sub-request, with the failure vocabulary applied
    # ------------------------------------------------------------------
    def _call(self, shard_id: int, command: str, *payload, idempotent: bool):
        cfg = self.config
        handle = self.handles[shard_id]
        attempt = 0
        while True:
            try:
                return handle.request(
                    command, *payload, timeout=cfg.request_timeout
                )
            except ServerOverloaded:
                self.registry.counter(
                    "router.retries", shard=shard_id, reason="overloaded"
                ).inc()
                attempt += 1
                if attempt > cfg.max_retries:
                    raise
                time.sleep(
                    min(
                        cfg.retry_base_delay * (2 ** (attempt - 1)),
                        cfg.retry_max_delay,
                    )
                )
            except ShardUnavailable:
                self.registry.counter("router.shard_deaths", shard=shard_id).inc()
                if not (idempotent and cfg.auto_respawn):
                    raise
                attempt += 1
                if attempt > cfg.max_retries:
                    raise
                self._ensure_alive(shard_id)
            except ShardTimeout:
                # The handle poisoned itself (alive() is now False): the
                # wedged worker must be killed and respawned before the
                # shard can answer again.
                self.registry.counter(
                    "router.shard_timeouts", shard=shard_id
                ).inc()
                if not (idempotent and cfg.auto_respawn):
                    raise
                attempt += 1
                if attempt > cfg.max_retries:
                    raise
                self._ensure_alive(shard_id)

    def _ensure_alive(self, shard_id: int) -> None:
        """Respawn a dead shard exactly once per death, however many
        scatter threads observe it."""
        handle = self.handles[shard_id]
        with self._respawn_locks[shard_id]:
            if handle.alive():
                return
            handle.respawn()
            self.registry.counter("router.respawns", shard=shard_id).inc()

    def _scatter(self, calls: "dict[int, tuple]", idempotent: bool) -> dict:
        """Run ``{shard_id: (command, *payload)}`` concurrently; returns
        ``{shard_id: result}``.  Any failure propagates after all
        in-flight sub-requests finish."""
        if not calls:
            return {}
        if len(calls) == 1:
            ((sid, call),) = calls.items()
            return {sid: self._call(sid, *call, idempotent=idempotent)}
        futures = {
            sid: self._pool.submit(self._call, sid, *call, idempotent=idempotent)
            for sid, call in calls.items()
        }
        results, first_error = {}, None
        for sid, future in futures.items():
            try:
                results[sid] = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                first_error = first_error or exc
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def point_queries(self, points: np.ndarray) -> np.ndarray:
        """Batch membership: each row answered by its owning shard."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        owners = self.shard_map.shard_of_points(pts)
        calls = {
            int(sid): ("point_batch", pts[owners == sid])
            for sid in np.unique(owners)
        }
        self.registry.counter("router.queries", kind="point").inc(len(pts))
        replies = self._scatter(calls, idempotent=True)
        out = np.zeros(len(pts), dtype=bool)
        for sid, hits in replies.items():
            out[owners == sid] = np.asarray(hits, dtype=bool)
        return out

    def window_queries(self, windows: "list") -> "list[np.ndarray]":
        """Batch windows: each split across its range-overlapping shards."""
        if not windows:
            return []
        per_shard: dict[int, list[int]] = {}
        for i, window in enumerate(windows):
            for sid in self.shard_map.shards_for_window(window):
                per_shard.setdefault(sid, []).append(i)
        calls = {
            sid: ("window_batch", [windows[i] for i in members])
            for sid, members in per_shard.items()
        }
        self.registry.counter("router.queries", kind="window").inc(len(windows))
        replies = self._scatter(calls, idempotent=True)
        d = self.shard_map.bounds.ndim
        parts: list[list[np.ndarray]] = [[] for _ in windows]
        for sid in sorted(replies):  # shard order => deterministic output
            for i, result in zip(per_shard[sid], replies[sid]):
                if len(result):
                    parts[i].append(np.asarray(result, dtype=np.float64))
        return [
            np.vstack(p) if p else np.empty((0, d), dtype=np.float64)
            for p in parts
        ]

    def knn_queries(self, points: np.ndarray, k: int) -> "list[np.ndarray]":
        """Batch kNN: home-shard round, then radius-pruned widening."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return []
        self.registry.counter("router.queries", kind="knn").inc(len(pts))
        owners = self.shard_map.shard_of_points(pts)
        calls = {
            int(sid): ("knn_batch", pts[owners == sid], k)
            for sid in np.unique(owners)
        }
        replies = self._scatter(calls, idempotent=True)
        candidates: list[list[np.ndarray]] = [[] for _ in pts]
        for sid, results in replies.items():
            for i, result in zip(np.flatnonzero(owners == sid), results):
                candidates[i].append(np.asarray(result, dtype=np.float64))
        if self.n_shards > 1:
            # Round two: shards whose range intersects the ball of the
            # kth candidate distance (everything, when round one came up
            # short of k — the radius is unbounded then).
            per_shard: dict[int, list[int]] = {}
            for i, q in enumerate(pts):
                radius = _kth_distance(q, candidates[i], k)
                for sid in self.shard_map.shards_for_ball(q, radius):
                    if sid != owners[i]:
                        per_shard.setdefault(int(sid), []).append(i)
            if per_shard:
                self.registry.counter("router.knn_round2").inc(
                    sum(len(v) for v in per_shard.values())
                )
                calls = {
                    sid: ("knn_batch", pts[members], k)
                    for sid, members in per_shard.items()
                }
                replies = self._scatter(calls, idempotent=True)
                for sid, results in replies.items():
                    for i, result in zip(per_shard[sid], results):
                        candidates[i].append(
                            np.asarray(result, dtype=np.float64)
                        )
        return [
            _top_k(q, cands, k, self.shard_map.bounds.ndim)
            for q, cands in zip(pts, candidates)
        ]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> None:
        """Route one insert to its owning shard (at-most-once)."""
        self._update("insert", point)

    def delete(self, point: np.ndarray) -> bool:
        """Route one delete to its owning shard (at-most-once)."""
        return self._update("delete", point)

    def _update(self, op: str, point: np.ndarray):
        pt = np.asarray(point, dtype=np.float64)
        sid = int(self.shard_map.shard_of_points(pt[None, :])[0])
        # A dead worker noticed *before* anything is sent is safe to
        # recover through — nothing is in flight, so routing the update to
        # the respawned shard cannot double-apply.  Only death mid-request
        # (outcome unknown) surfaces to the caller.
        if self.config.auto_respawn and not self.handles[sid].alive():
            self._ensure_alive(sid)
        try:
            result = self._call(sid, op, pt, idempotent=False)
        except ServerReadOnly:
            self.registry.counter(
                "router.read_only_rejections", shard=sid
            ).inc()
            raise
        self.registry.counter("router.updates", op=op).inc()
        return result

    def apply_updates(self, ops: "list[tuple[str, np.ndarray]]") -> dict:
        """Apply ``(op, point)`` updates, degrading partially.

        Healthy shards absorb their updates; a shard that is read-only
        (or down) rejects its share without failing the rest.  The return
        value itemises what happened and carries a fleet health summary:
        ``{"applied": n, "rejected": [{"index", "op", "shard", "error"},
        ...], "health": ...}``.
        """
        applied, rejected = 0, []
        for i, (op, point) in enumerate(ops):
            try:
                self._update(op, point)
                applied += 1
            except (ServerReadOnly, ShardUnavailable, ShardTimeout) as exc:
                shard = getattr(exc, "shard_id", None)
                if shard is None:
                    shard = int(
                        self.shard_map.shard_of_points(
                            np.asarray(point, dtype=np.float64)[None, :]
                        )[0]
                    )
                rejected.append(
                    {
                        "index": i,
                        "op": op,
                        "shard": shard,
                        "error": type(exc).__name__,
                    }
                )
        return {
            "applied": applied,
            "rejected": rejected,
            "health": self.health_summary(),
        }

    # ------------------------------------------------------------------
    # Health and metrics
    # ------------------------------------------------------------------
    def health_summary(self) -> dict:
        """Per-shard health plus a fleet verdict.

        ``healthy`` — every shard healthy; ``degraded`` — at least one
        shard degraded/read-only/down but the fleet still answers;
        ``down`` — every shard unreachable.
        """
        shards = {}
        for handle in self.handles:
            sid = handle.shard_id
            try:
                shards[sid] = self._call(sid, "status", idempotent=False)
            except (ShardUnavailable, ShardTimeout) as exc:
                shards[sid] = {"health": "down", "error": type(exc).__name__}
        states = [s["health"] for s in shards.values()]
        if all(state == "down" for state in states):
            overall = "down"
        elif all(state == "healthy" for state in states):
            overall = "healthy"
        else:
            overall = "degraded"
        return {"overall": overall, "shards": shards}

    def stats_snapshot(self) -> dict:
        """One fleet-wide metrics export: every live shard's
        ``stats_snapshot()`` merged (counters summed, histogram buckets
        added, gauges by freshest stamp) with the router's own counters.
        Dead or wedged shards are skipped and counted on
        ``router.stats_unreachable``."""
        merged = MetricsRegistry()
        for handle in self.handles:
            try:
                merged.merge(
                    self._call(handle.shard_id, "stats", idempotent=False)
                )
            except (ShardUnavailable, ShardTimeout):
                self.registry.counter(
                    "router.stats_unreachable", shard=handle.shard_id
                ).inc()
        # The router's own counters merge last so this very snapshot
        # already reflects any shard found unreachable above.
        merged.merge(self.registry.export())
        return merged.export()


# ----------------------------------------------------------------------
# kNN merge helpers
# ----------------------------------------------------------------------
def _kth_distance(q: np.ndarray, candidate_sets: "list[np.ndarray]", k: int) -> float:
    """Distance of the kth-best candidate so far (inf when short of k)."""
    stacked = [c for c in candidate_sets if len(c)]
    if not stacked:
        return np.inf
    merged = np.vstack(stacked)
    if len(merged) < k:
        return np.inf
    diff = merged - q
    dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    return float(np.partition(dist, k - 1)[k - 1])


def _top_k(q: np.ndarray, candidate_sets: "list[np.ndarray]", k: int, d: int):
    """Global top-k of the candidate union, ranked by distance with
    coordinates as the deterministic tie-break (shard arrival order must
    never leak into the result)."""
    stacked = [c for c in candidate_sets if len(c)]
    if not stacked:
        return np.empty((0, d), dtype=np.float64)
    merged = np.vstack(stacked)
    diff = merged - q
    dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    order = np.lexsort(tuple(merged.T[::-1]) + (dist,))
    return merged[order[: min(k, len(order))]]
