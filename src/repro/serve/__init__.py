"""The serving subsystem: micro-batched concurrent query serving.

Built indices answer requests through an :class:`IndexServer`, which
coalesces queued point/window/kNN requests into micro-batches and runs
them down the vectorised batch paths; rebuilds happen in a background
worker and swap in atomically behind a generation pointer; snapshots
persist generations through :mod:`repro.storage.persist`, and a
:class:`WriteAheadLog` makes acknowledged updates durable across crashes
(see docs/serving.md, "Durability and failure modes").
"""

from repro.serve.driver import (
    DriverResult,
    ServeWorkload,
    run_baseline,
    run_closed_loop,
)
from repro.serve.errors import (
    RebuildFailed,
    RequestTimeout,
    ServerClosed,
    ServerOverloaded,
    ServerReadOnly,
    SnapshotFailed,
    WALCorruption,
)
from repro.serve.requests import (
    KNN,
    KNN_BATCH,
    POINT,
    POINT_BATCH,
    WINDOW,
    WINDOW_BATCH,
    Reply,
    Request,
)
from repro.serve.server import (
    DEGRADED,
    HEALTHY,
    READ_ONLY,
    Generation,
    IndexServer,
    ServeConfig,
)
from repro.serve.snapshots import SnapshotManager
from repro.serve.stats import LatencyHistogram, ServerStats
from repro.serve.wal import FSYNC_POLICIES, WALRecord, WriteAheadLog

__all__ = [
    "DEGRADED",
    "DriverResult",
    "FSYNC_POLICIES",
    "Generation",
    "HEALTHY",
    "IndexServer",
    "KNN",
    "KNN_BATCH",
    "LatencyHistogram",
    "POINT",
    "POINT_BATCH",
    "READ_ONLY",
    "RebuildFailed",
    "Reply",
    "Request",
    "RequestTimeout",
    "ServeConfig",
    "ServeWorkload",
    "ServerClosed",
    "ServerOverloaded",
    "ServerReadOnly",
    "ServerStats",
    "SnapshotFailed",
    "SnapshotManager",
    "WALCorruption",
    "WALRecord",
    "WINDOW",
    "WINDOW_BATCH",
    "WriteAheadLog",
    "run_baseline",
    "run_closed_loop",
]
