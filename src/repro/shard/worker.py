"""The shard worker: one process, one :class:`IndexServer`, one keyspace range.

Workers are started with the ``spawn`` multiprocessing context — a fresh
interpreter, **nothing inherited from the parent by fork** — so every bit
of configuration a shard needs travels explicitly in its
:class:`WorkerSpec`: the per-shard directory (snapshots + WAL + build
points), the index kind and build method, ELSI/serve config kwargs, and
the captured environment (``REPRO_FAULTS`` / ``REPRO_DTYPE`` /
``REPRO_PARALLELISM``).  The worker applies that environment to
``os.environ`` *and* arms the fault spec on its own fault registry before
building anything, so ``repro chaos``-style scenarios can target fault
sites inside an individual shard regardless of how the process started.

The control protocol over the duplex pipe is one request, one response:
the parent sends ``(seq, timeout, command, trace, *payload)`` tuples and
the worker answers ``(seq, "ok", result, spans)`` or ``(seq, "err",
exception, spans)``.  ``trace`` is the cross-process trace context the
router attaches to every scatter (``None`` when tracing is off — the
worker then skips span capture entirely, keeping the disabled fast
path); with a context present the command runs under
``Tracer.capture()`` inside an ambient ``serve.dispatch`` span, and the
captured span dicts ship back in the reply's ``spans`` slot — on error
replies too, so failed branches stay visible in the merged tree.  The
echoed sequence id lets the parent discard stale replies left over
from timed-out requests, and the server's typed errors
(``ServerOverloaded``, ``ServerReadOnly``, ...) pickle cleanly and cross
the pipe as themselves, so the router handles the exact single-server
failure vocabulary.  Batch commands wait on the server's reply for
slightly *less* than the parent's ``timeout`` (see :func:`_reply_wait`),
so a queued-but-healthy server surfaces its typed ``RequestTimeout``
over the pipe before the parent gives up and poisons the handle.  Query
commands carry whole sub-batches and run through the server's batch
request kinds (one queued ``Request`` per sub-batch), keeping the
per-operation cost on the pipe and the queue negligible next to the
vectorised query work.

``("crash",)`` makes the worker die with ``os._exit`` — no cleanup, no
flushes — which is the chaos hook the kill-mid-stream recovery test uses.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "ENV_KEYS",
    "WORKER_CRASH_EXIT",
    "WorkerSpec",
    "capture_env",
    "shard_worker_main",
]

#: Environment configuration propagated explicitly into workers at spawn.
ENV_KEYS = ("REPRO_FAULTS", "REPRO_DTYPE", "REPRO_PARALLELISM")

#: Exit code of a deliberate ``("crash",)`` — same idea as the chaos
#: child's marker: distinguishes commanded crashes from real failures.
WORKER_CRASH_EXIT = 17

#: File the parent writes a shard's build partition to (and the worker
#: reads it back from on a fresh build).
BUILD_POINTS_FILE = "build_points.npy"


def capture_env(overrides: "dict | None" = None) -> dict:
    """The :data:`ENV_KEYS` subset of the current environment, plus
    ``overrides`` — captured in the parent at spec-creation time so spawn
    never has to rely on what a child happens to inherit."""
    env = {key: os.environ[key] for key in ENV_KEYS if key in os.environ}
    if overrides:
        env.update({str(k): str(v) for k, v in overrides.items()})
    return env


@dataclass
class WorkerSpec:
    """Everything one shard worker needs, explicitly (picklable, no
    closures — the spawn context re-imports this module in the child).

    Attributes
    ----------
    shard_id:
        This shard's index in the shard map.
    directory:
        Per-shard directory: ``build_points.npy``, snapshots
        (``gen-NNNNNN.npz``) and WAL files all live here.
    index / method:
        Index kind (``ZM``/``ML``/``LISA``/``Flood``) and ELSI build
        method, resolved in the worker.
    elsi / serve:
        Keyword arguments for ``ELSIConfig`` and ``ServeConfig``.
    env:
        Captured :data:`ENV_KEYS` values applied in the worker before
        anything configuration-sensitive is constructed.
    recover:
        ``True`` opens the server with ``IndexServer.from_snapshot(...,
        wal=True)`` (crash recovery / cluster reopen) instead of building
        from ``build_points.npy``.
    wal:
        Whether updates are write-ahead-logged (required for the zero
        acknowledged-loss recovery contract).
    salvage:
        Passed through to ``from_snapshot`` on recovery.
    """

    shard_id: int
    directory: str
    index: str = "ZM"
    method: str = "SP"
    elsi: dict = field(default_factory=dict)
    serve: dict = field(default_factory=dict)
    env: dict = field(default_factory=dict)
    recover: bool = False
    wal: bool = True
    salvage: bool = False


def _apply_env(spec: WorkerSpec) -> None:
    """Apply the spec's captured environment, then arm faults explicitly.

    Applying ``os.environ`` covers everything read lazily after this
    point (dtype, parallelism, a fault registry not yet created); the
    explicit ``arm_spec`` covers the one case the environment cannot —
    a start method under which this process already initialised its
    registry before the spec arrived."""
    for key in ENV_KEYS:
        if key in spec.env:
            os.environ[key] = spec.env[key]
        else:
            os.environ.pop(key, None)
    from repro.faults.registry import get_fault_registry

    if spec.env.get("REPRO_FAULTS"):
        get_fault_registry().arm_spec(spec.env["REPRO_FAULTS"])
    else:
        get_fault_registry()


def _open_server(spec: WorkerSpec):
    """Build (or recover) this shard's :class:`IndexServer`."""
    from repro.core import ELSIConfig, ELSIModelBuilder
    from repro.indices import FloodIndex, LISAIndex, MLIndex, ZMIndex
    from repro.serve.server import IndexServer, ServeConfig

    kinds = {"ZM": ZMIndex, "ML": MLIndex, "LISA": LISAIndex, "Flood": FloodIndex}
    if spec.index not in kinds:
        raise ValueError(
            f"shard worker cannot serve index kind {spec.index!r}; "
            f"known kinds: {sorted(kinds)}"
        )
    index_cls = kinds[spec.index]
    config = ELSIConfig(**spec.elsi)
    builder = ELSIModelBuilder(config, method=spec.method)
    factory = lambda: index_cls(builder=builder)  # noqa: E731
    serve_config = ServeConfig(**spec.serve)
    directory = Path(spec.directory)
    if spec.recover:
        return IndexServer.from_snapshot(
            directory,
            wal=spec.wal,
            salvage=spec.salvage,
            config=serve_config,
            elsi_config=config,
            index_factory=factory,
        )
    points = np.load(directory / BUILD_POINTS_FILE)
    index = index_cls(builder=builder)
    index.build(points)
    return IndexServer(
        index,
        serve_config,
        elsi_config=config,
        index_factory=factory,
        snapshots=str(directory),
        wal=spec.wal,
    )


def _status(server) -> dict:
    return {
        "health": server.health,
        "generation": server.generation,
        "n_points": server.n_points,
    }


def shard_worker_main(spec: WorkerSpec, conn) -> None:
    """Process entry point: open the shard's server, answer the pipe.

    The first message is always ``("ready", status)`` or ``("err", exc)``
    — the parent's spawn blocks on it, so a shard that fails to build or
    recover surfaces its exception instead of hanging the cluster.
    """
    _apply_env(spec)
    try:
        server = _open_server(spec)
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        conn.send(("err", exc))
        conn.close()
        return
    server.start()
    conn.send(("ready", _status(server)))
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            seq, timeout, command, trace = (
                message[0], message[1], message[2], message[3],
            )
            payload = message[4:]
            if command == "crash":
                os._exit(WORKER_CRASH_EXIT)
            if command == "close":
                conn.send((seq, "ok", None, None))
                break
            captured: list = []
            try:
                if trace is None:
                    result = _dispatch(server, spec, command, payload, timeout)
                else:
                    result = _traced_dispatch(
                        server, spec, command, payload, timeout, trace, captured
                    )
                conn.send((seq, "ok", result, _ship_spans(trace, captured)))
            except BaseException as exc:  # noqa: BLE001 - errors cross the pipe
                conn.send((seq, "err", exc, _ship_spans(trace, captured)))
    finally:
        server.close()
        conn.close()


def _ship_spans(trace, captured: list) -> "list[dict] | None":
    """Captured spans as picklable dicts (None when no trace context)."""
    if trace is None:
        return None
    return [record.to_dict() for record in captured]


def _traced_dispatch(
    server, spec: WorkerSpec, command: str, payload: tuple, timeout: float,
    trace: dict, captured: list,
) -> object:
    """Run one command under span capture, ambient-seeded with the
    caller's trace context, inside a ``serve.dispatch`` span.

    ``captured`` is filled in place so spans survive an exception
    (the dispatch span itself exits tagged ``error=...`` and still
    ships on the error reply).
    """
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    with tracer.capture() as records:
        try:
            with tracer.ambient(
                trace.get("parent_span_id"), trace_id=trace.get("trace_id")
            ):
                with tracer.span(
                    "serve.dispatch",
                    command=command,
                    shard=spec.shard_id,
                    request_id=trace.get("request_id"),
                ):
                    return _dispatch(server, spec, command, payload, timeout)
        finally:
            captured.extend(records)


def _reply_wait(timeout: float) -> float:
    """How long a batch command waits on the server's reply: the
    parent's deadline minus a margin, so a slow-but-alive server answers
    with a typed ``RequestTimeout`` that still reaches the parent in
    time instead of wedging the pipe past the parent's deadline."""
    return max(0.05, timeout - max(0.5, 0.1 * timeout))


def _dispatch(server, spec: WorkerSpec, command: str, payload: tuple, timeout: float):
    wait = _reply_wait(timeout)
    if command == "point_batch":
        (points,) = payload
        return np.asarray(server.submit_point_batch(points).wait(wait))
    if command == "window_batch":
        (windows,) = payload
        return server.submit_window_batch(windows).wait(wait)
    if command == "knn_batch":
        points, k = payload
        return server.submit_knn_batch(points, k).wait(wait)
    if command == "insert":
        (point,) = payload
        server.insert(point)
        return True
    if command == "delete":
        (point,) = payload
        return server.delete(point)
    if command == "rebuild":
        server.rebuild_now()
        return _status(server)
    if command == "stats":
        snapshot = server.stats_snapshot()
        # Shipped in export format so MetricsRegistry.merge keeps it as a
        # per-shard series: cumulative process CPU (user + system), whose
        # scrape-to-scrape deltas separate real parallel speedup from
        # batching in bench_shard_scaling.
        cpu = os.times()
        snapshot["worker.cpu_seconds"] = [
            {
                "labels": {"shard": str(spec.shard_id)},
                "kind": "gauge",
                "value": float(cpu.user + cpu.system),
                "updated_at": time.time(),
            }
        ]
        return snapshot
    if command == "status":
        return _status(server)
    raise ValueError(f"unknown shard worker command {command!r}")
