"""Table II — ELSI vs a random method selector (and each fixed method).

Build and point-query times on OSM1 at lambda = 0.8 for the learned
selector (ELSI), the Rand ablation, every fixed method, and OG, across all
four base indices.

Paper shapes to hold: ELSI builds faster than Rand (Rand risks picking a
slow method); both build far faster than OG; CL/RL are NA for LISA; point
query times stay in a narrow band across columns.
"""

import numpy as np

from repro.bench.experiments import table2_ablation
from repro.bench.harness import format_table


def _print(result, metric: str, title: str, fmt: str) -> None:
    columns = result["columns"]
    rows = []
    for index_name, values in result[metric].items():
        row = [index_name]
        for column in columns:
            value = values[column]
            row.append("NA" if value is None else fmt.format(value))
        rows.append(row)
    print(format_table(["index"] + columns, rows, title=title))


def test_table2_ablation(ctx, benchmark):
    result = benchmark.pedantic(table2_ablation, args=(ctx,), rounds=1, iterations=1)

    print()
    _print(result, "build_seconds", "Table II: build time (s), lambda=0.8", "{:.3f}")
    _print(result, "query_us", "Table II: point query time (us)", "{:.1f}")

    build = result["build_seconds"]
    query = result["query_us"]
    for index_name in ("ZM", "RSMI", "ML", "LISA"):
        row = build[index_name]
        assert row["ELSI"] < row["OG"], f"{index_name}: ELSI should beat OG"
        # NA columns only for LISA.
        nas = [c for c, v in row.items() if v is None]
        assert nas == (["CL", "RL"] if index_name == "LISA" else [])
        # Query times in a narrow band: max/min within 5x across columns.
        q = [v for v in query[index_name].values() if v is not None]
        assert max(q) < 5 * min(q) + 10

    # ELSI no slower than Rand on average across indices (the ablation claim).
    elsi_total = sum(build[i]["ELSI"] for i in build)
    rand_total = sum(build[i]["Rand"] for i in build)
    assert elsi_total < rand_total * 1.5
