"""Unit tests for Morton (Z-order) codes."""

import itertools

import numpy as np
import pytest

from repro.spatial.rect import Rect
from repro.spatial.zcurve import grid_coordinates, morton_decode, morton_encode, zvalues


class TestEncodeDecode:
    def test_known_2d_codes(self):
        coords = np.array([[0, 0], [1, 0], [0, 1], [1, 1], [2, 0], [3, 3]])
        codes = morton_encode(coords, bits=2)
        np.testing.assert_array_equal(codes, [0, 1, 2, 3, 4, 15])

    def test_round_trip_2d(self):
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 2**16, (500, 2))
        decoded = morton_decode(morton_encode(coords), d=2)
        np.testing.assert_array_equal(decoded, coords.astype(np.uint64))

    def test_round_trip_3d(self):
        rng = np.random.default_rng(1)
        coords = rng.integers(0, 2**10, (200, 3))
        decoded = morton_decode(morton_encode(coords, bits=10), d=3, bits=10)
        np.testing.assert_array_equal(decoded, coords.astype(np.uint64))

    def test_bijective_on_small_grid(self):
        grid = np.array(list(itertools.product(range(8), range(8))))
        codes = morton_encode(grid, bits=3)
        assert sorted(codes.tolist()) == list(range(64))

    def test_empty_input(self):
        assert len(morton_encode(np.empty((0, 2), dtype=int))) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([[2**16, 0]]), bits=16)
        with pytest.raises(ValueError):
            morton_encode(np.array([[-1, 0]]))

    def test_too_many_bits_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([[0, 0]]), bits=32)

    def test_monotone_along_axes(self):
        # Fixing one coordinate, the code grows with the other.
        ys = morton_encode(np.column_stack([np.zeros(8, int), np.arange(8)]), bits=3)
        assert np.all(np.diff(ys.astype(np.int64)) > 0)


class TestGridScaling:
    def test_corners(self):
        bounds = Rect.unit(2)
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        cells = grid_coordinates(pts, bounds, bits=4)
        np.testing.assert_array_equal(cells[0], [0, 0])
        np.testing.assert_array_equal(cells[1], [15, 15])

    def test_clipping_outside_bounds(self):
        bounds = Rect.unit(2)
        pts = np.array([[-1.0, 2.0]])
        cells = grid_coordinates(pts, bounds, bits=4)
        np.testing.assert_array_equal(cells[0], [0, 15])

    def test_degenerate_axis(self):
        bounds = Rect((0.0, 0.5), (1.0, 0.5))  # zero extent in y
        pts = np.array([[0.5, 0.5]])
        cells = grid_coordinates(pts, bounds, bits=4)
        assert cells[0][1] == 0

    def test_zvalues_window_containment(self):
        """The ZM window-query invariant: points in a rect have z-values
        within the z-values of the rect's corners."""
        rng = np.random.default_rng(2)
        pts = rng.random((2_000, 2))
        bounds = Rect.unit(2)
        window = Rect((0.3, 0.4), (0.6, 0.7))
        inside = pts[window.contains_points(pts)]
        z_inside = zvalues(inside, bounds)
        corners = zvalues(np.array([window.lo, window.hi]), bounds)
        assert np.all(z_inside >= corners[0])
        assert np.all(z_inside <= corners[1])
