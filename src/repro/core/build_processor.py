"""The ELSI build processor: Algorithm 1's ``compute_set`` + ``train`` path.

:class:`ELSIModelBuilder` is a :class:`~repro.indices.base.ModelBuilder`
that a base index uses in place of OG training.  Per model it:

1. picks a build method — fixed (``method=``), learned (``selector=``, the
   method scorer of Section IV-B1), or uniformly random (``random_choice=``,
   the "Rand" ablation of Table II);
2. runs the method's ``compute_set`` to obtain the reduced training set
   ``D_S`` (falling back SP → OG if the method fails, e.g. MR with no match
   within ε);
3. trains the index model on ``D_S`` — or loads MR's pre-trained weights;
4. measures the empirical error bounds over the *full* partition, which is
   the ``M(n)`` term of Section VI-B and what keeps predict-and-scan exact.

All component times are recorded in the index's
:class:`~repro.indices.base.BuildStats` for the Table I decomposition.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import ELSIConfig
from repro.core.methods.base import BuildMethod, MethodResult, make_method_pool
from repro.core.methods.model_reuse import MethodFailure
from repro.indices.base import (
    BuildStats,
    FitJob,
    MapFn,
    ModelBuilder,
    TrainedModel,
    _merge_fit_costs,
    run_fit_job,
)
from repro.ml.trainer import TrainConfig
from repro.obs.trace import span as _span
from repro.perf.executor import MapExecutor, resolve_executor
from repro.perf.fused_infer import resolve_dtype
from repro.spatial.cdf import uniform_dissimilarity

__all__ = ["ELSIModelBuilder"]


class ELSIModelBuilder(ModelBuilder):
    """ELSI's drop-in builder for any map-and-sort base index.

    Parameters
    ----------
    config:
        System parameters (method pool, λ, FFN hyperparameters, ...).
    selector:
        A trained method selector (``select(n, dist_u, applicable, lam, w_q)
        -> name``); when given, it drives method choice per model.
    method:
        Fixed method name; overrides the selector.
    random_choice:
        Pick uniformly among applicable methods (the Table II "Rand"
        ablation).
    """

    def __init__(
        self,
        config: ELSIConfig | None = None,
        selector=None,
        method: str | None = None,
        random_choice: bool = False,
    ) -> None:
        self.config = config or ELSIConfig()
        self.selector = selector
        self.fixed_method = method
        self.random_choice = random_choice
        #: Dispatch backend for multi-model builds; ``ELSIConfig.parallelism``
        #: seeds it, the ``REPRO_PARALLELISM`` env variable overrides it.
        self.executor = MapExecutor(
            backend=self.config.parallelism,
            max_workers=self.config.parallel_workers,
        )
        #: Inference precision for the models this builder produces;
        #: ``ELSIConfig.dtype`` seeds it, ``REPRO_DTYPE`` overrides it.
        #: Indices read it when fusing leaf models after the build.
        self.dtype = resolve_dtype(self.config.dtype)
        self._rng = np.random.default_rng(self.config.seed)
        self.pool: list[BuildMethod] = make_method_pool(self.config)
        self._by_name = {m.name: m for m in self.pool}
        if method is not None and method not in self._by_name:
            raise ValueError(f"method {method!r} not in pool {sorted(self._by_name)}")
        if selector is None and method is None and not random_choice:
            # Sensible untrained default: SP is the cheapest safe reduction.
            self.fixed_method = "SP"

    # ------------------------------------------------------------------
    def _choose(self, sorted_keys: np.ndarray, map_fn: MapFn | None) -> BuildMethod:
        """Pick the build method for this partition (scorer invocation)."""
        applicable = [m for m in self.pool if m.applicable(map_fn)]
        if not applicable:
            raise RuntimeError("no applicable build method for this partition")
        if self.fixed_method is not None:
            chosen = self._by_name[self.fixed_method]
            if chosen.applicable(map_fn):
                return chosen
            # Fixed method inapplicable here (e.g. CL for LISA): fall back.
            return self._by_name.get("SP", applicable[0])
        if self.random_choice:
            return applicable[int(self._rng.integers(len(applicable)))]
        assert self.selector is not None
        dist_u = uniform_dissimilarity(sorted_keys, assume_sorted=True)
        name = self.selector.select(
            n=len(sorted_keys),
            dist_u=dist_u,
            methods=[m.name for m in applicable],
            lam=self.config.lam,
            w_q=self.config.w_q,
        )
        return self._by_name[name]

    def _fallback_chain(self, first: BuildMethod, map_fn: MapFn | None):
        """The chosen method, then SP, then OG (always applicable)."""
        chain = [first]
        for name in ("SP", "OG"):
            method = self._by_name.get(name)
            if method is not None and method is not first and method.applicable(map_fn):
                chain.append(method)
        return chain

    # ------------------------------------------------------------------
    def prepare_fit_job(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None = None,
    ) -> FitJob:
        """Algorithm 1's ``compute_set`` phase, packaged as a pure fit job.

        Method choice and ``compute_set`` run here — serially, in partition
        order — because they may consume shared RNG state (``random_choice``)
        and their cost is the ``cost_ex`` term, small next to training.  The
        returned job carries everything the train + error-bound phase needs,
        so the executor can run jobs on any backend with identical results.
        """
        n = len(sorted_keys)
        if n == 0:
            raise ValueError("cannot build a model over an empty partition")

        select_started = time.perf_counter()
        with _span("build.method_select", n=n) as sel_span:
            chosen = self._choose(sorted_keys, map_fn)
            sel_span.set(method=chosen.name)
        extra_seconds = time.perf_counter() - select_started

        result: MethodResult | None = None
        used: BuildMethod = chosen
        with _span("build.compute_set", method=chosen.name, n=n) as cs_span:
            for method in self._fallback_chain(chosen, map_fn):
                try:
                    result = method.compute_set(sorted_keys, sorted_points, map_fn)
                    used = method
                    break
                except MethodFailure:
                    continue
            if result is None:
                raise RuntimeError("every build method failed, including OG")
            cs_span.set(used=used.name, train_size=len(result.train_keys))
        extra_seconds += result.extra_seconds

        return FitJob(
            train_keys=result.train_keys,
            train_ranks=result.train_ranks,
            key_lo=float(sorted_keys[0]),
            key_hi=float(sorted_keys[-1]),
            n_indexed=n,
            sorted_keys=sorted_keys,
            hidden=self.config.hidden_size,
            train_config=TrainConfig(
                epochs=self.config.train_epochs, seed=self.config.seed
            ),
            method_name=used.name,
            seed=self.config.seed,
            pretrained_state=result.pretrained_state,
            extra_seconds=extra_seconds,
        )

    def build_model(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        stats: BuildStats,
        map_fn: MapFn | None = None,
    ) -> TrainedModel:
        job = self.prepare_fit_job(sorted_keys, sorted_points, map_fn)
        outcome = run_fit_job(job, executor=resolve_executor(self.executor))
        _merge_fit_costs(stats, job, outcome)
        return outcome.model
