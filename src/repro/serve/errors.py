"""Typed serving errors: shedding, lifecycle, and durability failures.

Clients need to distinguish "retry later" (:class:`ServerOverloaded`,
:class:`RequestTimeout`), "stop sending writes" (:class:`ServerReadOnly`),
and "this handle is dead" (:class:`ServerClosed`) — a bare RuntimeError
can't carry that, so every failure mode the server sheds or rejects with
has its own type.  :class:`RebuildFailed` and :class:`SnapshotFailed`
surface background-worker failures to ``rebuild_now()`` callers and the
health gauge instead of dying silently in the worker thread.
"""

from __future__ import annotations

__all__ = [
    "RebuildFailed",
    "RequestTimeout",
    "ServerClosed",
    "ServerOverloaded",
    "ServerReadOnly",
    "SnapshotFailed",
    "WALCorruption",
]


class ServerClosed(RuntimeError):
    """The server has been closed; submissions and updates are rejected."""


class ServerOverloaded(RuntimeError):
    """Admission control shed the request: the queue is at capacity."""


class RequestTimeout(TimeoutError):
    """The request aged past the deadline while queued and was shed."""


class ServerReadOnly(RuntimeError):
    """Updates are rejected: the server degraded to read-only serving."""


class RebuildFailed(RuntimeError):
    """A rebuild exhausted its retry budget; the old generation serves on."""


class SnapshotFailed(RuntimeError):
    """A snapshot save exhausted its retry budget."""


class WALCorruption(ValueError):
    """A write-ahead-log record failed its integrity check mid-file."""
