"""Float32 end-to-end parity tests (models + mapped keys).

``ELSIConfig.dtype`` / ``REPRO_DTYPE`` now casts the *mapped key columns*
as well as the model networks.  The correctness argument is quantisation
symmetry: the round-to-nearest float64→float32 cast is monotone and is
applied identically at build time (stored keys) and probe time (query
keys), so equal coordinates always map to bit-equal keys, error bounds
re-measured over the cast keys keep predict-and-scan exact, and exact
float64 coordinate/rectangle/distance filters remove any extra candidates
the coarser quantisation lets through.  These tests pin that argument:
query results under float32 must match float64 (and brute force) exactly
for the exact indices, and snapshots must round-trip the reduced dtype.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import FloodIndex, LISAIndex, MLIndex, RSMIIndex, ZMIndex
from repro.ml.ffn import FFN
from repro.queries import brute_force_knn, brute_force_window, window_recall
from repro.spatial.rect import Rect
from repro.storage.persist import load_index, save_index

INDEX_CLASSES = {
    "ZM": ZMIndex,
    "ML": MLIndex,
    "RSMI": RSMIIndex,
    "LISA": LISAIndex,
    "Flood": FloodIndex,
}
#: Indices whose window (and hence kNN) results are exact; RSMI's are
#: approximate by design (non-monotone per-node models).
EXACT = ("ZM", "ML", "LISA", "Flood")


def _build(cls, points: np.ndarray, dtype: str):
    """Build one index at an explicit dtype, overriding any ambient
    ``REPRO_DTYPE`` (the CI float32 job exports it globally)."""
    saved = os.environ.get("REPRO_DTYPE")
    os.environ["REPRO_DTYPE"] = dtype
    try:
        config = ELSIConfig(train_epochs=60, dtype=dtype)
        return cls(builder=ELSIModelBuilder(config, method="SP")).build(points)
    finally:
        if saved is None:
            os.environ.pop("REPRO_DTYPE", None)
        else:
            os.environ["REPRO_DTYPE"] = saved


@pytest.fixture(scope="module")
def parity_points(osm_points) -> np.ndarray:
    """OSM points plus exact duplicates (duplicate mapped keys)."""
    return np.vstack([osm_points, osm_points[::50]])


@pytest.fixture(scope="module")
def pairs(parity_points):
    """Every index type built at float64 and float32 over the same data."""
    return {
        name: {
            "float64": _build(cls, parity_points, "float64"),
            "float32": _build(cls, parity_points, "float32"),
        }
        for name, cls in INDEX_CLASSES.items()
    }


def _canon(rows: np.ndarray) -> np.ndarray:
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    if len(rows) == 0:
        return rows
    return rows[np.lexsort(rows.T)]


# ----------------------------------------------------------------------
# Point queries: bit-exact f32/f64 parity for all five index types
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(INDEX_CLASSES))
def test_point_query_parity(pairs, parity_points, name):
    rng = np.random.default_rng(7)
    batch = np.vstack(
        [
            parity_points[:150],
            parity_points[-10:],  # duplicated rows (duplicate keys)
            # Boundary-quantisation probes: nudge indexed coordinates by
            # less than one float32 ulp — they round to the same cast key
            # but must still miss on the exact float64 coordinate filter.
            parity_points[:25] + 1e-9,
            rng.random((50, 2)) + 1.5,  # far misses
        ]
    )
    got32 = pairs[name]["float32"].point_queries(batch)
    got64 = pairs[name]["float64"].point_queries(batch)
    np.testing.assert_array_equal(got32, got64)
    assert got32[:160].all()  # every indexed point (incl. duplicates) found
    assert not got32[160:].any()  # every non-indexed probe rejected


# ----------------------------------------------------------------------
# Window queries: exact indices match brute force under both dtypes
# ----------------------------------------------------------------------
def _windows(points: np.ndarray) -> list[Rect]:
    rng = np.random.default_rng(3)
    wins = []
    for _ in range(8):
        lo = rng.random(2) * 0.8
        wins.append(Rect(tuple(lo), tuple(lo + rng.random(2) * 0.2 + 0.02)))
    # Empty window and a degenerate window whose closed boundaries sit
    # exactly on an indexed point's (float64) coordinates — the cast-probe
    # superset must not lose it to float32 rounding.
    wins.append(Rect((2.0, 2.0), (3.0, 3.0)))
    p = points[17]
    wins.append(Rect((p[0], p[1]), (p[0], p[1])))
    return wins


@pytest.mark.parametrize("name", EXACT)
def test_window_query_parity(pairs, parity_points, name):
    for win in _windows(parity_points):
        truth = _canon(brute_force_window(parity_points, win))
        for dtype in ("float32", "float64"):
            got = _canon(pairs[name][dtype].window_query(win))
            np.testing.assert_array_equal(got, truth)


@pytest.mark.parametrize("name", EXACT)
def test_window_batch_parity(pairs, parity_points, name):
    wins = _windows(parity_points)
    res32 = pairs[name]["float32"].window_queries(wins)
    res64 = pairs[name]["float64"].window_queries(wins)
    for win, r32, r64 in zip(wins, res32, res64):
        truth = _canon(brute_force_window(parity_points, win))
        np.testing.assert_array_equal(_canon(r32), truth)
        np.testing.assert_array_equal(_canon(r64), truth)


def test_rsmi_window_subset_and_recall(pairs, parity_points):
    """RSMI windows stay approximate under float32: every returned point
    is a true match, and recall stays in the same band as float64."""
    wins = _windows(parity_points)[:9]
    for dtype in ("float32", "float64"):
        index = pairs["RSMI"][dtype]
        recalls = []
        for win in wins:
            got = index.window_query(win)
            assert win.contains_points(got).all() if len(got) else True
            truth = brute_force_window(parity_points, win)
            recalls.append(window_recall(got, truth))
        assert np.mean(recalls) >= 0.5


# ----------------------------------------------------------------------
# kNN: exact indices return the true neighbour sets under float32
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", EXACT)
def test_knn_parity(pairs, parity_points, name):
    rng = np.random.default_rng(11)
    queries = rng.random((6, 2))
    k = 10
    res32 = pairs[name]["float32"].knn_queries(queries, k)
    res64 = pairs[name]["float64"].knn_queries(queries, k)
    for q, r32, r64 in zip(queries, res32, res64):
        truth = brute_force_knn(parity_points, q, k)
        # Compare by distance multiset: equidistant ties may legitimately
        # resolve to different (equally correct) points.
        d_truth = np.sort(np.linalg.norm(truth - q, axis=1))
        for got in (r32, r64):
            assert len(got) == k
            d_got = np.sort(np.linalg.norm(got - q, axis=1))
            np.testing.assert_allclose(d_got, d_truth, rtol=0, atol=0)


# ----------------------------------------------------------------------
# Memory: float32 halves key and model storage
# ----------------------------------------------------------------------
def test_float32_halves_key_memory(pairs):
    for name in ("ZM", "ML", "LISA"):
        k32 = pairs[name]["float32"].store.keys
        k64 = pairs[name]["float64"].store.keys
        assert k32.dtype == np.float32 and k64.dtype == np.float64
        assert k32.nbytes * 2 == k64.nbytes


def test_float32_casts_model_parameters(pairs):
    model32 = pairs["ZM"]["float32"].model.stage1
    assert isinstance(model32.net, FFN)
    assert all(w.dtype == np.float32 for w in model32.net.weights)
    model64 = pairs["ZM"]["float64"].model.stage1
    assert all(w.dtype == np.float64 for w in model64.net.weights)


def test_flood_column_keys_follow_dtype(pairs):
    stores32 = [s for s in pairs["Flood"]["float32"]._stores if s is not None]
    assert stores32 and all(s.keys.dtype == np.float32 for s in stores32)


def test_rsmi_leaf_keys_and_nets_follow_dtype(pairs):
    index = pairs["RSMI"]["float32"]
    stack = [index.root]
    leaves = 0
    while stack:
        node = stack.pop()
        if isinstance(node.model.net, FFN):
            assert all(w.dtype == np.float32 for w in node.model.net.weights)
        if node.is_leaf:
            leaves += 1
            assert node.store.keys.dtype == np.float32
        else:
            stack.extend(c for c in node.children if c is not None)
    assert leaves > 0


# ----------------------------------------------------------------------
# Persistence: float32 snapshots round-trip dtype and bounds
# ----------------------------------------------------------------------
def _rsmi_nodes(index):
    out, stack = [], [index.root]
    while stack:
        node = stack.pop()
        out.append(node)
        if not node.is_leaf:
            stack.extend(c for c in node.children if c is not None)
    return out


def test_rsmi_float32_snapshot_round_trip(pairs, parity_points, tmp_path):
    index = pairs["RSMI"]["float32"]
    path = tmp_path / "rsmi32.npz"
    save_index(index, path)
    # Load under an ambient float64 REPRO_DTYPE: the snapshot's own key
    # quantisation must win over the loading process's default.
    saved = os.environ.get("REPRO_DTYPE")
    os.environ["REPRO_DTYPE"] = "float64"
    try:
        loaded = load_index(path)
    finally:
        if saved is None:
            os.environ.pop("REPRO_DTYPE", None)
        else:
            os.environ["REPRO_DTYPE"] = saved
    assert loaded.key_dtype == np.dtype(np.float32)
    orig_nodes, loaded_nodes = _rsmi_nodes(index), _rsmi_nodes(loaded)
    assert len(orig_nodes) == len(loaded_nodes)
    for a, b in zip(orig_nodes, loaded_nodes):
        assert (a.model.err_l, a.model.err_u) == (b.model.err_l, b.model.err_u)
        if isinstance(b.model.net, FFN):
            assert all(w.dtype == np.float32 for w in b.model.net.weights)
        if a.is_leaf:
            assert b.store.keys.dtype == np.float32
    assert loaded.point_queries(parity_points[::40]).all()


@pytest.mark.parametrize("name", ["ZM", "ML", "LISA", "Flood"])
def test_store_index_float32_snapshot_round_trip(
    pairs, parity_points, name, tmp_path
):
    index = pairs[name]["float32"]
    path = tmp_path / f"{name.lower()}32.npz"
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.key_dtype == np.dtype(np.float32)
    assert loaded.point_queries(parity_points[::40]).all()
    win = _windows(parity_points)[0]
    truth = _canon(brute_force_window(parity_points, win))
    np.testing.assert_array_equal(_canon(loaded.window_query(win)), truth)
