"""Index persistence: save a built learned index to disk and load it back.

A production system rebuilds rarely (the whole point of ELSI) and reopens
often, so built indices must round-trip through storage.  Persistence
covers the store-based indices the serving layer can host — ZM, ML-Index,
LISA and Flood — and RSMI's recursive node tree, which flattens to a
pre-order node list (so serving snapshots work for all five indices).

Format: a single ``.npz`` with JSON-encoded structural metadata and numpy
arrays for points/keys/model weights.  FFN (float64 or float32-cast, see
``ELSIConfig.dtype``) and PLA model states are both supported.  Fused
inference engines (:mod:`repro.perf.fused_infer`) are derived state:
loaders rebuild them from the restored models rather than persisting
stacked arrays.  :func:`save_index` / :func:`load_index` dispatch on the
index type (saving) and the embedded format tag (loading).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.indices.base import TrainedModel
from repro.indices.flood import FloodIndex
from repro.indices.lisa import LISAIndex
from repro.indices.ml_index import MLIndex
from repro.indices.rmi import RMIModel
from repro.indices.rsmi import RSMIIndex
from repro.indices.rsmi import _Node as _RSMINode
from repro.indices.zm import ZMIndex
from repro.ml.ffn import FFN
from repro.ml.pla import PiecewiseLinearModel, _Segment
from repro.spatial.idistance import IDistanceMapping
from repro.spatial.rect import Rect
from repro.storage.blocks import BlockStore

__all__ = [
    "load_flood_index",
    "load_index",
    "load_lisa_index",
    "load_ml_index",
    "load_rsmi_index",
    "load_zm_index",
    "save_flood_index",
    "save_index",
    "save_lisa_index",
    "save_ml_index",
    "save_rsmi_index",
    "save_zm_index",
]


def _model_payload(model: TrainedModel, prefix: str, arrays: dict) -> dict:
    """Serialise one TrainedModel; weights go to ``arrays`` under ``prefix``."""
    meta = {
        "key_lo": model.key_lo,
        "key_hi": model.key_hi,
        "n_indexed": model.n_indexed,
        "method_name": model.method_name,
        "train_set_size": model.train_set_size,
        "err_l": model.err_l,
        "err_u": model.err_u,
    }
    net = model.net
    if isinstance(net, FFN):
        meta["net_type"] = "ffn"
        meta["layer_sizes"] = net.layer_sizes
        # Record the inference precision so float32-cast networks (see
        # ``ELSIConfig.dtype``) round-trip with their measured bounds.
        meta["net_dtype"] = str(net.weights[0].dtype)
        for name, value in net.state_dict().items():
            arrays[f"{prefix}.{name}"] = value
    elif isinstance(net, PiecewiseLinearModel):
        meta["net_type"] = "pla"
        meta["epsilon"] = net.epsilon
        arrays[f"{prefix}.starts"] = net._starts
        arrays[f"{prefix}.slopes"] = net._slopes
        arrays[f"{prefix}.anchors_x"] = net._anchors_x
        arrays[f"{prefix}.anchors_y"] = net._anchors_y
    else:
        raise TypeError(f"cannot persist model net of type {type(net).__name__}")
    return meta


def _model_from_payload(meta: dict, prefix: str, arrays) -> TrainedModel:
    if meta["net_type"] == "ffn":
        net = FFN(list(meta["layer_sizes"]))
        state = {}
        for i in range(net.n_layers):
            state[f"w{i}"] = arrays[f"{prefix}.w{i}"]
            state[f"b{i}"] = arrays[f"{prefix}.b{i}"]
        net.load_state_dict(state)
        if meta.get("net_dtype", "float64") == "float32":
            # The saved bounds were measured under float32 arithmetic, so
            # the restored network must predict under the same precision.
            net.astype(np.float32)
    elif meta["net_type"] == "pla":
        segments = [
            _Segment(start=float(s), slope=float(m), anchor_x=float(ax), anchor_y=float(ay))
            for s, m, ax, ay in zip(
                arrays[f"{prefix}.starts"],
                arrays[f"{prefix}.slopes"],
                arrays[f"{prefix}.anchors_x"],
                arrays[f"{prefix}.anchors_y"],
            )
        ]
        net = PiecewiseLinearModel(segments, epsilon=meta["epsilon"])
    else:
        raise ValueError(f"unknown net type {meta['net_type']!r}")
    model = TrainedModel(
        net=net,
        key_lo=meta["key_lo"],
        key_hi=meta["key_hi"],
        n_indexed=meta["n_indexed"],
        method_name=meta["method_name"],
        train_set_size=meta["train_set_size"],
    )
    model.err_l = meta["err_l"]
    model.err_u = meta["err_u"]
    return model


# ----------------------------------------------------------------------
# Shared pieces: block stores and RMI hierarchies
# ----------------------------------------------------------------------
def _store_arrays(store: BlockStore, prefix: str, arrays: dict) -> None:
    arrays[f"{prefix}points"] = store.points
    arrays[f"{prefix}keys"] = store.keys
    arrays[f"{prefix}ids"] = store.ids


def _store_from_arrays(data, prefix: str, block_size: int) -> BlockStore:
    """Rebuild a store without re-sorting (arrays are already sorted)."""
    store = BlockStore.__new__(BlockStore)
    store.points = data[f"{prefix}points"]
    store.keys = data[f"{prefix}keys"]
    store.ids = data[f"{prefix}ids"]
    store.block_size = block_size
    store._reads = 0
    return store


def _restore_key_dtype(index, keys: np.ndarray) -> None:
    """Pin the loaded index's key dtype to the snapshot's stored keys.

    The snapshot's quantisation is authoritative: probe keys must go
    through the same cast the stored keys did at build time, whatever
    ``REPRO_DTYPE`` the *loading* process runs under — otherwise equal
    coordinates would map to unequal keys and point lookups would miss.
    """
    if np.issubdtype(keys.dtype, np.floating):
        index.key_dtype = np.dtype(keys.dtype)


def _rmi_payload(model: RMIModel, arrays: dict, prefix: str = "m") -> dict:
    meta = {
        "stage1": _model_payload(model.stage1, f"{prefix}0", arrays),
        "stage2": [],
        "stage2_positions": [],
        "rmi_n": model.n,
    }
    for i, member in enumerate(model.stage2):
        if member is model.stage1:
            meta["stage2"].append(None)
        else:
            meta["stage2"].append(_model_payload(member, f"{prefix}{i + 1}", arrays))
        arrays[f"{prefix}pos{i}"] = model._stage2_positions[i]
        meta["stage2_positions"].append(f"{prefix}pos{i}")
    return meta


def _rmi_from_payload(
    meta: dict,
    data,
    builder,
    branching: int,
    prefix: str = "m",
    sorted_keys: np.ndarray | None = None,
) -> RMIModel:
    rmi = RMIModel(builder, branching=branching)
    rmi.n = meta["rmi_n"]
    rmi.stage1 = _model_from_payload(meta["stage1"], f"{prefix}0", data)
    rmi.stage2 = []
    rmi._stage2_positions = []
    for i, payload in enumerate(meta["stage2"]):
        if payload is None:
            rmi.stage2.append(rmi.stage1)
        else:
            rmi.stage2.append(_model_from_payload(payload, f"{prefix}{i + 1}", data))
        rmi._stage2_positions.append(data[meta["stage2_positions"][i]])
    if sorted_keys is not None:
        # The fused inference engine is derived state: rebuild it (with
        # freshly re-measured fused bounds) rather than persisting it.
        rmi.fuse_inference(sorted_keys)
    return rmi


def _write(path: str | Path, meta: dict, arrays: dict) -> None:
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(Path(path), **arrays)


def _read_meta(data) -> dict:
    return json.loads(bytes(data["meta"].tobytes()).decode())


# ----------------------------------------------------------------------
# ZM
# ----------------------------------------------------------------------
def save_zm_index(index: ZMIndex, path: str | Path) -> None:
    """Persist a built ZM index to ``path`` (.npz)."""
    if index.store is None or index.model is None or index.bounds is None:
        raise ValueError("the index must be built before saving")
    arrays: dict[str, np.ndarray] = {}
    _store_arrays(index.store, "", arrays)
    meta = {
        "format": "repro-zm-v1",
        "bits": index.bits,
        "block_size": index.block_size,
        "branching": index.branching,
        "n_points": index.n_points,
        "bounds_lo": list(index.bounds.lo),
        "bounds_hi": list(index.bounds.hi),
        "native_inserts": index._native_inserts,
    }
    meta.update(_rmi_payload(index.model, arrays, prefix="m"))
    # Legacy "repro-zm-v1" spelling: stage-1 payload under "stage1" etc.
    # with position arrays named pos{i}; keep the names byte-compatible.
    for i in range(len(index.model.stage2)):
        arrays[f"pos{i}"] = arrays.pop(f"mpos{i}")
        meta["stage2_positions"][i] = f"pos{i}"
    _write(path, meta, arrays)


def load_zm_index(path: str | Path) -> ZMIndex:
    """Load a ZM index saved by :func:`save_zm_index`; queryable immediately."""
    with np.load(Path(path)) as data:
        meta = _read_meta(data)
        if meta.get("format") != "repro-zm-v1":
            raise ValueError(f"not a repro ZM index file: {path}")
        index = ZMIndex(
            block_size=meta["block_size"],
            bits=meta["bits"],
            branching=meta["branching"],
        )
        index.bounds = Rect(tuple(meta["bounds_lo"]), tuple(meta["bounds_hi"]))
        index.n_points = meta["n_points"]
        index._native_inserts = meta["native_inserts"]
        index.store = _store_from_arrays(data, "", meta["block_size"])
        _restore_key_dtype(index, index.store.keys)
        index.model = _rmi_from_payload(
            meta, data, index.builder, meta["branching"], prefix="m",
            sorted_keys=index.store.keys,
        )
    return index


# ----------------------------------------------------------------------
# ML-Index
# ----------------------------------------------------------------------
def save_ml_index(index: MLIndex, path: str | Path) -> None:
    """Persist a built ML-Index to ``path`` (.npz)."""
    if index.store is None or index.model is None or index.mapping is None:
        raise ValueError("the index must be built before saving")
    assert index.bounds is not None
    arrays: dict[str, np.ndarray] = {"references": index.mapping.references}
    _store_arrays(index.store, "", arrays)
    meta = {
        "format": "repro-ml-v1",
        "block_size": index.block_size,
        "n_references": index.n_references,
        "branching": index.branching,
        "seed": index.seed,
        "stretch": index.mapping.stretch,
        "n_points": index.n_points,
        "bounds_lo": list(index.bounds.lo),
        "bounds_hi": list(index.bounds.hi),
        "native_inserts": index._native_inserts,
    }
    meta.update(_rmi_payload(index.model, arrays, prefix="m"))
    _write(path, meta, arrays)


def load_ml_index(path: str | Path) -> MLIndex:
    """Load an ML-Index saved by :func:`save_ml_index`."""
    with np.load(Path(path)) as data:
        meta = _read_meta(data)
        if meta.get("format") != "repro-ml-v1":
            raise ValueError(f"not a repro ML index file: {path}")
        index = MLIndex(
            block_size=meta["block_size"],
            n_references=meta["n_references"],
            branching=meta["branching"],
            seed=meta["seed"],
        )
        index.bounds = Rect(tuple(meta["bounds_lo"]), tuple(meta["bounds_hi"]))
        index.n_points = meta["n_points"]
        index._native_inserts = meta["native_inserts"]
        index.mapping = IDistanceMapping(
            references=data["references"], stretch=meta["stretch"]
        )
        index.store = _store_from_arrays(data, "", meta["block_size"])
        _restore_key_dtype(index, index.store.keys)
        index.model = _rmi_from_payload(
            meta, data, index.builder, meta["branching"], prefix="m",
            sorted_keys=index.store.keys,
        )
    return index


# ----------------------------------------------------------------------
# LISA
# ----------------------------------------------------------------------
def save_lisa_index(index: LISAIndex, path: str | Path) -> None:
    """Persist a built LISA index to ``path`` (.npz)."""
    if index.store is None or index.model is None or index._boundaries is None:
        raise ValueError("the index must be built before saving")
    assert index.bounds is not None and index._weights is not None
    arrays: dict[str, np.ndarray] = {"weights": index._weights}
    for dim, edges in enumerate(index._boundaries):
        arrays[f"boundaries{dim}"] = edges
    _store_arrays(index.store, "", arrays)
    meta = {
        "format": "repro-lisa-v1",
        "block_size": index.block_size,
        "grid_size": index.grid_size,
        "shard_size": index.shard_size,
        "n_axes": len(index._boundaries),
        "n_points": index.n_points,
        "bounds_lo": list(index.bounds.lo),
        "bounds_hi": list(index.bounds.hi),
        "native_inserts": index._native_inserts,
    }
    meta.update(_rmi_payload(index.model, arrays, prefix="m"))
    _write(path, meta, arrays)


def load_lisa_index(path: str | Path) -> LISAIndex:
    """Load a LISA index saved by :func:`save_lisa_index`."""
    with np.load(Path(path)) as data:
        meta = _read_meta(data)
        if meta.get("format") != "repro-lisa-v1":
            raise ValueError(f"not a repro LISA index file: {path}")
        index = LISAIndex(
            block_size=meta["block_size"],
            grid_size=meta["grid_size"],
            shard_size=meta["shard_size"],
        )
        index.bounds = Rect(tuple(meta["bounds_lo"]), tuple(meta["bounds_hi"]))
        index.n_points = meta["n_points"]
        index._native_inserts = meta["native_inserts"]
        index._boundaries = [
            data[f"boundaries{dim}"] for dim in range(meta["n_axes"])
        ]
        index._weights = data["weights"]
        index.store = _store_from_arrays(data, "", meta["block_size"])
        _restore_key_dtype(index, index.store.keys)
        index.model = _rmi_from_payload(meta, data, index.builder, 1, prefix="m")
    return index


# ----------------------------------------------------------------------
# Flood
# ----------------------------------------------------------------------
def save_flood_index(index: FloodIndex, path: str | Path) -> None:
    """Persist a built Flood index to ``path`` (.npz)."""
    if index._column_edges is None or index.bounds is None:
        raise ValueError("the index must be built before saving")
    arrays: dict[str, np.ndarray] = {"column_edges": index._column_edges}
    columns = []
    for c, (store, model) in enumerate(zip(index._stores, index._models)):
        if store is None or model is None:
            columns.append(None)
            continue
        _store_arrays(store, f"c{c}.", arrays)
        columns.append(_model_payload(model, f"c{c}.m", arrays))
    meta = {
        "format": "repro-flood-v1",
        "block_size": index.block_size,
        "n_columns": index.n_columns,
        "n_points": index.n_points,
        "bounds_lo": list(index.bounds.lo),
        "bounds_hi": list(index.bounds.hi),
        "columns": columns,
    }
    _write(path, meta, arrays)


def load_flood_index(path: str | Path) -> FloodIndex:
    """Load a Flood index saved by :func:`save_flood_index`."""
    with np.load(Path(path)) as data:
        meta = _read_meta(data)
        if meta.get("format") != "repro-flood-v1":
            raise ValueError(f"not a repro Flood index file: {path}")
        index = FloodIndex(
            block_size=meta["block_size"], n_columns=meta["n_columns"]
        )
        index.bounds = Rect(tuple(meta["bounds_lo"]), tuple(meta["bounds_hi"]))
        index.n_points = meta["n_points"]
        index._column_edges = data["column_edges"]
        index._stores = []
        index._models = []
        for c, payload in enumerate(meta["columns"]):
            if payload is None:
                index._stores.append(None)
                index._models.append(None)
                continue
            index._stores.append(
                _store_from_arrays(data, f"c{c}.", meta["block_size"])
            )
            index._models.append(_model_from_payload(payload, f"c{c}.m", data))
        for store in index._stores:
            if store is not None:
                _restore_key_dtype(index, store.keys)
                break
        index._fuse_columns()
    return index


# ----------------------------------------------------------------------
# RSMI
# ----------------------------------------------------------------------
def save_rsmi_index(index: RSMIIndex, path: str | Path) -> None:
    """Persist a built RSMI index to ``path`` (.npz).

    The node tree flattens in depth-first pre-order: node ``i`` stores its
    model arrays under ``n{i}.m``, its leaf store (if any) under ``n{i}s.``
    and its children as a list of node ids, so the loader rebuilds the
    exact hierarchy — including insertion-widened leaves (``inserts``) and
    the unbalanced subtrees that built-in insertion produces.
    """
    if index.root is None or index.bounds is None:
        raise ValueError("the index must be built before saving")
    arrays: dict[str, np.ndarray] = {}
    nodes: list[dict] = []

    def _visit(node: _RSMINode) -> int:
        nid = len(nodes)
        entry: dict = {
            "bounds_lo": list(node.bounds.lo),
            "bounds_hi": list(node.bounds.hi),
            "n": node.n,
            "depth": node.depth,
            "inserts": node.inserts,
            "children": None,
        }
        nodes.append(entry)  # reserve the slot first: ids are pre-order
        entry["model"] = _model_payload(node.model, f"n{nid}.m", arrays)
        if node.is_leaf:
            assert node.store is not None
            _store_arrays(node.store, f"n{nid}s.", arrays)
        else:
            entry["children"] = [
                None if child is None else _visit(child)
                for child in node.children
            ]
        return nid

    _visit(index.root)
    meta = {
        "format": "repro-rsmi-v1",
        "block_size": index.block_size,
        "leaf_capacity": index.leaf_capacity,
        "fanout": index.fanout,
        "bits": index.bits,
        "build_strategy": index.build_strategy,
        "n_points": index.n_points,
        "bounds_lo": list(index.bounds.lo),
        "bounds_hi": list(index.bounds.hi),
        "nodes": nodes,
    }
    _write(path, meta, arrays)


def load_rsmi_index(path: str | Path) -> RSMIIndex:
    """Load an RSMI index saved by :func:`save_rsmi_index`."""
    with np.load(Path(path)) as data:
        meta = _read_meta(data)
        if meta.get("format") != "repro-rsmi-v1":
            raise ValueError(f"not a repro RSMI index file: {path}")
        index = RSMIIndex(
            block_size=meta["block_size"],
            leaf_capacity=meta["leaf_capacity"],
            fanout=meta["fanout"],
            bits=meta["bits"],
            build_strategy=meta["build_strategy"],
        )
        index.bounds = Rect(tuple(meta["bounds_lo"]), tuple(meta["bounds_hi"]))
        index.n_points = meta["n_points"]
        built: list[_RSMINode] = []
        for nid, entry in enumerate(meta["nodes"]):
            node = _RSMINode(
                bounds=Rect(tuple(entry["bounds_lo"]), tuple(entry["bounds_hi"])),
                model=_model_from_payload(entry["model"], f"n{nid}.m", data),
                n=entry["n"],
                depth=entry["depth"],
                inserts=entry["inserts"],
            )
            if entry["children"] is None:
                node.store = _store_from_arrays(data, f"n{nid}s.", meta["block_size"])
            built.append(node)
        # Children ids are strictly greater than the parent's (pre-order),
        # so every referenced node already exists when wiring runs.
        for entry, node in zip(meta["nodes"], built):
            if entry["children"] is not None:
                node.children = [
                    None if cid is None else built[cid] for cid in entry["children"]
                ]
        for node in built:
            if node.store is not None:
                _restore_key_dtype(index, node.store.keys)
                break
        index.root = built[0]
    return index


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
_SAVERS = {
    ZMIndex: save_zm_index,
    MLIndex: save_ml_index,
    LISAIndex: save_lisa_index,
    FloodIndex: save_flood_index,
    RSMIIndex: save_rsmi_index,
}
_LOADERS = {
    "repro-zm-v1": load_zm_index,
    "repro-ml-v1": load_ml_index,
    "repro-lisa-v1": load_lisa_index,
    "repro-flood-v1": load_flood_index,
    "repro-rsmi-v1": load_rsmi_index,
}


def save_index(index, path: str | Path) -> None:
    """Persist any supported built index, dispatching on its type.

    Supports the store-based indices (ZM, ML, LISA, Flood) and RSMI's
    recursive node tree; anything else (traditional baselines) raises
    ``TypeError`` naming the supported set.
    """
    saver = _SAVERS.get(type(index))
    if saver is None:
        supported = ", ".join(sorted(cls.name for cls in _SAVERS))
        raise TypeError(
            f"no persistence support for {type(index).__name__}; "
            f"supported index types: {supported}"
        )
    saver(index, path)


def load_index(path: str | Path):
    """Load any index saved by :func:`save_index`, dispatching on format."""
    with np.load(Path(path)) as data:
        if "meta" not in data:
            raise ValueError(f"not a repro index file (no meta entry): {path}")
        fmt = _read_meta(data).get("format")
    loader = _LOADERS.get(fmt)
    if loader is None:
        known = ", ".join(sorted(_LOADERS))
        raise ValueError(
            f"unknown index format {fmt!r} in {path}; known formats: {known}"
        )
    return loader(path)
