"""Shared fixtures: small data sets and fast-training builders.

Tests run at reduced scale (n ~ 1-3k, ~100 epochs); correctness properties
(predict-and-scan guarantees, exactness, invariants) are scale-free.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.data import load_dataset
from repro.indices.base import OriginalBuilder
from repro.ml.trainer import TrainConfig


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No armed fault may leak between tests (the registry is process-global)."""
    from repro.faults.registry import get_fault_registry

    yield
    get_fault_registry().reset()


@pytest.fixture(scope="session")
def osm_points() -> np.ndarray:
    """A 2 000-point OSM1-like data set shared across tests."""
    return load_dataset("OSM1", 2_000)


@pytest.fixture(scope="session")
def skewed_points() -> np.ndarray:
    return load_dataset("Skewed", 2_000)


@pytest.fixture(scope="session")
def uniform_points() -> np.ndarray:
    return load_dataset("Uniform", 2_000)


@pytest.fixture()
def fast_config() -> ELSIConfig:
    """An ELSI configuration tuned for test speed."""
    return ELSIConfig(train_epochs=100, rl_steps=50, hidden_size=16)


@pytest.fixture()
def fast_train_config() -> TrainConfig:
    return TrainConfig(epochs=100)


@pytest.fixture()
def og_builder(fast_train_config) -> OriginalBuilder:
    """The no-ELSI (full-data) model builder with fast training."""
    return OriginalBuilder(train_config=fast_train_config)


@pytest.fixture()
def sp_builder(fast_config) -> ELSIModelBuilder:
    """An ELSI builder fixed to the SP method (fast, always applicable)."""
    return ELSIModelBuilder(fast_config, method="SP")
