"""Unit tests for the NumPy feed-forward network."""

import numpy as np
import pytest

from repro.ml.adam import Adam
from repro.ml.ffn import FFN


class TestConstruction:
    def test_layer_shapes(self):
        net = FFN([3, 8, 2])
        assert [w.shape for w in net.weights] == [(3, 8), (8, 2)]
        assert [b.shape for b in net.biases] == [(8,), (2,)]

    def test_n_parameters(self):
        net = FFN([1, 16, 1])
        assert net.n_parameters == 1 * 16 + 16 + 16 * 1 + 1

    def test_rejects_single_layer(self):
        with pytest.raises(ValueError):
            FFN([4])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            FFN([1, 0, 1])

    def test_seed_reproducibility(self):
        a, b = FFN([2, 4, 1], seed=7), FFN([2, 4, 1], seed=7)
        for wa, wb in zip(a.weights, b.weights):
            np.testing.assert_array_equal(wa, wb)

    def test_different_seeds_differ(self):
        a, b = FFN([2, 4, 1], seed=1), FFN([2, 4, 1], seed=2)
        assert not np.array_equal(a.weights[0], b.weights[0])


class TestForward:
    def test_output_shape(self):
        net = FFN([2, 8, 3])
        out = net.forward(np.zeros((5, 2)))
        assert out.shape == (5, 3)

    def test_1d_input_promoted(self):
        net = FFN([1, 4, 1])
        assert net.forward(np.array([0.1, 0.2])).shape == (2, 1)

    def test_predict_squeezes_single_output(self):
        net = FFN([1, 4, 1])
        assert net.predict(np.array([0.1, 0.2])).shape == (2,)

    def test_predict_keeps_multi_output(self):
        net = FFN([1, 4, 3])
        assert net.predict(np.array([0.1])).shape == (1, 3)

    def test_relu_hidden_linear_output(self):
        # With all-positive weights/bias suppressed the output can be
        # negative (linear output layer), unlike a ReLU output.
        net = FFN([1, 4, 1], seed=0)
        net.weights[1][:] = -1.0
        net.biases[1][:] = -1.0
        assert net.predict(np.array([1.0]))[0] < 0

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            FFN([1, 2, 1]).forward(np.zeros((2, 2, 2)))

    def test_callable_alias(self):
        net = FFN([1, 4, 1])
        x = np.array([0.3])
        np.testing.assert_array_equal(net(x), net.predict(x))


class TestGradients:
    def test_loss_decreases_under_adam(self):
        rng = np.random.default_rng(0)
        x = rng.random((64, 1))
        y = 2.0 * x + 0.5
        net = FFN([1, 8, 1], seed=0)
        opt = Adam(net.parameters(), lr=0.01)
        first, _ = net.loss_and_gradients(x, y)
        for _ in range(200):
            _, grads = net.loss_and_gradients(x, y)
            opt.step(grads)
        last, _ = net.loss_and_gradients(x, y)
        assert last < first / 10

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        x = rng.random((8, 2))
        y = rng.random((8, 1))
        net = FFN([2, 4, 1], seed=3)
        _, grads = net.loss_and_gradients(x, y)
        eps = 1e-6
        # Check one weight and one bias entry in each layer.
        for layer in range(net.n_layers):
            w = net.weights[layer]
            w[0, 0] += eps
            loss_plus, _ = net.loss_and_gradients(x, y)
            w[0, 0] -= 2 * eps
            loss_minus, _ = net.loss_and_gradients(x, y)
            w[0, 0] += eps
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grads[2 * layer][0, 0] == pytest.approx(numeric, abs=1e-4)

    def test_empty_batch_rejected(self):
        net = FFN([1, 2, 1])
        with pytest.raises(ValueError):
            net.loss_and_gradients(np.empty((0, 1)), np.empty((0, 1)))

    def test_loss_is_mse(self):
        net = FFN([1, 2, 1], seed=0)
        x = np.array([[0.5]])
        pred = net.forward(x)[0, 0]
        y = np.array([[pred + 3.0]])
        loss, _ = net.loss_and_gradients(x, y)
        assert loss == pytest.approx(9.0)


class TestStateDict:
    def test_round_trip(self):
        a = FFN([2, 4, 1], seed=0)
        b = FFN([2, 4, 1], seed=99)
        b.load_state_dict(a.state_dict())
        x = np.random.default_rng(0).random((3, 2))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_state_dict_is_a_copy(self):
        net = FFN([1, 2, 1], seed=0)
        state = net.state_dict()
        state["w0"][:] = 99.0
        assert not np.any(net.weights[0] == 99.0)

    def test_shape_mismatch_rejected(self):
        a = FFN([2, 4, 1])
        b = FFN([2, 8, 1])
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_copy_is_independent(self):
        a = FFN([1, 4, 1], seed=0)
        b = a.copy()
        b.weights[0][:] = 0.0
        assert not np.array_equal(a.weights[0], b.weights[0])
