"""On-disk snapshots of served indices, numbered by generation.

A serving deployment reopens indices far more often than it rebuilds them
(the ELSI premise), so the server persists each generation through
:mod:`repro.storage.persist` and reloads the latest on restart.  Writes
are atomic — the ``.npz`` is written to a temporary name in the same
directory and renamed into place — so a crash mid-save can never leave a
half-written snapshot as the latest generation.

The manager is also the recovery loader's first line of defence:

- orphaned ``.tmp`` files from a crash mid-save are swept on startup;
- a snapshot that fails to load (torn, truncated, or otherwise corrupt)
  is *quarantined* — renamed to ``gen-NNNNNN.npz.corrupt`` — and
  :meth:`load` falls back to the previous generation instead of raising,
  so one bad file never takes recovery down.  The fallback is lossless
  as long as the fallback generation's WAL is still on disk — which WAL
  compaction guarantees one generation deep by always retaining the
  previous generation's log (see :mod:`repro.serve.wal`); a fallback
  past that horizon makes ``IndexServer.from_snapshot`` come up
  ``degraded`` instead of silently missing deltas;
- :meth:`prune` refuses to delete the generation currently being served
  (:meth:`mark_serving`) or an explicitly protected one.

Fault injection: the write path passes the ``snapshot.write`` site, so
chaos tests can make saves fail or tear deterministically.
"""

from __future__ import annotations

import os
import re
import zipfile
from pathlib import Path

from repro.faults.registry import InjectedFault, fault_check
from repro.obs.metrics import get_registry
from repro.storage.persist import load_index, save_index

__all__ = ["SnapshotManager"]

_SNAPSHOT_RE = re.compile(r"^gen-(\d+)\.npz$")
_TMP_RE = re.compile(r"^\.gen-(\d+)\.tmp\.npz$")

#: Exceptions that mean "this snapshot file is unusable" (as opposed to a
#: programming error): truncated archives, bad zip members, garbage meta.
_LOAD_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    EOFError,
    zipfile.BadZipFile,
)


class SnapshotManager:
    """A directory of ``gen-NNNNNN.npz`` index snapshots."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._serving: int | None = None
        self.cleanup_tmp()

    # ------------------------------------------------------------------
    def path_for(self, generation: int) -> Path:
        return self.directory / f"gen-{generation:06d}.npz"

    def generations(self) -> list[int]:
        """Snapshot generation ids present on disk, ascending."""
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest(self) -> int | None:
        generations = self.generations()
        return generations[-1] if generations else None

    def mark_serving(self, generation: int | None) -> None:
        """Record the generation currently being served; :meth:`prune`
        will refuse to delete its snapshot."""
        self._serving = generation

    def cleanup_tmp(self) -> list[Path]:
        """Remove orphaned ``.tmp`` files left by a crash mid-save."""
        removed = []
        for entry in self.directory.iterdir():
            if _TMP_RE.match(entry.name):
                entry.unlink()
                removed.append(entry)
        return removed

    # ------------------------------------------------------------------
    def save(self, index, generation: int) -> Path:
        """Atomically persist ``index`` as snapshot ``generation``."""
        final = self.path_for(generation)
        tmp = self.directory / f".gen-{generation:06d}.tmp.npz"
        action = fault_check("snapshot.write")
        save_index(index, tmp)
        if action == "torn_write":
            # Simulated crash between the data write and its fsync: the
            # rename lands but the contents are truncated mid-file.
            with open(tmp, "r+b") as fh:
                fh.truncate(max(tmp.stat().st_size // 2, 1))
            os.replace(tmp, final)
            raise InjectedFault("torn write injected at snapshot.write")
        os.replace(tmp, final)
        return final

    def quarantine(self, generation: int) -> Path:
        """Move a bad snapshot aside as ``gen-NNNNNN.npz.corrupt``."""
        path = self.path_for(generation)
        target = path.with_suffix(path.suffix + ".corrupt")
        os.replace(path, target)
        get_registry().counter("snapshots.quarantined").inc()
        return target

    def load(self, generation: int | None = None):
        """Load snapshot ``generation`` (default: latest *loadable*).

        With no explicit generation, corrupt snapshots are quarantined
        and the loader falls back to the next-older generation; raises
        ``FileNotFoundError`` only when no snapshot loads at all.  An
        explicit ``generation`` is strict: load errors propagate.

        Returns ``(index, generation)``.
        """
        if generation is not None:
            path = self.path_for(generation)
            if not path.exists():
                raise FileNotFoundError(
                    f"no snapshot for generation {generation}: {path}"
                )
            return load_index(path), generation
        last_error: Exception | None = None
        for candidate in reversed(self.generations()):
            try:
                return load_index(self.path_for(candidate)), candidate
            except _LOAD_ERRORS as exc:
                last_error = exc
                self.quarantine(candidate)
        if last_error is not None:
            raise FileNotFoundError(
                f"no loadable snapshots in {self.directory} "
                f"(last failure: {last_error})"
            )
        raise FileNotFoundError(f"no snapshots in {self.directory}")

    def prune(self, keep: int = 3, protect: int | None = None) -> list[Path]:
        """Delete all but the newest ``keep`` snapshots; returns removals.

        The generation marked as being served (:meth:`mark_serving`) and
        ``protect`` are never deleted, whatever ``keep`` says.
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        protected = {g for g in (protect, self._serving) if g is not None}
        removed = []
        for generation in self.generations()[:-keep]:
            if generation in protected:
                continue
            path = self.path_for(generation)
            path.unlink()
            removed.append(path)
        return removed
