"""Unit tests for the Adam optimizer."""

import numpy as np
import pytest

from repro.ml.adam import Adam


def test_minimises_quadratic():
    # f(x) = (x - 3)^2, gradient 2(x - 3).
    x = np.array([0.0])
    opt = Adam([x], lr=0.05)
    for _ in range(500):
        opt.step([2.0 * (x - 3.0)])
    assert x[0] == pytest.approx(3.0, abs=1e-2)


def test_updates_in_place():
    x = np.array([1.0])
    ref = x
    Adam([x], lr=0.1).step([np.array([1.0])])
    assert ref is x
    assert x[0] != 1.0


def test_first_step_size_is_lr():
    # With bias correction, the first Adam step has magnitude ~lr.
    x = np.array([0.0])
    Adam([x], lr=0.01).step([np.array([123.0])])
    assert abs(x[0]) == pytest.approx(0.01, rel=1e-3)


def test_gradient_count_mismatch_rejected():
    x = np.array([0.0])
    opt = Adam([x])
    with pytest.raises(ValueError):
        opt.step([np.array([1.0]), np.array([1.0])])


def test_invalid_hyperparameters_rejected():
    with pytest.raises(ValueError):
        Adam([np.array([0.0])], lr=-1.0)
    with pytest.raises(ValueError):
        Adam([np.array([0.0])], beta1=1.0)


def test_reset_clears_state():
    x = np.array([0.0])
    opt = Adam([x], lr=0.01)
    opt.step([np.array([1.0])])
    opt.reset()
    assert opt._t == 0
    x2 = np.array([0.0])
    opt2 = Adam([x2], lr=0.01)
    opt.params = [x2]  # reuse the optimizer on a fresh parameter
    opt.step([np.array([1.0])])
    opt2.step([np.array([1.0])])
    assert x2[0] != 0.0


def test_multiple_parameter_arrays():
    a = np.zeros((2, 2))
    b = np.zeros(3)
    opt = Adam([a, b], lr=0.1)
    opt.step([np.ones((2, 2)), np.ones(3)])
    assert np.all(a != 0.0)
    assert np.all(b != 0.0)
