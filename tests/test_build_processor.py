"""Unit tests for the ELSI build processor (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices.base import BuildStats
from repro.spatial.rect import Rect
from repro.spatial.zcurve import zvalues


@pytest.fixture(scope="module")
def partition(osm_points):
    bounds = Rect.bounding(osm_points)
    keys = zvalues(osm_points, bounds).astype(np.float64)
    order = np.argsort(keys, kind="stable")
    map_fn = lambda pts: zvalues(pts, bounds).astype(np.float64)  # noqa: E731
    return keys[order], osm_points[order], map_fn


@pytest.fixture()
def config():
    return ELSIConfig(train_epochs=80, rl_steps=40)


class TestMethodChoice:
    @pytest.mark.parametrize("method", ["SP", "CL", "MR", "RS", "RL", "OG"])
    def test_fixed_method_used(self, partition, config, method):
        keys, pts, map_fn = partition
        builder = ELSIModelBuilder(config, method=method)
        stats = BuildStats()
        model = builder.build_model(keys, pts, stats, map_fn)
        assert model.method_name == method
        assert stats.methods_used == {method: 1}

    def test_default_without_selector_is_sp(self, config):
        builder = ELSIModelBuilder(config)
        assert builder.fixed_method == "SP"

    def test_random_choice_varies(self, partition, config):
        keys, pts, map_fn = partition
        builder = ELSIModelBuilder(config, random_choice=True)
        stats = BuildStats()
        for _ in range(8):
            builder.build_model(keys, pts, stats, map_fn)
        assert len(stats.methods_used) >= 2  # several methods get picked

    def test_inapplicable_fixed_method_falls_back(self, partition, config):
        """CL without map_fn (the LISA case) silently falls back to SP."""
        keys, pts, _map_fn = partition
        builder = ELSIModelBuilder(config, method="CL")
        stats = BuildStats()
        model = builder.build_model(keys, pts, stats, map_fn=None)
        assert model.method_name == "SP"

    def test_unknown_method_rejected(self, config):
        with pytest.raises(ValueError):
            ELSIModelBuilder(config, method="XYZ")

    def test_selector_drives_choice(self, partition, config):
        keys, pts, map_fn = partition

        class AlwaysRS:
            def select(self, n, dist_u, methods, lam, w_q):
                assert "RS" in methods
                return "RS"

        builder = ELSIModelBuilder(config, selector=AlwaysRS())
        stats = BuildStats()
        model = builder.build_model(keys, pts, stats, map_fn)
        assert model.method_name == "RS"


class TestBuildCorrectness:
    @pytest.mark.parametrize("method", ["SP", "CL", "MR", "RS", "RL", "OG"])
    def test_error_bounds_hold(self, partition, config, method):
        """Predict-and-scan guarantee regardless of the build method."""
        keys, pts, map_fn = partition
        builder = ELSIModelBuilder(config, method=method)
        model = builder.build_model(keys, pts, BuildStats(), map_fn)
        for i in range(0, len(keys), 137):
            lo, hi = model.search_range(keys[i])
            assert lo <= i < hi

    def test_mr_failure_falls_back(self, config):
        """Bimodal keys defeat MR's pool; the chain falls back to SP."""
        cfg = ELSIConfig(train_epochs=40, epsilon=0.01)
        keys = np.sort(np.concatenate([np.zeros(300), np.ones(300)]))
        pts = np.column_stack([keys, keys])
        builder = ELSIModelBuilder(cfg, method="MR")
        stats = BuildStats()
        model = builder.build_model(keys, pts, stats, None)
        assert model.method_name == "SP"
        assert stats.methods_used == {"SP": 1}

    def test_training_set_smaller_than_data(self, partition, config):
        keys, pts, map_fn = partition
        for method in ("SP", "CL", "RS", "RL"):
            stats = BuildStats()
            ELSIModelBuilder(config, method=method).build_model(keys, pts, stats, map_fn)
            assert stats.train_set_size < len(keys), method

    def test_mr_zero_training_time(self, partition, config):
        keys, pts, map_fn = partition
        from repro.core.methods.model_reuse import ModelReuseMethod

        ModelReuseMethod(
            epsilon=config.epsilon,
            hidden_size=config.hidden_size,
            train_epochs=config.train_epochs,
        ).prepare()
        stats = BuildStats()
        ELSIModelBuilder(config, method="MR").build_model(keys, pts, stats, map_fn)
        assert stats.train_seconds == 0.0  # no online training at all

    def test_empty_partition_rejected(self, config):
        builder = ELSIModelBuilder(config)
        with pytest.raises(ValueError):
            builder.build_model(np.empty(0), np.empty((0, 2)), BuildStats())

    def test_stats_components_recorded(self, partition, config):
        keys, pts, map_fn = partition
        stats = BuildStats()
        ELSIModelBuilder(config, method="RS").build_model(keys, pts, stats, map_fn)
        assert stats.train_seconds > 0
        assert stats.extra_seconds > 0
        assert stats.error_bound_seconds > 0
        assert stats.n_models == 1
