"""Unit tests for rectangle (MBR) algebra."""

import numpy as np
import pytest

from repro.spatial.rect import Rect


class TestConstruction:
    def test_unit(self):
        r = Rect.unit(3)
        assert r.ndim == 3
        assert r.area() == 1.0

    def test_bounding(self):
        pts = np.array([[0.1, 0.2], [0.5, 0.9], [0.3, 0.0]])
        r = Rect.bounding(pts)
        assert r.lo == (0.1, 0.0)
        assert r.hi == (0.5, 0.9)

    def test_centered(self):
        r = Rect.centered(np.array([0.5, 0.5]), 0.2)
        np.testing.assert_allclose(r.lo_array, [0.4, 0.4])
        np.testing.assert_allclose(r.hi_array, [0.6, 0.6])

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0, 1.0))

    def test_empty_bounding_rejected(self):
        with pytest.raises(ValueError):
            Rect.bounding(np.empty((0, 2)))

    def test_hashable(self):
        assert len({Rect.unit(2), Rect.unit(2), Rect.unit(3)}) == 2


class TestGeometry:
    def test_contains_point_boundary(self):
        r = Rect.unit(2)
        assert r.contains_point(np.array([0.0, 1.0]))
        assert not r.contains_point(np.array([1.0001, 0.5]))

    def test_contains_points_vectorised(self):
        r = Rect((0.0, 0.0), (0.5, 0.5))
        pts = np.array([[0.1, 0.1], [0.9, 0.1], [0.5, 0.5]])
        np.testing.assert_array_equal(r.contains_points(pts), [True, False, True])

    def test_intersects_touching(self):
        a = Rect((0.0, 0.0), (0.5, 0.5))
        b = Rect((0.5, 0.0), (1.0, 0.5))
        assert a.intersects(b)

    def test_disjoint(self):
        a = Rect((0.0, 0.0), (0.4, 0.4))
        b = Rect((0.6, 0.6), (1.0, 1.0))
        assert not a.intersects(b)
        assert a.intersection_area(b) == 0.0

    def test_intersection_area(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((0.5, 0.5), (1.5, 1.5))
        assert a.intersection_area(b) == pytest.approx(0.25)

    def test_union_enlargement(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, 0.0), (3.0, 1.0))
        u = a.union(b)
        assert u.lo == (0.0, 0.0)
        assert u.hi == (3.0, 1.0)
        assert a.enlargement(b) == pytest.approx(u.area() - a.area())

    def test_margin(self):
        r = Rect((0.0, 0.0), (2.0, 3.0))
        assert r.margin() == pytest.approx(5.0)

    def test_contains_rect(self):
        outer = Rect.unit(2)
        inner = Rect((0.2, 0.2), (0.8, 0.8))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_min_distance_sq(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.min_distance_sq(np.array([0.5, 0.5])) == 0.0
        assert r.min_distance_sq(np.array([2.0, 1.0])) == pytest.approx(1.0)
        assert r.min_distance_sq(np.array([2.0, 2.0])) == pytest.approx(2.0)


class TestSplitMidpoint:
    def test_covers_parent_exactly(self):
        r = Rect((0.0, 0.0), (2.0, 4.0))
        children = r.split_midpoint()
        assert len(children) == 4
        assert sum(c.area() for c in children) == pytest.approx(r.area())
        for c in children:
            assert r.contains_rect(c)

    def test_child_code_ordering(self):
        # Bit d set = upper half along dimension d.
        r = Rect.unit(2)
        children = r.split_midpoint()
        assert children[0].hi == (0.5, 0.5)  # 0b00: lower-lower
        assert children[1].lo[0] == 0.5      # 0b01: upper in dim 0
        assert children[2].lo[1] == 0.5      # 0b10: upper in dim 1
        assert children[3].lo == (0.5, 0.5)  # 0b11

    def test_3d_split(self):
        assert len(Rect.unit(3).split_midpoint()) == 8
