"""Low-overhead structured tracing: nested spans with durations + attributes.

The one API that matters is :func:`span`::

    with span("build.method_select", n=len(keys)):
        ...

When tracing is *disabled* (the default), :func:`span` returns a shared
no-op context manager after a single boolean check — cheap enough to leave
at every instrumentation site, which is what keeps the ``BENCH_core`` /
``BENCH_serve`` headline numbers within the <5 % overhead budget.  When
enabled, each span records name, start timestamp, duration, attributes,
process/thread identity, and its parent (tracked per thread), into an
in-memory ring buffer and — when a sink path is configured — a JSON-lines
file, one object per completed span.

Enabling: set ``REPRO_TRACE=/path/to/trace.jsonl`` in the environment
(picked up at import), set ``REPRO_OBS=1`` for ring-buffer-only tracing,
or call :func:`enable` programmatically.

Executor workers: spans opened on pool threads parent themselves under the
dispatching span via :meth:`Tracer.ambient`; spans opened in *process*
workers are collected with :meth:`Tracer.capture` and shipped back to the
parent as plain dicts, where :meth:`Tracer.adopt` re-parents and stores
them — see :mod:`repro.perf.executor` for the wiring.  Span ids embed the
pid, so parent and worker ids never collide.

Distributed traces: every span carries a ``trace_id`` — inherited from the
enclosing span (or the ambient context a worker was seeded with), else the
span's own id, so a trace id names the *root* of a causally-linked tree.
The shard router attaches ``(trace_id, parent_span_id, request_id)`` to
each scatter sub-request; the worker opens an ambient scope with both ids,
captures its spans, and ships them back for :meth:`Tracer.adopt` — which
stamps the caller's ``trace_id`` over the whole adopted batch — so one
request's tree spans every process that served it (see repro.shard).

The JSONL sink is line-atomic: each record is one ``os.write`` to an
``O_APPEND`` descriptor, so concurrent writers — scatter threads in one
process, or several worker processes streaming to the same file — never
interleave or tear a line.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time

__all__ = [
    "ENV_TRACE",
    "ENV_OBS",
    "SpanRecord",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "new_request_id",
    "span",
    "traced",
]

ENV_TRACE = "REPRO_TRACE"
ENV_OBS = "REPRO_OBS"

_id_counter = itertools.count(1)
_request_counter = itertools.count(1)


def _new_span_id() -> str:
    # The pid prefix keeps ids unique across fork/spawn worker processes,
    # whose counters start as copies of (or fresh from) the parent's.
    return f"{os.getpid():x}-{next(_id_counter)}"


def new_request_id() -> str:
    """A process-unique request id (attached to scatter spans so
    ``repro obs trace --request <id>`` can pull one request's tree)."""
    return f"req-{os.getpid():x}-{next(_request_counter)}"


class SpanRecord:
    """One completed span, ready for the ring buffer or a JSONL line."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attrs",
        "pid",
        "thread",
        "trace_id",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: "str | None",
        start: float,
        duration: float,
        attrs: dict,
        pid: int,
        thread: str,
        trace_id: "str | None" = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.attrs = attrs
        self.pid = pid
        self.thread = thread
        self.trace_id = trace_id

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
            "pid": self.pid,
            "thread": self.thread,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data["start"],
            duration=data["duration"],
            attrs=data.get("attrs", {}),
            pid=data.get("pid", 0),
            thread=data.get("thread", ""),
            trace_id=data.get("trace_id"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, {self.duration * 1e3:.3f}ms,"
            f" attrs={self.attrs})"
        )


class _NoopSpan:
    """Shared do-nothing span for the disabled fast path (and as the
    context manager of nested calls after a mid-span disable)."""

    __slots__ = ()
    span_id = None
    parent_id = None
    trace_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """A live span: records itself on ``__exit__``."""

    __slots__ = (
        "_tracer", "name", "attrs", "span_id", "parent_id", "trace_id",
        "_start", "_t0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = _new_span_id()
        self.parent_id: str | None = None
        self.trace_id: str | None = None
        self._start = 0.0
        self._t0 = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes to a span already in flight."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        traces = self._tracer._trace_stack()
        self.parent_id = stack[-1] if stack else None
        # A root span starts a new trace named after itself; nested spans
        # inherit, so every span in one causal tree shares one trace id.
        self.trace_id = traces[-1] if traces else self.span_id
        stack.append(self.span_id)
        traces.append(self.trace_id)
        self._start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        traces = self._tracer._trace_stack()
        if traces and traces[-1] == self.trace_id:
            traces.pop()
        if exc_info and exc_info[0] is not None:
            # Failure branches stay visible in the tree (retries, shard
            # deaths, read-only rejections) without call sites having to
            # tag them by hand.
            self.attrs.setdefault("error", getattr(exc_info[0], "__name__", "error"))
        self._tracer._record(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self._start,
                duration=duration,
                attrs=self.attrs,
                pid=os.getpid(),
                thread=threading.current_thread().name,
                trace_id=self.trace_id,
            )
        )


class _Ambient:
    """Context manager that seeds a thread's parent id — and, for
    cross-process propagation, the trace id — for spans opened inside the
    scope (executor workers, shard workers)."""

    __slots__ = ("_tracer", "_parent", "_trace")

    def __init__(
        self,
        tracer: "Tracer",
        parent_id: "str | None",
        trace_id: "str | None" = None,
    ) -> None:
        self._tracer = tracer
        self._parent = parent_id
        self._trace = trace_id if trace_id is not None else parent_id

    def __enter__(self) -> None:
        if self._parent is not None:
            self._tracer._stack().append(self._parent)
            self._tracer._trace_stack().append(self._trace)

    def __exit__(self, *exc_info) -> None:
        if self._parent is not None:
            stack = self._tracer._stack()
            if stack and stack[-1] == self._parent:
                stack.pop()
            traces = self._tracer._trace_stack()
            if traces and traces[-1] == self._trace:
                traces.pop()


class _Capture:
    """Collects spans recorded during its scope instead of publishing them.

    Used inside executor worker processes: tracing is force-enabled for
    the scope, the ring buffer and file sink are bypassed, and the caller
    ships the collected dicts back to the parent process.
    """

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self.records: list[SpanRecord] = []
        self._was_enabled = False

    def __enter__(self) -> "list[SpanRecord]":
        self._was_enabled = self._tracer._enabled
        self._tracer._enabled = True
        self._tracer._capture_sinks.append(self.records)
        return self.records

    def __exit__(self, *exc_info) -> None:
        self._tracer._capture_sinks.remove(self.records)
        self._tracer._enabled = self._was_enabled


class Tracer:
    """Owns the enabled flag, the ring buffer, and the optional file sink."""

    def __init__(self, ring_size: int = 8192) -> None:
        self._enabled = False
        self.ring_size = ring_size
        self._buffer: list[SpanRecord] = []
        self._lock = threading.Lock()
        # O_APPEND file descriptor for JSONL streaming: one os.write per
        # record keeps lines atomic under concurrent writers (threads here,
        # and other processes appending to the same path).
        self._sink: int | None = None
        self.sink_path: str | None = None
        self._local = threading.local()
        # Capture sinks are worker-process-local redirections (see _Capture);
        # a list so captures can nest (tests exercising capture-in-capture).
        self._capture_sinks: list[list[SpanRecord]] = []

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, path: "str | None" = None, ring_size: "int | None" = None) -> None:
        """Turn tracing on, optionally streaming spans to a JSONL file."""
        with self._lock:
            if ring_size is not None:
                self.ring_size = ring_size
            if path is not None and path != self.sink_path:
                if self._sink is not None:
                    os.close(self._sink)
                self._sink = os.open(
                    path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
                self.sink_path = path
            self._enabled = True

    def disable(self) -> None:
        with self._lock:
            self._enabled = False
            if self._sink is not None:
                os.close(self._sink)
                self._sink = None
            self.sink_path = None

    def reset(self) -> None:
        """Clear the ring buffer (keeps the enabled state and sink)."""
        with self._lock:
            self._buffer = []

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _trace_stack(self) -> list:
        traces = getattr(self._local, "traces", None)
        if traces is None:
            traces = self._local.traces = []
        return traces

    def current_span_id(self) -> "str | None":
        stack = self._stack()
        return stack[-1] if stack else None

    def current_trace_id(self) -> "str | None":
        traces = self._trace_stack()
        return traces[-1] if traces else None

    def span(self, name: str, **attrs):
        """A context manager recording one span (no-op when disabled)."""
        if not self._enabled:
            return _NOOP
        return _Span(self, name, attrs)

    def ambient(self, parent_id: "str | None", trace_id: "str | None" = None):
        """Seed this thread's parent id (and trace id) for spans opened
        inside the scope.  Without an explicit ``trace_id`` the parent id
        doubles as the trace id — right for a worker whose parent span is
        itself a trace root, wrong otherwise, so in-process dispatchers
        pass the current trace id through."""
        return _Ambient(self, parent_id, trace_id=trace_id)

    def capture(self):
        """Collect spans locally instead of publishing (worker processes)."""
        return _Capture(self)

    # ------------------------------------------------------------------
    def _record(self, record: SpanRecord) -> None:
        if self._capture_sinks:
            self._capture_sinks[-1].append(record)
            return
        with self._lock:
            self._buffer.append(record)
            if len(self._buffer) > self.ring_size:
                del self._buffer[: len(self._buffer) - self.ring_size]
            if self._sink is not None:
                # A single write of the whole encoded line to an O_APPEND
                # fd: concurrent writers (other threads are already
                # serialised by this lock, but other *processes* are not)
                # cannot interleave or truncate it.
                os.write(
                    self._sink,
                    (json.dumps(record.to_dict()) + "\n").encode("utf-8"),
                )

    def adopt(
        self,
        records: "list[dict] | list[SpanRecord]",
        parent_id: "str | None" = None,
        trace_id: "str | None" = None,
    ) -> None:
        """Merge spans captured in a worker back into this tracer.

        Worker-root spans (no parent over there) are re-parented under
        ``parent_id`` so the trace tree stays connected; child links within
        the worker batch are preserved as-is (ids are pid-unique).  With a
        ``trace_id``, every adopted span is stamped with it — the whole
        batch becomes part of the caller's trace, including spans that were
        roots (their own traces) inside the worker.
        """
        batch_ids = set()
        parsed: list[SpanRecord] = []
        for r in records:
            rec = r if isinstance(r, SpanRecord) else SpanRecord.from_dict(r)
            batch_ids.add(rec.span_id)
            parsed.append(rec)
        for rec in parsed:
            if rec.parent_id is None or rec.parent_id not in batch_ids:
                rec.parent_id = parent_id
            if trace_id is not None:
                rec.trace_id = trace_id
            self._record(rec)

    def spans(self) -> list[SpanRecord]:
        """A snapshot of the ring buffer (oldest first)."""
        with self._lock:
            return list(self._buffer)

    def find(self, name: str) -> list[SpanRecord]:
        """Buffered spans with the given name (test convenience)."""
        return [r for r in self.spans() if r.name == name]


#: The process-wide tracer every instrumentation site talks to.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def span(name: str, **attrs):
    """Module-level :meth:`Tracer.span` on the process-wide tracer.

    The disabled fast path is one attribute check and returns a shared
    no-op object; instrumentation sites can use this unconditionally.
    """
    if not _TRACER._enabled:
        return _NOOP
    return _Span(_TRACER, name, attrs)


def traced(name: str, **attrs):
    """Decorator form: wrap the whole function call in a span."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _TRACER._enabled:
                return fn(*args, **kwargs)
            with _TRACER.span(name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def enabled() -> bool:
    """Whether tracing is on (the guard for non-span instrumentation)."""
    return _TRACER._enabled


def enable(path: "str | None" = None, ring_size: "int | None" = None) -> None:
    _TRACER.enable(path=path, ring_size=ring_size)


def disable() -> None:
    _TRACER.disable()


# Environment activation: REPRO_TRACE=path streams to a JSONL file,
# REPRO_OBS=1 keeps spans in the ring buffer only.
_env_path = os.environ.get(ENV_TRACE)
if _env_path:
    enable(_env_path)
elif os.environ.get(ENV_OBS, "").strip() not in ("", "0"):
    enable()
