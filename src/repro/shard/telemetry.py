"""Background fleet telemetry: a scrape loop over the shard workers.

:class:`FleetTelemetry` owns one daemon thread that, every ``interval``
seconds, asks each shard worker for its ``stats`` export and ``status``
and folds the answers into a cached per-shard table.  The router's
``stats_snapshot()`` then serves :meth:`merged` — the latest per-shard
exports combined through :meth:`~repro.obs.metrics.MetricsRegistry.merge`
— instead of fanning a scrape out on every caller's thread.

Staleness is first-class: every merged view carries a
``telemetry.scrape_age_seconds{shard=...}`` gauge (seconds since that
shard last answered a scrape) and a ``telemetry.shard_up{shard=...}``
marker (1 answered its most recent scrape, 0 did not).  A dead or wedged
shard keeps its **last known** export in the merged view — counters are
history, not liveness — while its age grows and its up-marker drops to
0, which is exactly how ``/metrics`` and ``repro obs top`` show a
down shard without losing the numbers it reported while alive.

Scrapes go through the handles directly (no retry loop, no respawn): the
poller observes the fleet, it never mutates it.  Recovery stays where it
belongs — on the query path's ``auto_respawn``.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import MetricsRegistry
from repro.shard.errors import ShardTimeout, ShardUnavailable

__all__ = ["FleetTelemetry"]

#: Per-shard scrape deadline: generous enough for a busy worker, short
#: enough that one wedged shard cannot stall a whole polling tick for
#: the router-configured request timeout (often 60 s).
SCRAPE_TIMEOUT = 10.0


class FleetTelemetry:
    """Poll every shard's stats/status into a cached fleet view."""

    def __init__(self, router, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.router = router
        self.interval = float(interval)
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._born = time.monotonic()
        # {shard_id: {"export", "status", "at", "up", "error"}} — "at" is
        # the monotonic stamp of the last *successful* scrape (None until
        # one lands), so age keeps growing while a shard is down.
        self._cells: dict[int, dict] = {
            handle.shard_id: {
                "export": None, "status": None,
                "at": None, "up": False, "error": None,
            }
            for handle in router.handles
        }

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "FleetTelemetry":
        """Prime the cache with one synchronous scrape, then poll."""
        if self.running:
            return self
        self._stop.clear()
        self.scrape_now()
        self._thread = threading.Thread(
            target=self._loop, name="fleet-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(5.0, 2 * self.interval))
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scrape_now()
            except Exception:  # noqa: BLE001 - the poller must not die
                self.registry.counter("telemetry.scrape_errors").inc()

    # ------------------------------------------------------------------
    def scrape_now(self) -> None:
        """One synchronous pass over every shard (also the test hook)."""
        for handle in self.router.handles:
            sid = handle.shard_id
            try:
                export = handle.request("stats", timeout=SCRAPE_TIMEOUT)
                status = handle.request("status", timeout=SCRAPE_TIMEOUT)
            except (ShardUnavailable, ShardTimeout) as exc:
                self.registry.counter(
                    "telemetry.scrape_failures", shard=sid
                ).inc()
                with self._lock:
                    cell = self._cells.setdefault(sid, {
                        "export": None, "status": None,
                        "at": None, "up": False, "error": None,
                    })
                    cell["up"] = False
                    cell["error"] = type(exc).__name__
                continue
            self.registry.counter("telemetry.scrapes", shard=sid).inc()
            with self._lock:
                self._cells[sid] = {
                    "export": export,
                    "status": status,
                    "at": time.monotonic(),
                    "up": True,
                    "error": None,
                }

    def _snapshot_cells(self) -> "tuple[dict, float]":
        now = time.monotonic()
        with self._lock:
            return {sid: dict(cell) for sid, cell in self._cells.items()}, now

    def _age(self, cell: dict, now: float) -> float:
        at = cell.get("at")
        return now - (at if at is not None else self._born)

    # ------------------------------------------------------------------
    def merged(self) -> dict:
        """The fleet metrics export from the cache: last known per-shard
        exports merged, plus per-shard staleness/up gauges, the poller's
        own scrape counters, and the router's registry (merged last, so
        its ``slo.*`` gauges and failure counters always win ties)."""
        merged = MetricsRegistry()
        cells, now = self._snapshot_cells()
        for sid in sorted(cells):
            cell = cells[sid]
            if cell["export"]:
                merged.merge(cell["export"])
            merged.gauge("telemetry.scrape_age_seconds", shard=sid).set(
                self._age(cell, now)
            )
            merged.gauge("telemetry.shard_up", shard=sid).set(
                1.0 if cell["up"] else 0.0
            )
        merged.merge(self.registry.export())
        merged.merge(self.router.registry.export())
        return merged.export()

    def overview(self) -> dict:
        """Dashboard rows: one dict per shard (health, generation,
        queue depth, completed-request counter for qps deltas, p99,
        CPU seconds, staleness) plus a fleet verdict and the router's
        SLO snapshot — the data contract of ``repro obs top``."""
        cells, now = self._snapshot_cells()
        shards: dict[int, dict] = {}
        for sid in sorted(cells):
            cell = cells[sid]
            export = cell["export"] or {}
            status = cell["status"] or {}
            health = status.get("health") if cell["up"] else "down"
            shards[sid] = {
                "up": bool(cell["up"]),
                "health": health or "down",
                "generation": status.get("generation"),
                "n_points": status.get("n_points"),
                "scrape_age_seconds": self._age(cell, now),
                "error": cell["error"],
                "requests_completed": _series_sum(
                    export, "serve.requests_completed"
                ),
                "queue_depth": _series_sum(export, "serve.queue_depth"),
                "generation_age_seconds": _series_sum(
                    export, "serve.generation_age_seconds"
                ),
                "p99_seconds": _histogram_stat(
                    export, "serve.request_latency_seconds", "p99"
                ),
                "cpu_seconds": _series_sum(export, "worker.cpu_seconds"),
            }
        states = [s["health"] for s in shards.values()]
        if not states or all(state == "down" for state in states):
            overall = "down"
        elif all(state == "healthy" for state in states):
            overall = "healthy"
        else:
            overall = "degraded"
        return {
            "overall": overall,
            "n_shards": len(shards),
            "shards": shards,
            "slo": self.router.slo.snapshot(),
        }


# ----------------------------------------------------------------------
# Export-dict readers (an export is {name: [{labels, kind, value}, ...]})
# ----------------------------------------------------------------------
def _series_sum(export: dict, name: str) -> float:
    """Sum of every series value under ``name`` (0.0 when absent)."""
    return float(sum(entry["value"] for entry in export.get(name, ())))


def _histogram_stat(export: dict, name: str, stat: str) -> float:
    """One summary stat off the first histogram series under ``name``."""
    for entry in export.get(name, ()):
        value = entry.get("value")
        if isinstance(value, dict) and stat in value:
            return float(value[stat])
    return 0.0
