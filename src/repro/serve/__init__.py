"""The serving subsystem: micro-batched concurrent query serving.

Built indices answer requests through an :class:`IndexServer`, which
coalesces queued point/window/kNN requests into micro-batches and runs
them down the vectorised batch paths; rebuilds happen in a background
worker and swap in atomically behind a generation pointer; snapshots
persist generations through :mod:`repro.storage.persist`.
"""

from repro.serve.driver import (
    DriverResult,
    ServeWorkload,
    run_baseline,
    run_closed_loop,
)
from repro.serve.requests import KNN, POINT, WINDOW, Reply, Request
from repro.serve.server import Generation, IndexServer, ServeConfig
from repro.serve.snapshots import SnapshotManager
from repro.serve.stats import LatencyHistogram, ServerStats

__all__ = [
    "DriverResult",
    "Generation",
    "IndexServer",
    "KNN",
    "LatencyHistogram",
    "POINT",
    "Reply",
    "Request",
    "ServeConfig",
    "ServeWorkload",
    "ServerStats",
    "SnapshotManager",
    "WINDOW",
    "run_baseline",
    "run_closed_loop",
]
