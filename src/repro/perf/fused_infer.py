"""Fused batch *inference* over many same-architecture leaf models.

Fused training (:mod:`repro.perf.fused`) already collapses the per-model
epoch loops of a multi-model build into one vectorised pass; this module
does the same for the query side.  A batch query path (ZM/ML point
batches, Flood column lookups, window-corner predictions) routes each key
to one leaf model and then calls that model's FFN once per *visited
model* — at branching 16 that is up to 16 small forward passes plus the
Python dispatch around each.  The :class:`FusedInferenceEngine` stacks
the leaves' weights and biases into ``(k, fan_in, fan_out)`` tensors at
build time and answers the whole key batch with one grouped einsum per
layer: every key gathers its own model's parameters by row, so a batch
touching all 16 leaves costs the same number of NumPy calls as a batch
touching one.

Correctness is preserved the same way the fused trainer preserves it:
through the error bounds, not through bit-equality of the arithmetic.
Grouped einsum reductions may reassociate relative to the per-model BLAS
calls, so the engine re-measures each member's ``err_l``/``err_u`` under
its *own* prediction path over the member's full key set and takes the
elementwise maximum with the per-model bounds — a scan of the fused range
is then guaranteed to contain every indexed key on either path.

The engine also carries the opt-in reduced-precision mode: construct it
with ``dtype="float32"`` and the stacked parameters and normalised keys
are single precision (half the memory), with the bound re-measurement
absorbing the precision drop.  ``REPRO_DTYPE`` overrides the configured
dtype at builder construction (see :func:`resolve_dtype`).

When a model set cannot be fused the engine is simply not built and the
per-model path keeps running; :func:`fusion_rejection_reason` names the
reason and :func:`record_fusion_rejected` lands it in the
``perf.fusion_rejected`` counter (labelled ``reason=...``) so a silent
``False`` never hides why a build fell back.
"""

from __future__ import annotations

import os

import numpy as np

from repro.ml.ffn import FFN
from repro.obs.metrics import get_registry
from repro.obs.trace import enabled as _obs_enabled
from repro.obs.trace import span as _span

__all__ = [
    "ENV_DTYPE",
    "FUSION_DTYPES",
    "FusedInferenceEngine",
    "fusion_rejection_reason",
    "record_fusion_rejected",
    "resolve_dtype",
]

ENV_DTYPE = "REPRO_DTYPE"

#: Supported inference dtypes (name -> numpy dtype).
FUSION_DTYPES = {"float64": np.float64, "float32": np.float32}


def resolve_dtype(configured: str = "float64") -> str:
    """The effective inference dtype: ``REPRO_DTYPE`` over the configured one."""
    name = os.environ.get(ENV_DTYPE, "").strip() or configured
    if name not in FUSION_DTYPES:
        raise ValueError(
            f"dtype must be one of {sorted(FUSION_DTYPES)}, got {name!r}"
        )
    return name


def fusion_rejection_reason(nets: list, config=None) -> "str | None":
    """Why this model set cannot share one fused compute path (None = it can).

    Checks the inference-side requirements: at least two networks, all
    FFNs (PLA/PGM segment models have no stackable dense layers), one
    shared architecture, and one shared parameter dtype.  When a training
    ``config`` is given, full-batch training is also required — per-model
    minibatch shuffles draw from one RNG stream, which fusion cannot
    reproduce (the fused *trainer*'s extra constraint).
    """
    if len(nets) < 2:
        return "single_model"
    if config is not None and getattr(config, "batch_size", None) is not None:
        return "minibatch_config"
    if any(not isinstance(net, FFN) for net in nets):
        return "non_ffn"
    first = nets[0].layer_sizes
    if any(net.layer_sizes != first for net in nets):
        return "mixed_shapes"
    first_dtype = nets[0].weights[0].dtype
    if any(
        w.dtype != first_dtype for net in nets for w in net.weights
    ) or any(b.dtype != first_dtype for net in nets for b in net.biases):
        return "mixed_dtype"
    return None


def record_fusion_rejected(reason: str, context: str = "") -> None:
    """Count one fusion rejection in ``perf.fusion_rejected{reason=...}``.

    A single boolean check when observability is disabled, like every
    other hot-path instrumentation site.
    """
    if not _obs_enabled():
        return
    labels = {"reason": reason}
    if context:
        labels["context"] = context
    get_registry().counter("perf.fusion_rejected", **labels).inc()


class FusedInferenceEngine:
    """Stacked-parameter batch prediction over ``k`` structurally identical
    :class:`~repro.indices.base.TrainedModel` leaves.

    Parameters
    ----------
    models:
        The member models, already validated by
        :func:`fusion_rejection_reason` (use :meth:`try_build`).
    dtype:
        ``"float64"`` (default) or ``"float32"`` for the stacked
        parameters and normalised keys.

    The engine replicates :meth:`TrainedModel._positions` semantics per
    row: min-max key normalisation, the FFN forward pass, then
    ``rint(raw * (n_indexed - 1))`` clipped to ``[0, n_indexed - 1]`` —
    all with per-row model parameters gathered from the stacks.
    """

    def __init__(self, models: list, dtype: str = "float64") -> None:
        if len(models) < 2:
            raise ValueError("fused inference needs at least two models")
        if dtype not in FUSION_DTYPES:
            raise ValueError(
                f"dtype must be one of {sorted(FUSION_DTYPES)}, got {dtype!r}"
            )
        self.models = list(models)
        self.dtype_name = dtype
        self.dtype = FUSION_DTYPES[dtype]
        k = len(models)
        nets = [m.net for m in models]
        self.n_layers = nets[0].n_layers
        self.layer_sizes = list(nets[0].layer_sizes)
        self.weights = [
            np.stack([net.weights[l] for net in nets]).astype(self.dtype, copy=False)
            for l in range(self.n_layers)
        ]
        self.biases = [
            np.stack([net.biases[l] for net in nets]).astype(self.dtype, copy=False)
            for l in range(self.n_layers)
        ]
        self.key_lo = np.array([m.key_lo for m in models], dtype=self.dtype)
        spans = np.array(
            [m.key_hi - m.key_lo for m in models], dtype=np.float64
        )
        # Degenerate ranges normalise to 0, matching TrainedModel.normalise.
        self.inv_span = np.where(spans > 0.0, 1.0 / np.maximum(spans, 1e-300), 0.0).astype(
            self.dtype
        )
        self.n_indexed = np.array([m.n_indexed for m in models], dtype=np.int64)
        # Start from the members' own bounds; measure_bounds widens them to
        # cover the fused arithmetic as well.
        self.err_l = np.array([m.err_l for m in models], dtype=np.int64)
        self.err_u = np.array([m.err_u for m in models], dtype=np.int64)
        self.invocations = 0

    # ------------------------------------------------------------------
    @classmethod
    def try_build(
        cls,
        models: list,
        member_keys: "list[np.ndarray] | None" = None,
        dtype: str = "float64",
        context: str = "",
    ) -> "FusedInferenceEngine | None":
        """Build an engine when the model set is fusable, else ``None``.

        Rejections are recorded via :func:`record_fusion_rejected`.  When
        ``member_keys`` (each member's full sorted key set) is given, the
        fused error bounds are re-measured immediately so the engine is
        query-safe on return.
        """
        reason = fusion_rejection_reason([m.net for m in models])
        if reason is not None:
            record_fusion_rejected(reason, context)
            return None
        engine = cls(models, dtype=dtype)
        if member_keys is not None:
            engine.measure_bounds(member_keys)
        return engine

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return len(self.models)

    @property
    def nbytes(self) -> int:
        """Memory held by the stacked parameters (the dtype knob's target)."""
        return sum(w.nbytes for w in self.weights) + sum(
            b.nbytes for b in self.biases
        )

    # ------------------------------------------------------------------
    def _forward(self, model_idx: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Raw network outputs with per-row gathered parameters."""
        x = (keys - self.key_lo[model_idx]) * self.inv_span[model_idx]
        h = x.astype(self.dtype, copy=False)[:, None]
        last = self.n_layers - 1
        for l in range(self.n_layers):
            w = self.weights[l][model_idx]
            b = self.biases[l][model_idx]
            h = np.einsum("ni,nio->no", h, w) + b
            if l != last:
                np.maximum(h, 0.0, out=h)
        return h[:, 0]

    def predict_positions(
        self, model_idx: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Predicted sorted positions (clipped per model) for a key batch.

        ``model_idx[i]`` selects the member model answering ``keys[i]``.
        One grouped einsum per layer regardless of how many distinct
        models the batch touches — the fused hot path, traced as
        ``perf.fused_predict``.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        model_idx = np.atleast_1d(np.asarray(model_idx, dtype=np.int64))
        if len(keys) != len(model_idx):
            raise ValueError(
                f"got {len(keys)} keys for {len(model_idx)} model indices"
            )
        self.invocations += len(keys)
        with _span(
            "perf.fused_predict",
            models=self.k,
            keys=len(keys),
            dtype=self.dtype_name,
        ):
            raw = self._forward(model_idx, keys)
            n = self.n_indexed[model_idx]
            pos = np.rint(raw * (n - 1)).astype(np.int64)
            return np.clip(pos, 0, np.maximum(n - 1, 0))

    def search_ranges(
        self, model_idx: np.ndarray, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Half-open *local* scan ranges under the fused error bounds.

        Matches the per-model two-stage clipping exactly: ``lo`` lands in
        ``[0, n - 1]`` and ``hi`` in ``[1, n]``, so callers can map local
        endpoints through member position arrays without further checks.
        """
        pos = self.predict_positions(model_idx, keys)
        n = self.n_indexed[model_idx]
        lo = np.clip(pos - self.err_l[model_idx], 0, np.maximum(n - 1, 0))
        hi = np.clip(pos + self.err_u[model_idx] + 1, 1, np.maximum(n, 1))
        return lo, hi

    # ------------------------------------------------------------------
    def measure_bounds(self, member_keys: "list[np.ndarray]") -> None:
        """Re-measure error bounds under the fused prediction path.

        ``member_keys[i]`` is member ``i``'s full sorted key set.  The
        fused bounds are the elementwise maximum of the member's measured
        bounds and the fused-path misprediction extremes, so a fused scan
        range is guaranteed to contain every indexed key regardless of
        which arithmetic path produced the prediction — the same invariant
        :meth:`TrainedModel.measure_error_bounds` establishes per model.
        """
        if len(member_keys) != self.k:
            raise ValueError(
                f"got {len(member_keys)} key sets for {self.k} members"
            )
        keys = np.concatenate(
            [np.asarray(ks, dtype=np.float64) for ks in member_keys]
        )
        lengths = np.array([len(ks) for ks in member_keys], dtype=np.int64)
        if len(keys) == 0:
            return
        model_idx = np.repeat(np.arange(self.k), lengths)
        predicted = self.predict_positions(model_idx, keys)
        # Per-member local ranks: 0..len-1 within each member's partition.
        starts = np.concatenate(([0], np.cumsum(lengths)))[:-1]
        ranks = np.arange(len(keys)) - np.repeat(starts, lengths)
        over = predicted - ranks
        for i in range(self.k):
            mask = model_idx == i
            if not mask.any():
                continue
            self.err_l[i] = max(self.err_l[i], int(over[mask].max()))
            self.err_u[i] = max(self.err_u[i], int((-over[mask]).max()))
        np.maximum(self.err_l, 0, out=self.err_l)
        np.maximum(self.err_u, 0, out=self.err_u)
