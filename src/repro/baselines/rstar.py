"""RR*: a revised R*-tree (Beckmann & Seeger, SIGMOD 2009 — Section VII-A).

An insertion-built R-tree with the R*-tree improvements the revision keeps:
overlap-minimising subtree choice at the leaf level, margin-driven split
axis selection, and forced reinsertion on first overflow per level.  It is
the traditional index with the overall best query performance in the
paper's experiments, and the self-balancing insertion procedure whose
gradual cost growth Figure 15(a) shows.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.base import TraditionalIndex
from repro.baselines.rtree_common import (
    RTreeNode,
    rtree_knn,
    rtree_point_query,
    rtree_window_query,
)
from repro.spatial.rect import Rect

__all__ = ["RStarIndex"]

_REINSERT_FRACTION = 0.3
_MIN_FILL_FRACTION = 0.4


class RStarIndex(TraditionalIndex):
    """The RR* competitor index (insertion-based, self-balancing)."""

    name = "RR*"

    def __init__(self, block_size: int = 100, fanout: int = 16) -> None:
        super().__init__(block_size)
        if fanout < 4:
            raise ValueError(f"fanout must be >= 4, got {fanout}")
        self.fanout = fanout
        self.root: RTreeNode | None = None
        self._reinsert_armed: set[int] = set()

    # ------------------------------------------------------------------
    # Build = sequential insertion (the R*-tree has no bulk load)
    # ------------------------------------------------------------------
    def build(self, points: np.ndarray) -> "RStarIndex":
        pts = self._prepare_points(points)
        started = time.perf_counter()
        self.bounds = Rect.bounding(pts)
        self.root = None
        self.n_points = 0
        for p in pts:
            self.insert(p)
        self.build_seconds = time.perf_counter() - started
        return self

    def insert(self, point: np.ndarray) -> None:
        """Insert one point (the paper's Figure 15(a) operation)."""
        p = np.asarray(point, dtype=np.float64)
        if self.root is None:
            self.root = RTreeNode(mbr=Rect.from_arrays(p, p), points=p[None, :], level=0)
            self.bounds = self.root.mbr
            self.n_points = 1
            return
        # Forced reinsertion fires at most once per level per insertion.
        self._reinsert_armed = set()
        self._insert_point(p)
        self.n_points += 1
        assert self.root is not None
        self.bounds = self.root.mbr

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------
    def _insert_point(self, p: np.ndarray) -> None:
        path = self._choose_path(p)
        leaf = path[-1]
        assert leaf.points is not None
        leaf.points = np.vstack([leaf.points, p[None, :]])
        point_box = Rect.from_arrays(p, p)
        for node in path:
            node.mbr = node.mbr.union(point_box)
        self._resolve_overflow(path)

    def _choose_path(self, p: np.ndarray) -> list[RTreeNode]:
        """Root-to-leaf path by the R* ChooseSubtree criteria."""
        assert self.root is not None
        box = Rect.from_arrays(p, p)
        path = [self.root]
        node = self.root
        while not node.is_leaf:
            if node.level == 1:
                node = self._least_overlap_child(node, box)
            else:
                node = self._least_enlargement_child(node, box)
            path.append(node)
        return path

    @staticmethod
    def _least_enlargement_child(node: RTreeNode, box: Rect) -> RTreeNode:
        """Child needing the least volume enlargement (ties by area)."""
        children = node.children
        los = np.array([c.mbr.lo for c in children])
        his = np.array([c.mbr.hi for c in children])
        areas = (his - los).prod(axis=1)
        grown = (
            np.maximum(his, box.hi_array) - np.minimum(los, box.lo_array)
        ).prod(axis=1)
        best = int(np.lexsort((areas, grown - areas))[0])
        return children[best]

    @staticmethod
    def _least_overlap_child(node: RTreeNode, box: Rect) -> RTreeNode:
        """Child whose enlargement increases sibling overlap the least.

        Vectorised over the (at most fanout + 1) children: pairwise
        intersection volumes are computed by broadcasting, which is the
        per-insert hot path of the R* ChooseSubtree step.
        """
        children = node.children
        los = np.array([c.mbr.lo for c in children])
        his = np.array([c.mbr.hi for c in children])
        g_los = np.minimum(los, box.lo_array)
        g_his = np.maximum(his, box.hi_array)

        def pairwise_overlap(a_lo, a_hi):
            inter = np.minimum(a_hi[:, None, :], his[None, :, :]) - np.maximum(
                a_lo[:, None, :], los[None, :, :]
            )
            vol = np.maximum(inter, 0.0).prod(axis=2)
            np.fill_diagonal(vol, 0.0)
            return vol.sum(axis=1)

        overlap_delta = pairwise_overlap(g_los, g_his) - pairwise_overlap(los, his)
        areas = (his - los).prod(axis=1)
        enlargement = (g_his - g_los).prod(axis=1) - areas
        best = int(np.lexsort((areas, enlargement, overlap_delta))[0])
        return children[best]

    def _capacity_of(self, node: RTreeNode) -> int:
        return self.block_size if node.is_leaf else self.fanout

    @staticmethod
    def _size_of(node: RTreeNode) -> int:
        if node.is_leaf:
            return 0 if node.points is None else len(node.points)
        return len(node.children)

    def _resolve_overflow(self, path: list[RTreeNode]) -> None:
        """Handle overflowing nodes bottom-up.

        Only a split adds an entry to the parent, so overflow propagates
        strictly upward.  A forced reinsert removes entries and re-inserts
        them through fresh top-down insertions (each resolving its own
        overflows), after which this path is done.
        """
        depth = len(path) - 1
        while depth >= 0:
            node = path[depth]
            if self._size_of(node) <= self._capacity_of(node):
                return
            if depth > 0 and node.level not in self._reinsert_armed:
                self._reinsert_armed.add(node.level)
                self._forced_reinsert(node, path[:depth])
                return
            self._split(node, path[:depth])
            depth -= 1

    def _forced_reinsert(self, node: RTreeNode, ancestors: list[RTreeNode]) -> None:
        """Remove the entries farthest from the node centre and re-insert them."""
        center = node.mbr.center
        if node.is_leaf:
            assert node.points is not None
            diff = node.points - center
            dist = np.einsum("ij,ij->i", diff, diff)
            order = np.argsort(dist, kind="stable")
            keep = max(1, int(len(order) * (1.0 - _REINSERT_FRACTION)))
            reinsert = node.points[order[keep:]].copy()
            node.points = node.points[order[:keep]]
            node.recompute_mbr()
            for anc in reversed(ancestors):
                anc.recompute_mbr()
            for p in reinsert:
                self._insert_point(p)
        else:
            dist = [float(np.sum((c.mbr.center - center) ** 2)) for c in node.children]
            order = np.argsort(dist, kind="stable")
            keep = max(1, int(len(order) * (1.0 - _REINSERT_FRACTION)))
            reinsert = [node.children[i] for i in order[keep:]]
            node.children = [node.children[i] for i in order[:keep]]
            node.recompute_mbr()
            for anc in reversed(ancestors):
                anc.recompute_mbr()
            for child in reinsert:
                self._insert_subtree(child)

    def _insert_subtree(self, subtree: RTreeNode) -> None:
        """Re-attach a subtree at its original level (internal reinsert)."""
        assert self.root is not None
        target_level = subtree.level + 1
        if self.root.level < target_level:
            self._grow_root([self.root, subtree])
            return
        path = [self.root]
        node = self.root
        while node.level > target_level:
            node = self._least_enlargement_child(node, subtree.mbr)
            path.append(node)
        node.children.append(subtree)
        for anc in path:
            anc.mbr = anc.mbr.union(subtree.mbr)
        self._resolve_overflow(path)

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def _split(self, node: RTreeNode, ancestors: list[RTreeNode]) -> None:
        if node.is_leaf:
            left, right = self._split_leaf(node)
        else:
            left, right = self._split_internal(node)
        if not ancestors:
            self._grow_root([left, right])
            return
        parent = ancestors[-1]
        parent.children.remove(node)
        parent.children.extend([left, right])
        parent.recompute_mbr()

    def _grow_root(self, children: list[RTreeNode]) -> None:
        level = max(c.level for c in children) + 1
        mbr = children[0].mbr
        for c in children[1:]:
            mbr = mbr.union(c.mbr)
        self.root = RTreeNode(mbr=mbr, children=children, level=level)

    def _split_leaf(self, node: RTreeNode) -> tuple[RTreeNode, RTreeNode]:
        assert node.points is not None
        pts = node.points
        axis, split_at = self._choose_split_points(pts, self.block_size)
        order = np.argsort(pts[:, axis], kind="stable")
        left_pts = pts[order[:split_at]]
        right_pts = pts[order[split_at:]]
        left = RTreeNode(mbr=Rect.bounding(left_pts), points=left_pts, level=0)
        right = RTreeNode(mbr=Rect.bounding(right_pts), points=right_pts, level=0)
        return left, right

    @staticmethod
    def _choose_split_points(pts: np.ndarray, capacity: int) -> tuple[int, int]:
        """Vectorised R* split over raw points (the per-insert hot path).

        Same criteria as :meth:`_choose_split`: pick the axis with minimal
        summed margins over all candidate distributions, then the split
        position with minimal overlap (ties by total area).
        """
        count, d = pts.shape
        min_fill = max(1, min(int(capacity * _MIN_FILL_FRACTION), count - 1))
        positions = np.arange(min_fill, count - min_fill + 1)
        best_axis = 0
        best_margin = np.inf
        best_split = min_fill
        for axis in range(d):
            order = np.argsort(pts[:, axis], kind="stable")
            spts = pts[order]
            prefix_lo = np.minimum.accumulate(spts, axis=0)
            prefix_hi = np.maximum.accumulate(spts, axis=0)
            suffix_lo = np.minimum.accumulate(spts[::-1], axis=0)[::-1]
            suffix_hi = np.maximum.accumulate(spts[::-1], axis=0)[::-1]
            l_lo, l_hi = prefix_lo[positions - 1], prefix_hi[positions - 1]
            r_lo, r_hi = suffix_lo[positions], suffix_hi[positions]
            margins = (l_hi - l_lo).sum(axis=1) + (r_hi - r_lo).sum(axis=1)
            inter = np.maximum(
                np.minimum(l_hi, r_hi) - np.maximum(l_lo, r_lo), 0.0
            ).prod(axis=1)
            areas = (l_hi - l_lo).prod(axis=1) + (r_hi - r_lo).prod(axis=1)
            margin_sum = float(margins.sum())
            if margin_sum < best_margin:
                best_margin = margin_sum
                best_axis = axis
                # Lexicographic (overlap, area) minimum.
                candidates = np.lexsort((areas, inter))
                best_split = int(positions[candidates[0]])
        return best_axis, best_split

    def _split_internal(self, node: RTreeNode) -> tuple[RTreeNode, RTreeNode]:
        boxes = [c.mbr for c in node.children]
        axis, split_at = self._choose_split(boxes, self.fanout)
        order = np.argsort([b.center[axis] for b in boxes], kind="stable")
        left_children = [node.children[i] for i in order[:split_at]]
        right_children = [node.children[i] for i in order[split_at:]]
        left = RTreeNode(mbr=left_children[0].mbr, children=left_children, level=node.level)
        right = RTreeNode(mbr=right_children[0].mbr, children=right_children, level=node.level)
        left.recompute_mbr()
        right.recompute_mbr()
        return left, right

    @staticmethod
    def _choose_split(boxes: list[Rect], capacity: int) -> tuple[int, int]:
        """R* split: margin-minimal axis, then overlap/area-minimal position."""
        count = len(boxes)
        d = boxes[0].ndim
        min_fill = max(1, min(int(capacity * _MIN_FILL_FRACTION), count - 1))
        best_axis = 0
        best_margin = np.inf
        best_split = min_fill
        for axis in range(d):
            order = np.argsort([b.center[axis] for b in boxes], kind="stable")
            sorted_boxes = [boxes[i] for i in order]
            prefix = _running_unions(sorted_boxes)
            suffix = _running_unions(sorted_boxes[::-1])[::-1]
            margin_sum = 0.0
            axis_best = (np.inf, np.inf, min_fill)
            for split_at in range(min_fill, count - min_fill + 1):
                lbox = prefix[split_at - 1]
                rbox = suffix[split_at]
                margin_sum += lbox.margin() + rbox.margin()
                key = (lbox.intersection_area(rbox), lbox.area() + rbox.area(), split_at)
                if key < axis_best:
                    axis_best = key
            if margin_sum < best_margin:
                best_margin = margin_sum
                best_axis = axis
                best_split = int(axis_best[2])
        return best_axis, best_split

    # ------------------------------------------------------------------
    # Queries (shared R-tree algorithms)
    # ------------------------------------------------------------------
    def point_query(self, point: np.ndarray) -> bool:
        self._check_built()
        assert self.root is not None
        return rtree_point_query(self.root, point)

    def window_query(self, window: Rect) -> np.ndarray:
        self._check_built()
        assert self.root is not None
        return rtree_window_query(self.root, window)

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        self._check_built()
        assert self.root is not None
        return rtree_knn(self.root, point, k)

    def height(self) -> int:
        """Tree height (root level)."""
        self._check_built()
        assert self.root is not None
        return self.root.level


def _running_unions(boxes: list[Rect]) -> list[Rect]:
    """Prefix unions of a box list."""
    out: list[Rect] = []
    acc: Rect | None = None
    for box in boxes:
        acc = box if acc is None else acc.union(box)
        out.append(acc)
    return out
