"""Data-set substrate.

The paper evaluates on four real sets (OSM1, OSM2, TPC-H, NYC) and two
synthetic ones (Uniform, Skewed).  Real traces are not available offline, so
:mod:`repro.data.real_like` provides synthetic stand-ins that reproduce the
distributional properties each experiment exercises (see DESIGN.md §1).
:mod:`repro.data.controlled` generates sets with a *target* KS distance from
uniform, which is how the method scorer and rebuild predictor are trained
(Section VII-B2).
"""

from repro.data.controlled import dataset_with_uniform_distance
from repro.data.datasets import DATASETS, load_dataset
from repro.data.generators import gaussian_mixture, skewed, uniform

__all__ = [
    "DATASETS",
    "dataset_with_uniform_distance",
    "gaussian_mixture",
    "load_dataset",
    "skewed",
    "uniform",
]
