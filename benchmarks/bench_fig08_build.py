"""Figure 8 — index build time vs data distribution.

Builds all four traditional indices, the three reported learned indices
without ELSI (ML, LISA, RSMI), and with ELSI (ML-F, LISA-F, RSMI-F) on all
six data sets.

Paper shapes to hold: traditional indices build faster than learned-OG;
ELSI brings the learned indices down to (or below) traditional levels —
the headline 1-2 orders of magnitude reduction; Grid suffers on NYC.
"""

from repro.bench.experiments import fig08_build_times
from repro.bench.harness import format_table


def test_fig08_build_times(ctx, benchmark):
    result = benchmark.pedantic(fig08_build_times, args=(ctx,), rounds=1, iterations=1)

    print()
    index_names = list(next(iter(result.values())))
    rows = [
        [name] + [f"{result[name][i]:.3f}" for i in index_names]
        for name in result
    ]
    print(format_table(["data set"] + index_names, rows,
                       title="Figure 8: build time (s) vs data distribution"))

    speedups = []
    for name, row in result.items():
        for learned in ("ML", "LISA", "RSMI"):
            assert row[f"{learned}-F"] < row[learned], (
                f"{learned}-F should build faster than {learned} on {name}"
            )
            speedups.append(row[learned] / max(row[f"{learned}-F"], 1e-9))
    mean_speedup = sum(speedups) / len(speedups)
    print(f"\nmean ELSI build speedup: {mean_speedup:.1f}x "
          f"(paper: ~70x at n=1e8; scale-dependent)")
    assert mean_speedup > 3.0

    # ELSI-built indices land at the traditional indices' level.
    for name, row in result.items():
        fastest_traditional = min(row["Grid"], row["KDB"], row["HRR"], row["RR*"])
        slowest_traditional = max(row["Grid"], row["KDB"], row["HRR"], row["RR*"])
        for learned in ("ML-F", "LISA-F", "RSMI-F"):
            assert row[learned] < 10 * slowest_traditional, (name, learned)
