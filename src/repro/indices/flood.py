"""Flood (Nathan et al., SIGMOD 2020): a query-aware learned multi-d index.

The paper's conclusion lists "extend ELSI to support query-aware learned
indices such as Flood" as future work; this module is that extension for
the 2-d case.  Flood partitions a d-dimensional space with a grid over
d-1 dimensions and indexes each partition's points by the last dimension
with a learned CDF.  Here: the x-axis is split into ``n_columns``
equal-frequency columns; within a column points are sorted by y and a
model predicts the y-rank.

*Query awareness*: :meth:`tune` picks ``n_columns`` from a sample query
workload by minimising the estimated scan volume — wide windows favour few
columns (fewer per-column fixed costs), selective windows favour many
(tighter scans) — which is Flood's core idea in miniature.

*ELSI integration*: each column model is built through the pluggable
:class:`~repro.indices.base.ModelBuilder`, so ELSI accelerates Flood
builds exactly as it does the paper's four base indices.  Window queries
are exact: within a column the window's y-interval is contiguous in the
sort order, and scan boundaries are gallop-refined.
"""

from __future__ import annotations

import time

import numpy as np

from repro.indices.base import LearnedSpatialIndex, ModelBuilder, TrainedModel
from repro.indices.zm import locate_rank
from repro.ml.ffn import FFN
from repro.obs.query_obs import record_range_widths
from repro.obs.trace import span as _span
from repro.perf.batching import (
    batch_point_membership,
    batch_window_refine,
    cast_boundaries,
)
from repro.perf.fused_infer import FusedInferenceEngine
from repro.spatial.rect import Rect
from repro.storage.blocks import BlockStore

__all__ = ["FloodIndex"]


class FloodIndex(LearnedSpatialIndex):
    """A 2-d Flood index: x-columns + learned y-CDF per column.

    Parameters
    ----------
    n_columns:
        Number of x-axis columns (overridden by :meth:`tune`).
    """

    name = "Flood"

    def __init__(
        self,
        builder: ModelBuilder | None = None,
        block_size: int = 100,
        n_columns: int = 16,
    ) -> None:
        super().__init__(builder, block_size)
        if n_columns < 1:
            raise ValueError(f"n_columns must be >= 1, got {n_columns}")
        self.n_columns = n_columns
        self._column_edges: np.ndarray | None = None
        self._stores: list[BlockStore | None] = []
        self._models: list[TrainedModel | None] = []
        #: Fused batch-prediction engine over the column models (None when
        #: fusion was rejected, e.g. a single populated column).
        self._engine: FusedInferenceEngine | None = None
        self._col_to_midx: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Query-aware tuning (Flood's contribution)
    # ------------------------------------------------------------------
    #: Fixed cost of visiting one column, in scanned-row units (model
    #: invocations + boundary search).  This is the knob that makes
    #: column-count tuning a real trade-off: selective windows favour many
    #: columns, wide windows few.
    COLUMN_VISIT_COST = 10.0

    @staticmethod
    def estimate_cost(
        points: np.ndarray, windows: list[Rect], n_columns: int
    ) -> float:
        """Estimated per-query work for a column count.

        Each visited column pays a fixed cost (model invocations + a block
        read) plus the expected rows scanned for the window's y-range.  Few
        columns amortise the fixed cost over wide windows; many columns
        avoid scanning rows outside a selective window's x-range — Flood's
        query-aware trade-off.
        """
        n = len(points)
        edges = np.quantile(points[:, 0], np.linspace(0, 1, n_columns + 1))
        per_column = n / n_columns
        y_sorted = np.sort(points[:, 1])
        total = 0.0
        for window in windows:
            first = int(np.clip(np.searchsorted(edges, window.lo[0], "right") - 1, 0, n_columns - 1))
            last = int(np.clip(np.searchsorted(edges, window.hi[0], "left"), 0, n_columns - 1))
            visited = last - first + 1
            y_lo = np.searchsorted(y_sorted, window.lo[1], "left")
            y_hi = np.searchsorted(y_sorted, window.hi[1], "right")
            y_fraction = (y_hi - y_lo) / max(n, 1)
            total += visited * (FloodIndex.COLUMN_VISIT_COST + per_column * y_fraction)
        return total / max(len(windows), 1)

    @classmethod
    def tune(
        cls,
        points: np.ndarray,
        sample_windows: list[Rect],
        candidates: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
        builder: ModelBuilder | None = None,
        block_size: int = 100,
    ) -> "FloodIndex":
        """Pick the column count minimising estimated cost on the workload
        and return the (unbuilt) tuned index — Flood's query awareness."""
        pts = cls._prepare_points(points)
        if not sample_windows:
            raise ValueError("need at least one sample window to tune")
        best = min(candidates, key=lambda c: cls.estimate_cost(pts, sample_windows, c))
        return cls(builder=builder, block_size=block_size, n_columns=best)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def map(self, points: np.ndarray) -> np.ndarray:
        """Mapped key: column id + normalised y offset (for CDF tracking)."""
        self._check_built()
        assert self._column_edges is not None and self.bounds is not None
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        cols = self._column_of(pts[:, 0])
        y_lo, y_hi = self.bounds.lo[1], self.bounds.hi[1]
        span = max(y_hi - y_lo, 1e-12)
        offset = np.clip((pts[:, 1] - y_lo) / span, 0.0, 1.0 - 1e-12)
        return (cols + offset).astype(self.key_dtype, copy=False)

    def _column_of(self, xs: np.ndarray) -> np.ndarray:
        assert self._column_edges is not None
        inner = self._column_edges[1:-1]
        return np.clip(np.searchsorted(inner, xs, side="right"), 0, self.n_columns - 1)

    def build(self, points: np.ndarray) -> "FloodIndex":
        pts = self._prepare_points(points)
        started = time.perf_counter()
        self.bounds = Rect.bounding(pts)
        self.n_points = len(pts)
        quantiles = np.linspace(0.0, 1.0, self.n_columns + 1)
        self._column_edges = np.quantile(pts[:, 0], quantiles)
        columns = self._column_of(pts[:, 0])
        self.build_stats.prepare_seconds += time.perf_counter() - started

        # Per-column stores are laid out serially (cheap sorts), then every
        # column model builds through the builder's executor — Flood's
        # columns are independent partitions, the embarrassingly parallel
        # case the perf executor exists for.
        self._stores = []
        for c in range(self.n_columns):
            members = pts[columns == c]
            if len(members) == 0:
                self._stores.append(None)
                continue
            started = time.perf_counter()
            order = np.argsort(members[:, 1], kind="stable")
            sorted_pts = members[order]
            # Column keys are stored in the configured key dtype; query-side
            # y values pass through the same monotone cast, and the y-CDF
            # models measure their bounds over these cast keys.
            keys = sorted_pts[:, 1].astype(self.key_dtype)
            self._stores.append(
                BlockStore(sorted_pts, keys, block_size=self.block_size)
            )
            self.build_stats.prepare_seconds += time.perf_counter() - started
        partitions = [
            (store.keys, store.points) for store in self._stores if store is not None
        ]
        models = iter(
            self.builder.build_models(partitions, self.build_stats, map_fn=None)
        )
        self._models = [
            None if store is None else next(models) for store in self._stores
        ]
        if getattr(self.builder, "dtype", "float64") == "float32":
            # Column routing is a searchsorted over float64 edges, so the
            # precision drop only touches the y-CDF models; re-measuring
            # their bounds keeps predict-and-scan exact under float32.
            for store, model in zip(self._stores, self._models):
                if model is not None and isinstance(model.net, FFN):
                    model.net.astype(np.float32)
                    assert store is not None
                    model.measure_error_bounds(store.keys)
        self._fuse_columns()
        return self

    def _fuse_columns(self) -> "FusedInferenceEngine | None":
        """Stack the column models into one fused batch-prediction engine.

        Called at the end of :meth:`build` and again by the persistence
        loader (the engine is derived state, never saved).  Batch queries
        touching many columns then cost one grouped einsum per layer
        instead of one FFN forward pass per visited column.
        """
        self._engine = None
        self._col_to_midx = None
        members: list[TrainedModel] = []
        member_keys: list[np.ndarray] = []
        col_to_midx = np.full(self.n_columns, -1, dtype=np.int64)
        for c, (store, model) in enumerate(zip(self._stores, self._models)):
            if store is None or model is None:
                continue
            col_to_midx[c] = len(members)
            members.append(model)
            member_keys.append(store.keys)
        engine = FusedInferenceEngine.try_build(
            members,
            member_keys=member_keys,
            dtype=getattr(self.builder, "dtype", "float64"),
            context="flood",
        )
        if engine is not None:
            self._engine = engine
            self._col_to_midx = col_to_midx
        return engine

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def point_query(self, point: np.ndarray) -> bool:
        self._check_built()
        q = np.asarray(point, dtype=np.float64)
        column = int(self._column_of(q[:1])[0])
        store = self._stores[column]
        model = self._models[column]
        self.query_stats.queries += 1
        if store is None or model is None:
            return False
        # Predict on the cast y — the key the build measured bounds over.
        lo, hi = model.search_range(float(self.key_dtype.type(q[1])))
        pts, _keys, _ids = store.scan(lo, hi)
        self.query_stats.model_invocations += 1
        self.query_stats.points_scanned += len(pts)
        return bool(np.any(np.all(pts == q, axis=1)))

    def point_queries(self, points: np.ndarray) -> np.ndarray:
        """Vectorised batch lookup: queries grouped by column, one model
        forward pass and one fused range-gather per visited column."""
        self._check_built()
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        out = np.zeros(len(pts), dtype=bool)
        self.query_stats.queries += len(pts)
        with _span("query.point_batch", index=self.name, queries=len(pts)):
            columns = self._column_of(pts[:, 0])
            # Cast once for the whole batch: predictions and store searches
            # must both see the key-dtype y values.
            cast_y = pts[:, 1].astype(self.key_dtype, copy=False)
            all_lo = all_hi = None
            if self._engine is not None and self._col_to_midx is not None:
                # One grouped forward pass for every visited column at once;
                # rows landing in an empty column keep midx == -1 and are
                # answered False without touching the engine.
                midx = self._col_to_midx[columns]
                valid = midx >= 0
                all_lo = np.zeros(len(pts), dtype=np.int64)
                all_hi = np.zeros(len(pts), dtype=np.int64)
                if valid.any():
                    with _span(
                        "query.model_predict", index=self.name, queries=int(valid.sum())
                    ):
                        all_lo[valid], all_hi[valid] = self._engine.search_ranges(
                            midx[valid], cast_y[valid]
                        )
            for c in np.unique(columns):
                store = self._stores[c]
                model = self._models[c]
                mask = columns == c
                if store is None or model is None:
                    continue
                member_pts = pts[mask]
                keys = cast_y[mask]
                if all_lo is not None and all_hi is not None:
                    lo, hi = all_lo[mask], all_hi[mask]
                    model.invocations += int(mask.sum())
                else:
                    with _span(
                        "query.model_predict", index=self.name, queries=int(mask.sum())
                    ):
                        lo, hi = model.search_ranges(keys)
                record_range_widths(self.name, lo, hi)
                self.query_stats.model_invocations += int(mask.sum())
                self.query_stats.points_scanned += int(np.maximum(hi - lo, 0).sum())
                with _span("query.refine", index=self.name, queries=int(mask.sum())):
                    out[mask] = batch_point_membership(store, lo, hi, keys, member_pts)
        return out

    def window_query(self, window: Rect) -> np.ndarray:
        self._check_built()
        self.query_stats.queries += 1
        first = int(self._column_of(np.array([window.lo[0]]))[0])
        last = int(self._column_of(np.array([window.hi[0]]))[0])
        # Boundary y values go through the monotone key-dtype cast: the cast
        # interval brackets a superset of the true candidates over quantised
        # key columns, and the rectangle filter removes the extras.
        y_lo = self.key_dtype.type(window.lo[1])
        y_hi = self.key_dtype.type(window.hi[1])
        results: list[np.ndarray] = []
        for c in range(first, last + 1):
            store = self._stores[c]
            model = self._models[c]
            if store is None or model is None:
                continue
            lo = locate_rank(store.keys, y_lo, model.search_range(y_lo), "left")
            hi = locate_rank(store.keys, y_hi, model.search_range(y_hi), "right")
            pts, _keys, _ids = store.scan(lo, hi)
            self.query_stats.model_invocations += 2
            self.query_stats.points_scanned += len(pts)
            if len(pts):
                inside = pts[window.contains_points(pts)]
                if len(inside):
                    results.append(inside)
        if not results:
            return np.empty((0, window.ndim))
        return np.vstack(results)

    def window_queries(self, windows: "list[Rect]") -> list[np.ndarray]:
        """Batch window queries over flattened (window, column) pairs.

        Every window expands to its visited-column pairs.  Per visited
        column, *all* pairs' boundary ranks come from two batched
        ``searchsorted`` calls over the cast key column (the exact ranks
        the scalar path's model-hinted galloping search converges to — no
        model pass at all), and the scan + rectangle filter runs through
        the fused refinement kernel
        (:func:`~repro.perf.batching.batch_window_refine`).  Results match
        the scalar :meth:`window_query` exactly, concatenation order
        included (columns ascending per window).
        """
        self._check_built()
        if not windows:
            return []
        self.query_stats.queries += len(windows)
        results: list[list[np.ndarray]] = [[] for _ in windows]
        with _span("query.window_batch", index=self.name, windows=len(windows)):
            pair_win: list[int] = []
            pair_col: list[int] = []
            for wi, window in enumerate(windows):
                first = int(self._column_of(np.array([window.lo[0]]))[0])
                last = int(self._column_of(np.array([window.hi[0]]))[0])
                for c in range(first, last + 1):
                    if self._stores[c] is not None and self._models[c] is not None:
                        pair_win.append(wi)
                        pair_col.append(c)
            if not pair_win:
                return [np.empty((0, w.ndim)) for w in windows]
            wins = np.array(pair_win, dtype=np.int64)
            cols = np.array(pair_col, dtype=np.int64)
            y_lo = cast_boundaries(
                np.array([windows[w].lo[1] for w in wins]), self.key_dtype
            )
            y_hi = cast_boundaries(
                np.array([windows[w].hi[1] for w in wins]), self.key_dtype
            )
            rect_lo = np.vstack([windows[w].lo_array for w in wins])
            rect_hi = np.vstack([windows[w].hi_array for w in wins])
            with _span("query.refine", index=self.name, queries=len(wins)):
                for c in np.unique(cols):
                    store = self._stores[c]
                    assert store is not None
                    sel = np.flatnonzero(cols == c)
                    lo = np.searchsorted(store.keys, y_lo[sel], side="left")
                    hi = np.searchsorted(store.keys, y_hi[sel], side="right")
                    self.query_stats.points_scanned += int(
                        np.maximum(hi - lo, 0).sum()
                    )
                    parts = batch_window_refine(
                        store, lo, hi, rect_lo[sel], rect_hi[sel]
                    )
                    for pair, part in zip(sel, parts):
                        if len(part):
                            results[wins[pair]].append(part)
        return [
            np.vstack(chunks) if chunks else np.empty((0, windows[wi].ndim))
            for wi, chunks in enumerate(results)
        ]

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        return self._knn_by_expanding_window(point, k)

    def knn_queries(self, points: np.ndarray, k: int) -> list[np.ndarray]:
        return self._knn_by_expanding_window_batch(points, k)

    def indexed_points(self) -> np.ndarray:
        self._check_built()
        chunks = [s.points for s in self._stores if s is not None]
        return np.vstack(chunks)
