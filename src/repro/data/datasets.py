"""Named registry of the paper's six evaluation data sets, cardinality-scaled.

The paper's sets hold 100–180 M points; experiments here default to much
smaller cardinalities (the ``n`` argument) while keeping the distributional
shape.  ``load_dataset("OSM1", n=50_000)`` etc. is used by every benchmark
so paper figures can name data sets exactly as the paper does.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.generators import skewed, uniform
from repro.data.real_like import nyc_like, osm_like, tpch_like

__all__ = ["DATASETS", "load_dataset"]

# Name -> generator(n, seed).  Seeds are offset per set so "OSM1" and "OSM2"
# differ the way the paper's North/South America extracts do (OSM2 denser,
# fewer megacities — modelled by a different hub count).
DATASETS: dict[str, Callable[[int, int], np.ndarray]] = {
    "Uniform": lambda n, seed: uniform(n, seed=seed),
    "Skewed": lambda n, seed: skewed(n, s=4.0, seed=seed),
    "OSM1": lambda n, seed: osm_like(n, seed=seed, n_hubs=40),
    "OSM2": lambda n, seed: osm_like(n, seed=seed + 1, n_hubs=15),
    "TPC-H": lambda n, seed: tpch_like(n, seed=seed),
    "NYC": lambda n, seed: nyc_like(n, seed=seed),
}


def load_dataset(name: str, n: int, seed: int = 0) -> np.ndarray:
    """Generate the named data set at cardinality ``n``.

    Raises ``KeyError`` with the available names for unknown data sets.
    """
    try:
        generator = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown data set {name!r}; available: {sorted(DATASETS)}"
        ) from None
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return generator(n, seed)
