"""Unit tests for the six ELSI build methods (Section V)."""

import numpy as np
import pytest

from repro.core.methods import (
    ClusteringMethod,
    ModelReuseMethod,
    OriginalMethod,
    RandomSamplingMethod,
    ReinforcementLearningMethod,
    RepresentativeSetMethod,
    SystematicSamplingMethod,
    make_method_pool,
)
from repro.core.config import ELSIConfig
from repro.core.methods.base import MethodResult
from repro.core.methods.model_reuse import MethodFailure
from repro.spatial.cdf import ks_distance
from repro.spatial.rect import Rect
from repro.spatial.zcurve import zvalues


@pytest.fixture(scope="module")
def sorted_partition(osm_points):
    bounds = Rect.bounding(osm_points)
    keys = zvalues(osm_points, bounds).astype(np.float64)
    order = np.argsort(keys, kind="stable")
    map_fn = lambda pts: zvalues(pts, bounds).astype(np.float64)  # noqa: E731
    return keys[order], osm_points[order], map_fn


class TestMethodResult:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MethodResult(np.zeros(3), np.zeros(4), 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MethodResult(np.empty(0), np.empty(0), 0.0)


class TestSystematicSampling:
    def test_size_matches_rho(self, sorted_partition):
        keys, pts, _ = sorted_partition
        result = SystematicSamplingMethod(rho=0.01).compute_set(keys, pts, None)
        assert len(result.train_keys) == pytest.approx(0.01 * len(keys), abs=2)

    def test_pigeonhole_gap_bound(self, sorted_partition):
        """Every point's rank is within floor(1/rho) - 1 of a sampled rank
        (the Section V-A1 bound that no other sampling can beat)."""
        keys, pts, _ = sorted_partition
        rho = 0.02
        result = SystematicSamplingMethod(rho=rho).compute_set(keys, pts, None)
        n = len(keys)
        sampled_ranks = np.rint(result.train_ranks * (n - 1)).astype(int)
        step = int(1 / rho)
        for i in range(0, n, 131):
            gap = np.abs(sampled_ranks - i).min()
            assert gap <= step - 1

    def test_keys_sorted_and_ranks_match(self, sorted_partition):
        keys, pts, _ = sorted_partition
        result = SystematicSamplingMethod(rho=0.05).compute_set(keys, pts, None)
        assert np.all(np.diff(result.train_keys) >= 0)
        assert np.all((result.train_ranks >= 0) & (result.train_ranks <= 1))

    def test_last_point_included(self, sorted_partition):
        keys, pts, _ = sorted_partition
        result = SystematicSamplingMethod(rho=0.013).compute_set(keys, pts, None)
        assert result.train_keys[-1] == keys[-1]

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            SystematicSamplingMethod(rho=0.0)


class TestRandomSampling:
    def test_size(self, sorted_partition):
        keys, pts, _ = sorted_partition
        result = RandomSamplingMethod(rho=0.02, seed=0).compute_set(keys, pts, None)
        assert len(result.train_keys) == int(0.02 * len(keys))

    def test_worse_cdf_fit_than_systematic(self, sorted_partition):
        """RSP's D_S has a (weakly) larger KS distance to D than SP's —
        the paper's explanation for SP dominating RSP in Figure 7."""
        keys, pts, _ = sorted_partition
        sp = SystematicSamplingMethod(rho=0.01).compute_set(keys, pts, None)
        rsp_dists = []
        for seed in range(5):
            rsp = RandomSamplingMethod(rho=0.01, seed=seed).compute_set(keys, pts, None)
            rsp_dists.append(ks_distance(rsp.train_keys, keys, assume_sorted=True))
        sp_dist = ks_distance(sp.train_keys, keys, assume_sorted=True)
        assert sp_dist <= np.mean(rsp_dists) + 1e-9


class TestClustering:
    def test_produces_centroid_keys(self, sorted_partition):
        keys, pts, map_fn = sorted_partition
        result = ClusteringMethod(n_clusters=20, seed=0).compute_set(keys, pts, map_fn)
        assert len(result.train_keys) == 20
        assert np.all(np.diff(result.train_keys) >= 0)
        assert result.extra_seconds > 0

    def test_requires_map_fn(self, sorted_partition):
        keys, pts, _ = sorted_partition
        method = ClusteringMethod(n_clusters=5)
        assert not method.applicable(None)
        with pytest.raises(ValueError):
            method.compute_set(keys, pts, None)

    def test_clusters_capped_at_n(self):
        pts = np.random.default_rng(0).random((10, 2))
        keys = np.sort(np.random.default_rng(0).random(10))
        map_fn = lambda p: p[:, 0]  # noqa: E731
        result = ClusteringMethod(n_clusters=100).compute_set(keys, pts, map_fn)
        assert len(result.train_keys) == 10


class TestModelReuse:
    def test_returns_pretrained_state(self, sorted_partition):
        keys, pts, _ = sorted_partition
        method = ModelReuseMethod(epsilon=0.5, train_epochs=60, pool_points=64)
        result = method.compute_set(keys, pts, None)
        assert result.pretrained_state is not None
        assert "w0" in result.pretrained_state

    def test_prepare_returns_pool_size(self):
        method = ModelReuseMethod(epsilon=0.5, train_epochs=60, pool_points=64)
        n_mr = method.prepare()
        assert n_mr >= 3

    def test_smaller_epsilon_bigger_pool(self):
        small = ModelReuseMethod(epsilon=0.1, train_epochs=5, pool_points=32).prepare()
        large = ModelReuseMethod(epsilon=0.5, train_epochs=5, pool_points=32).prepare()
        assert small > large

    def test_fails_when_no_match(self):
        """A pathological CDF far from every pool member raises MethodFailure
        (the paper: too-small epsilon may reuse nothing)."""
        method = ModelReuseMethod(epsilon=0.01, train_epochs=5, pool_points=32)
        # Strongly bimodal keys: far from the one-sided two-piece family.
        keys = np.sort(np.concatenate([np.zeros(500), np.ones(500)]))
        pts = np.column_stack([keys, keys])
        with pytest.raises(MethodFailure):
            method.compute_set(keys, pts, None)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            ModelReuseMethod(epsilon=0.0)


class TestRepresentativeSet:
    def test_partition_sizes(self, sorted_partition):
        keys, pts, _ = sorted_partition
        result = RepresentativeSetMethod(beta=100).compute_set(keys, pts, None)
        # Roughly n/beta points, at least a handful.
        assert 5 <= len(result.train_keys) <= len(keys)

    def test_selected_are_real_points_with_true_ranks(self, sorted_partition):
        keys, pts, _ = sorted_partition
        result = RepresentativeSetMethod(beta=200).compute_set(keys, pts, None)
        n = len(keys)
        ranks = np.rint(result.train_ranks * (n - 1)).astype(int)
        np.testing.assert_array_equal(result.train_keys, keys[ranks])

    def test_smaller_beta_more_points(self, sorted_partition):
        keys, pts, _ = sorted_partition
        small = RepresentativeSetMethod(beta=50).compute_set(keys, pts, None)
        large = RepresentativeSetMethod(beta=500).compute_set(keys, pts, None)
        assert len(small.train_keys) > len(large.train_keys)

    def test_representative_shares_cell_with_every_point(self, sorted_partition):
        """Algorithm 2's guarantee: every data point is approximated by a
        representative in the *same* final partition, i.e. each leaf of the
        beta-capacity quadtree contributes exactly its own median-in-mapped-
        space point."""
        from repro.spatial.quadtree import QuadTree

        keys, pts, _ = sorted_partition
        beta = 100
        result = RepresentativeSetMethod(beta=beta).compute_set(keys, pts, None)
        n = len(keys)
        selected = set(np.rint(result.train_ranks * (n - 1)).astype(int).tolist())
        tree = QuadTree(pts, max_points=beta)
        for leaf in tree.leaves():
            idx = np.sort(leaf.point_indices)
            median = int(idx[len(idx) // 2])
            assert median in selected  # the cell's own median was chosen
        assert len(selected) <= len(tree.leaves())


class TestReinforcementLearning:
    def test_produces_grid_subset(self, sorted_partition):
        keys, pts, map_fn = sorted_partition
        method = ReinforcementLearningMethod(eta=4, steps=40, seed=0)
        result = method.compute_set(keys, pts, map_fn)
        assert 2 <= len(result.train_keys) <= 16
        assert np.all(np.diff(result.train_keys) >= 0)

    def test_search_improves_distance(self, sorted_partition):
        """The RL search ends at a D_S no worse than the all-cells start."""
        keys, pts, map_fn = sorted_partition
        method = ReinforcementLearningMethod(eta=6, steps=120, seed=0)
        centers = method._cell_centers(pts)
        start_keys = np.sort(np.asarray(map_fn(centers), dtype=np.float64))
        start = ks_distance(start_keys, keys, assume_sorted=True)
        result = method.compute_set(keys, pts, map_fn)
        final = ks_distance(result.train_keys, keys, assume_sorted=True)
        assert final <= start + 1e-12

    def test_requires_map_fn(self, sorted_partition):
        keys, pts, _ = sorted_partition
        method = ReinforcementLearningMethod(eta=4)
        assert not method.applicable(None)
        with pytest.raises(ValueError):
            method.compute_set(keys, pts, None)

    def test_eta_controls_budget(self, sorted_partition):
        keys, pts, map_fn = sorted_partition
        small = ReinforcementLearningMethod(eta=2, steps=20).compute_set(keys, pts, map_fn)
        assert len(small.train_keys) <= 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReinforcementLearningMethod(eta=1)
        with pytest.raises(ValueError):
            ReinforcementLearningMethod(zeta=0.0)


class TestOriginal:
    def test_identity(self, sorted_partition):
        keys, pts, _ = sorted_partition
        result = OriginalMethod().compute_set(keys, pts, None)
        np.testing.assert_array_equal(result.train_keys, keys)
        assert result.extra_seconds == 0.0


class TestMethodPool:
    def test_default_pool_order(self):
        pool = make_method_pool(ELSIConfig())
        assert [m.name for m in pool] == ["SP", "CL", "MR", "RS", "RL", "OG"]

    def test_custom_pool(self):
        pool = make_method_pool(ELSIConfig(methods=("SP", "OG")))
        assert [m.name for m in pool] == ["SP", "OG"]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_method_pool(ELSIConfig(methods=("SP", "XX")))

    def test_applicability_flags(self):
        pool = {m.name: m for m in make_method_pool(ELSIConfig(methods=("SP", "CL", "MR", "RS", "RL", "OG")))}
        needs_map = {name for name, m in pool.items() if m.requires_map_fn}
        assert needs_map == {"CL", "RL"}  # the paper's LISA restriction
