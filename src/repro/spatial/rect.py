"""Axis-aligned rectangles (minimum bounding rectangles, MBRs).

Used as query windows, R-tree node boundaries, grid cells, and quadtree
partitions.  A :class:`Rect` is immutable; all geometry works in arbitrary
dimensionality ``d >= 1`` even though the paper's experiments use d = 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["Rect"]


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box ``[lo[i], hi[i]]`` per dimension.

    ``lo`` and ``hi`` are tuples so the rectangle is hashable; helper
    constructors accept arrays.
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(f"lo has {len(self.lo)} dims but hi has {len(self.hi)}")
        if len(self.lo) == 0:
            raise ValueError("a rectangle needs at least one dimension")
        if any(l > h for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"lo must be <= hi per dimension: {self.lo} vs {self.hi}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_arrays(lo: np.ndarray, hi: np.ndarray) -> "Rect":
        """Build from two coordinate arrays."""
        return Rect(tuple(float(v) for v in lo), tuple(float(v) for v in hi))

    @staticmethod
    def unit(d: int = 2) -> "Rect":
        """The unit hypercube [0, 1]^d (the paper's data space)."""
        return Rect((0.0,) * d, (1.0,) * d)

    @staticmethod
    def bounding(points: np.ndarray) -> "Rect":
        """Tightest rectangle containing every row of ``points``."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or len(pts) == 0:
            raise ValueError("need a non-empty (n, d) array of points")
        return Rect.from_arrays(pts.min(axis=0), pts.max(axis=0))

    @staticmethod
    def centered(center: np.ndarray, side: float) -> "Rect":
        """Hypercube of side length ``side`` centred at ``center``."""
        c = np.asarray(center, dtype=np.float64)
        half = side / 2.0
        return Rect.from_arrays(c - half, c + half)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.lo)

    # cached_property works on a frozen dataclass because it writes to the
    # instance __dict__ directly; geometry getters are on every hot path.
    @cached_property
    def lo_array(self) -> np.ndarray:
        return np.asarray(self.lo, dtype=np.float64)

    @cached_property
    def hi_array(self) -> np.ndarray:
        return np.asarray(self.hi, dtype=np.float64)

    @cached_property
    def center(self) -> np.ndarray:
        return (self.lo_array + self.hi_array) / 2.0

    @property
    def extents(self) -> np.ndarray:
        return self.hi_array - self.lo_array

    def area(self) -> float:
        """Volume of the box (area when d = 2)."""
        return float(np.prod(self.extents))

    def margin(self) -> float:
        """Sum of edge lengths (the R*-tree margin criterion)."""
        return float(self.extents.sum())

    def contains_point(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies in the closed box."""
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(p >= self.lo_array) and np.all(p <= self.hi_array))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership mask for an (n, d) array."""
        pts = np.asarray(points, dtype=np.float64)
        return np.all((pts >= self.lo_array) & (pts <= self.hi_array), axis=1)

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return bool(
            np.all(other.lo_array >= self.lo_array)
            and np.all(other.hi_array <= self.hi_array)
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two closed boxes overlap (touching counts)."""
        return bool(
            np.all(self.lo_array <= other.hi_array)
            and np.all(other.lo_array <= self.hi_array)
        )

    def intersection_area(self, other: "Rect") -> float:
        """Volume of the overlap, 0 when disjoint."""
        lo = np.maximum(self.lo_array, other.lo_array)
        hi = np.minimum(self.hi_array, other.hi_array)
        sides = hi - lo
        if np.any(sides < 0):
            return 0.0
        return float(np.prod(sides))

    def union(self, other: "Rect") -> "Rect":
        """Smallest box containing both."""
        return Rect.from_arrays(
            np.minimum(self.lo_array, other.lo_array),
            np.maximum(self.hi_array, other.hi_array),
        )

    def enlargement(self, other: "Rect") -> float:
        """Volume increase needed to absorb ``other`` (R-tree insertion metric)."""
        return self.union(other).area() - self.area()

    def min_distance_sq(self, point: np.ndarray) -> float:
        """Squared distance from ``point`` to the box (0 if inside).

        This is the MINDIST bound used for best-first kNN search over
        R-tree nodes and grid cells.
        """
        p = np.asarray(point, dtype=np.float64)
        delta = np.maximum(self.lo_array - p, 0.0) + np.maximum(p - self.hi_array, 0.0)
        return float(np.dot(delta, delta))

    def split_midpoint(self) -> list["Rect"]:
        """The 2^d equal sub-boxes obtained by halving every dimension.

        This is the partitioning step of Algorithm 2 (the RS method) and of
        the quadtree substrate.  Children are ordered by the binary code of
        which halves they take (dimension 0 is the lowest bit).
        """
        mid = self.center
        children = []
        for code in range(2**self.ndim):
            lo = self.lo_array.copy()
            hi = self.hi_array.copy()
            for dim in range(self.ndim):
                if code >> dim & 1:
                    lo[dim] = mid[dim]
                else:
                    hi[dim] = mid[dim]
            children.append(Rect.from_arrays(lo, hi))
        return children
