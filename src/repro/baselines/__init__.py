"""Traditional spatial indices used as competitors (Section VII-A).

- :mod:`repro.baselines.grid` — Grid: a two-level regular grid file,
- :mod:`repro.baselines.kdb` — KDB: a kd-tree with block (B-tree style) leaves,
- :mod:`repro.baselines.hrr` — HRR: a Hilbert-curve bulk-loaded packed R-tree,
- :mod:`repro.baselines.rstar` — RR*: a revised R*-tree with forced reinsertion.

All four share the query API of :class:`repro.baselines.base.TraditionalIndex`
so the benchmark harness can treat learned and traditional indices alike.
"""

from repro.baselines.base import TraditionalIndex
from repro.baselines.grid import GridIndex
from repro.baselines.hrr import HRRIndex
from repro.baselines.kdb import KDBIndex
from repro.baselines.rstar import RStarIndex

__all__ = [
    "GridIndex",
    "HRRIndex",
    "KDBIndex",
    "RStarIndex",
    "TraditionalIndex",
]
