"""On-disk snapshots of served indices, numbered by generation.

A serving deployment reopens indices far more often than it rebuilds them
(the ELSI premise), so the server persists each generation through
:mod:`repro.storage.persist` and reloads the latest on restart.  Writes
are atomic — the ``.npz`` is written to a temporary name in the same
directory and renamed into place — so a crash mid-save can never leave a
half-written snapshot as the latest generation.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from repro.storage.persist import load_index, save_index

__all__ = ["SnapshotManager"]

_SNAPSHOT_RE = re.compile(r"^gen-(\d+)\.npz$")


class SnapshotManager:
    """A directory of ``gen-NNNNNN.npz`` index snapshots."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, generation: int) -> Path:
        return self.directory / f"gen-{generation:06d}.npz"

    def generations(self) -> list[int]:
        """Snapshot generation ids present on disk, ascending."""
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest(self) -> int | None:
        generations = self.generations()
        return generations[-1] if generations else None

    # ------------------------------------------------------------------
    def save(self, index, generation: int) -> Path:
        """Atomically persist ``index`` as snapshot ``generation``."""
        final = self.path_for(generation)
        tmp = self.directory / f".gen-{generation:06d}.tmp.npz"
        save_index(index, tmp)
        os.replace(tmp, final)
        return final

    def load(self, generation: int | None = None):
        """Load snapshot ``generation`` (default: latest).

        Returns ``(index, generation)``; raises ``FileNotFoundError`` when
        the directory holds no snapshots (or not the requested one).
        """
        if generation is None:
            generation = self.latest()
            if generation is None:
                raise FileNotFoundError(f"no snapshots in {self.directory}")
        path = self.path_for(generation)
        if not path.exists():
            raise FileNotFoundError(f"no snapshot for generation {generation}: {path}")
        return load_index(path), generation

    def prune(self, keep: int = 3) -> list[Path]:
        """Delete all but the newest ``keep`` snapshots; returns removals."""
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        removed = []
        for generation in self.generations()[:-keep]:
            path = self.path_for(generation)
            path.unlink()
            removed.append(path)
        return removed
