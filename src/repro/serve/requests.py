"""Request and reply types flowing through the serving queue.

A request is one client operation (point membership, window, kNN, or an
update) plus a :class:`Reply` — a miniature single-assignment future the
dispatcher completes once the micro-batch containing the request has been
answered.  Replies record submission/completion timestamps and the
generation that answered them, which is what the swap-under-load tests
assert on: every reply names exactly one generation, and all replies of
one micro-batch name the same one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.spatial.rect import Rect

__all__ = [
    "KNN",
    "KNN_BATCH",
    "POINT",
    "POINT_BATCH",
    "Reply",
    "Request",
    "WINDOW",
    "WINDOW_BATCH",
]

POINT = "point"
WINDOW = "window"
KNN = "knn"

#: Batch request kinds: one request carries a whole array of points (or
#: list of windows) and resolves to the corresponding array/list of
#: results — the unit a shard router scatters, where per-operation
#: Request/Reply bookkeeping would dominate the actual query work.
POINT_BATCH = "point_batch"
WINDOW_BATCH = "window_batch"
KNN_BATCH = "knn_batch"

KINDS = (POINT, WINDOW, KNN, POINT_BATCH, WINDOW_BATCH, KNN_BATCH)
BATCH_KINDS = (POINT_BATCH, WINDOW_BATCH, KNN_BATCH)


class Reply:
    """Single-assignment completion handle for one request."""

    __slots__ = (
        "_event",
        "value",
        "error",
        "generation",
        "submitted_at",
        "completed_at",
    )

    def __init__(self) -> None:
        self._event = threading.Event()
        self.value = None
        self.error: BaseException | None = None
        self.generation: int | None = None
        self.submitted_at = time.perf_counter()
        self.completed_at: float | None = None

    def resolve(self, value, generation: int) -> None:
        """Complete the reply with a result (dispatcher side)."""
        self.value = value
        self.generation = generation
        self.completed_at = time.perf_counter()
        self._event.set()

    def reject(self, error: BaseException) -> None:
        """Complete the reply with an error (dispatcher side)."""
        self.error = error
        self.completed_at = time.perf_counter()
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None):
        """Block until completed; returns the value or raises the error."""
        if not self._event.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self.error is not None:
            raise self.error
        return self.value

    @property
    def latency_seconds(self) -> float:
        """Submit-to-complete wall clock (only valid once done)."""
        assert self.completed_at is not None
        return self.completed_at - self.submitted_at


@dataclass
class Request:
    """One queued operation; exactly one payload field is meaningful.

    Scalar kinds carry ``point``/``window`` (+ ``k`` for kNN); batch kinds
    carry ``points`` (an (n, d) array) or ``windows`` (a list of Rects)
    and resolve to the whole batch's results at once.
    """

    kind: str
    point: np.ndarray | None = None
    window: Rect | None = None
    k: int = 0
    points: np.ndarray | None = None
    windows: list | None = None
    reply: Reply = field(default_factory=Reply)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.kind in (KNN, KNN_BATCH) and self.k < 1:
            raise ValueError(f"kNN requests need k >= 1, got {self.k}")
        if self.kind == WINDOW:
            if self.window is None:
                raise ValueError("window requests need a window")
        elif self.kind == WINDOW_BATCH:
            if self.windows is None:
                raise ValueError("window-batch requests need a list of windows")
        elif self.kind in (POINT_BATCH, KNN_BATCH):
            if self.points is None:
                raise ValueError(f"{self.kind} requests need a points array")
        elif self.point is None:
            raise ValueError(f"{self.kind} requests need a point")

    @property
    def size(self) -> int:
        """Operations this request represents (1 for scalar kinds)."""
        if self.kind == WINDOW_BATCH:
            return len(self.windows)
        if self.kind in (POINT_BATCH, KNN_BATCH):
            return len(self.points)
        return 1
