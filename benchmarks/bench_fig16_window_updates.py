"""Figure 16 — window queries under skewed insertion: time and recall.

Same workload as Figure 15; measures window query time and recall as the
insertion ratio grows, for the -F (no rebuild) and -R (predictor-driven
rebuild) variants plus RR*.

Paper shapes to hold: window times increase with insertions; global
rebuilds keep RSMI-R recall above ~97% while RSMI-F only stays above ~90%;
RR* recall is always 1.0.
"""

import numpy as np

from repro.bench.experiments import fig16_window_updates
from repro.bench.harness import format_table


def test_fig16_window_updates(ctx, benchmark):
    result = benchmark.pedantic(
        fig16_window_updates, args=(ctx,), rounds=1, iterations=1
    )

    print()
    ratios = [m["ratio"] for m in next(iter(result.values()))]
    for metric, fmt, title in (
        ("window_us", "{:.0f}", "Figure 16(a): window query time (us) vs insertion ratio"),
        ("recall", "{:.3f}", "Figure 16(b): window recall vs insertion ratio"),
    ):
        rows = [
            [label] + [fmt.format(m[metric]) for m in series]
            for label, series in result.items()
        ]
        print(format_table(
            ["index"] + [f"{r*100:.0f}%" for r in ratios], rows, title=title
        ))

    # RR* is exact throughout.
    assert all(m["recall"] == 1.0 for m in result["RR*"])
    # The update processor's side list keeps recall high for every variant;
    # -R variants end at least as accurate as their -F twins.
    for learned in ("ML", "RSMI", "LISA"):
        f_final = result[f"{learned}-F"][-1]["recall"]
        r_final = result[f"{learned}-R"][-1]["recall"]
        assert r_final >= f_final - 0.05, (learned, r_final, f_final)
        assert r_final > 0.85, (learned, r_final)
