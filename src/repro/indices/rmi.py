"""A recursive model index (RMI) over one-dimensional mapped keys.

ZM and ML-Index both learn the key→rank CDF with an RMI (Kraska et al.,
SIGMOD 2018): a stage-1 model routes each key to one of ``branching``
stage-2 models, and the chosen stage-2 model predicts the storage address.
Routing uses the stage-1 model's own prediction — the same computation at
build and query time — so lookups of indexed keys always reach the model
that indexed them.

Every member model is trained through a
:class:`~repro.indices.base.ModelBuilder`, which is how ELSI accelerates
multi-model indices one model at a time (Figure 3).
"""

from __future__ import annotations

import numpy as np

from repro.indices.base import BuildStats, MapFn, ModelBuilder, TrainedModel

__all__ = ["RMIModel"]


class RMIModel:
    """One- or two-stage learned CDF over a sorted key array.

    Parameters
    ----------
    builder:
        Trains each member model (ELSI's hook).
    branching:
        Number of stage-2 models; ``1`` collapses to a single model.
    min_partition_size:
        Below this cardinality the index stays single-stage regardless of
        ``branching`` (tiny stage-2 models are pure overhead).
    """

    def __init__(
        self,
        builder: ModelBuilder,
        branching: int = 1,
        min_partition_size: int = 2_000,
    ) -> None:
        if branching < 1:
            raise ValueError(f"branching must be >= 1, got {branching}")
        self.builder = builder
        self.branching = branching
        self.min_partition_size = min_partition_size
        self.stage1: TrainedModel | None = None
        self.stage2: list[TrainedModel] = []
        self._stage2_positions: list[np.ndarray] = []
        self.n = 0

    # ------------------------------------------------------------------
    def fit(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        stats: BuildStats,
        map_fn: MapFn | None = None,
    ) -> "RMIModel":
        """Train the model hierarchy over globally key-sorted data."""
        self.n = len(sorted_keys)
        if self.n == 0:
            raise ValueError("cannot fit an RMI on an empty key set")
        self.stage1 = self.builder.build_model(sorted_keys, sorted_points, stats, map_fn)
        self.stage2 = []
        self._stage2_positions = []
        if self.branching == 1 or self.n < self.min_partition_size:
            return self

        # Stage-2 leaves are independent per-partition jobs: prepare every
        # partition, then build them all through the builder's executor
        # (parallel backends overlap the fits; results stay in branch order).
        routed = self._route(sorted_keys)
        positions_per_branch = [
            np.flatnonzero(routed == branch) for branch in range(self.branching)
        ]
        partitions = [
            (sorted_keys[positions], sorted_points[positions])
            for positions in positions_per_branch
            if len(positions)
        ]
        models = iter(self.builder.build_models(partitions, stats, map_fn))
        for positions in positions_per_branch:
            # An empty branch reuses stage 1 (routing sends no key there).
            self.stage2.append(self.stage1 if len(positions) == 0 else next(models))
            self._stage2_positions.append(positions)
        return self

    def _route(self, keys: np.ndarray) -> np.ndarray:
        """Stage-2 branch per key, from the stage-1 position prediction."""
        assert self.stage1 is not None
        pos = self.stage1.predict_positions(keys)
        branch = (pos * self.branching) // max(self.n, 1)
        return np.clip(branch, 0, self.branching - 1)

    # ------------------------------------------------------------------
    @property
    def is_two_stage(self) -> bool:
        return bool(self.stage2)

    @property
    def models(self) -> list[TrainedModel]:
        """All member models (stage 1 first)."""
        assert self.stage1 is not None
        unique: list[TrainedModel] = [self.stage1]
        for m in self.stage2:
            if m is not self.stage1:
                unique.append(m)
        return unique

    @property
    def invocations(self) -> int:
        return sum(m.invocations for m in self.models)

    @property
    def max_error_width(self) -> int:
        """Worst-case ``err_l + err_u`` across member models (Table I |Error|)."""
        return max(m.error_width for m in self.models)

    def search_ranges(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`search_range` over a key batch.

        One network forward pass per stage (and per visited stage-2 model)
        instead of one per key — the throughput path for batch lookups.
        """
        assert self.stage1 is not None
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        if not self.is_two_stage:
            pos = self.stage1.predict_positions(keys)
            lo = np.maximum(pos - self.stage1.err_l, 0)
            hi = np.minimum(pos + self.stage1.err_u + 1, self.n)
            return lo, hi
        branches = self._route(keys)
        lo = np.zeros(len(keys), dtype=np.int64)
        hi = np.zeros(len(keys), dtype=np.int64)
        for branch in np.unique(branches):
            mask = branches == branch
            positions = self._stage2_positions[branch]
            model = self.stage2[branch]
            if len(positions) == 0:
                pos = self.stage1.predict_positions(keys[mask])
                lo[mask] = np.maximum(pos - self.stage1.err_l, 0)
                hi[mask] = np.minimum(pos + self.stage1.err_u + 1, self.n)
                continue
            local = model.predict_positions(keys[mask])
            lo_local = np.clip(local - model.err_l, 0, len(positions) - 1)
            hi_local = np.clip(local + model.err_u + 1, 1, len(positions))
            lo[mask] = positions[lo_local]
            hi[mask] = positions[hi_local - 1] + 1
        return lo, hi

    def search_range(self, key: float) -> tuple[int, int]:
        """Global half-open position range guaranteed to contain ``key``.

        Single-stage: the stage-1 model's own range.  Two-stage: route, get
        the stage-2 model's *local* range, then widen to the global
        positions its local endpoints map to (stage-2 point sets need not be
        globally contiguous).
        """
        assert self.stage1 is not None
        if not self.is_two_stage:
            return self.stage1.search_range(key)
        branch = int(self._route(np.array([key]))[0])
        positions = self._stage2_positions[branch]
        model = self.stage2[branch]
        if len(positions) == 0:
            return self.stage1.search_range(key)
        lo_local, hi_local = model.search_range(key)
        lo_local = max(0, min(lo_local, len(positions) - 1))
        hi_local = max(1, min(hi_local, len(positions)))
        return int(positions[lo_local]), int(positions[hi_local - 1]) + 1
