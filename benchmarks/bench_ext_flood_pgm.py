"""Extensions — the paper's future work, measured.

1. *Flood support* (conclusion: "extend ELSI to support query-aware learned
   indices such as Flood"): ELSI accelerates Flood's per-column model
   builds the same way it does the four base indices, without hurting its
   exact window queries.

2. *Theoretical error bounds* (Section IV-A: PGM-style piecewise-linear
   CDFs allow provable bounds): the PGM builder's constructed bounds vs the
   FFN builder's empirical bounds — scan width and build time.
"""

import numpy as np

from repro.bench.harness import format_table, time_call
from repro.core import ELSIModelBuilder
from repro.indices import FloodIndex, PGMBuilder, ZMIndex
from repro.queries.evaluate import brute_force_window, window_recall
from repro.queries.workload import window_workload


def test_ext_flood_with_elsi(ctx, benchmark):
    points = ctx.dataset("OSM1")
    queries = window_workload(points, ctx.scale.n_window_queries, 1e-3, seed=ctx.seed)

    def run():
        rows = []
        for label, method in (("Flood (OG)", "OG"), ("Flood-F (SP)", "SP"), ("Flood-F (RS)", "RS")):
            builder = ELSIModelBuilder(ctx.config, method=method)
            index = FloodIndex.tune(
                points, [q.window for q in queries[:20]], builder=builder
            )
            _, build_seconds = time_call(index.build, points)
            recalls = [
                window_recall(q.run(index), brute_force_window(points, q.window))
                for q in queries[:30]
            ]
            rows.append(
                {
                    "label": label,
                    "columns": index.n_columns,
                    "build_seconds": build_seconds,
                    "recall": float(np.mean(recalls)),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["config", "columns", "build (s)", "window recall"],
        [[r["label"], r["columns"], f"{r['build_seconds']:.3f}", f"{r['recall']:.3f}"] for r in rows],
        title="Extension: ELSI on the query-aware Flood index",
    ))
    by = {r["label"]: r for r in rows}
    assert by["Flood-F (SP)"]["build_seconds"] < by["Flood (OG)"]["build_seconds"]
    for r in rows:
        assert r["recall"] == 1.0  # Flood windows are exact


def test_ext_pgm_bounds(ctx, benchmark):
    points = ctx.dataset("OSM1")
    sample = points[:: max(1, len(points) // ctx.scale.n_point_queries)]

    def run():
        rows = []
        configs = [
            ("FFN (empirical)", ELSIModelBuilder(ctx.config, method="OG")),
            ("PGM eps=64", PGMBuilder(epsilon_positions=64)),
            ("PGM eps=16", PGMBuilder(epsilon_positions=16)),
        ]
        for label, builder in configs:
            index = ZMIndex(builder=builder)
            _, build_seconds = time_call(index.build, points)
            index.query_stats.reset()
            hits = sum(index.point_query(p) for p in sample)
            rows.append(
                {
                    "label": label,
                    "build_seconds": build_seconds,
                    "error_width": index.error_width,
                    "avg_scan": index.query_stats.points_scanned / len(sample),
                    "hits": hits,
                    "n_queries": len(sample),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["model", "build (s)", "|Error|", "avg scan", "found"],
        [
            [r["label"], f"{r['build_seconds']:.3f}", r["error_width"],
             f"{r['avg_scan']:.0f}", f"{r['hits']}/{r['n_queries']}"]
            for r in rows
        ],
        title="Extension: provable PGM bounds vs empirical FFN bounds (ZM)",
    ))
    by = {r["label"]: r for r in rows}
    for r in rows:
        assert r["hits"] == r["n_queries"]  # correctness everywhere
    # PGM's guaranteed bounds are far tighter than the FFN's empirical
    # worst case, and the PLA builds faster than 500-epoch training.
    assert by["PGM eps=16"]["error_width"] < by["FFN (empirical)"]["error_width"]
    assert by["PGM eps=16"]["build_seconds"] < by["FFN (empirical)"]["build_seconds"]