"""Figure 10 — point query time vs data distribution.

Average point-query latency over distribution-following lookups for the
four traditional and six learned (with/without ELSI) configurations.

Paper shapes to hold: ELSI leaves point query times essentially unchanged
(-F within a small factor of the no-ELSI index, ~14% worst case in the
paper); learned indices are competitive with the traditional ones.
"""

from repro.bench.experiments import fig10_point_query
from repro.bench.harness import format_table


def test_fig10_point_query(ctx, benchmark):
    result = benchmark.pedantic(fig10_point_query, args=(ctx,), rounds=1, iterations=1)

    print()
    index_names = list(next(iter(result.values())))
    rows = [
        [name] + [f"{result[name][i]:.1f}" for i in index_names]
        for name in result
    ]
    print(format_table(["data set"] + index_names, rows,
                       title="Figure 10: point query time (us) vs data distribution"))

    ratios = []
    for name, row in result.items():
        for learned in ("ML", "LISA", "RSMI"):
            ratios.append(row[f"{learned}-F"] / max(row[learned], 1e-9))
    mean_ratio = sum(ratios) / len(ratios)
    print(f"\nmean -F / no-ELSI point query ratio: {mean_ratio:.2f} "
          f"(paper: ~1.0, worst +14%)")
    # On average ELSI does not increase point query times materially.
    assert mean_ratio < 2.0
