"""Query workloads and evaluation.

- :mod:`repro.queries.types` — point/window/kNN query values,
- :mod:`repro.queries.workload` — generators following the data
  distribution (Section VII-G: 1 000 windows at a fraction of the data
  space, kNN with k = 25),
- :mod:`repro.queries.evaluate` — brute-force ground truth and recall.
"""

from repro.queries.evaluate import (
    brute_force_knn,
    brute_force_window,
    knn_recall,
    window_recall,
)
from repro.queries.types import KNNQuery, PointQuery, WindowQuery
from repro.queries.workload import (
    knn_workload,
    point_workload,
    window_workload,
)

__all__ = [
    "KNNQuery",
    "PointQuery",
    "WindowQuery",
    "brute_force_knn",
    "brute_force_window",
    "knn_recall",
    "knn_workload",
    "point_workload",
    "window_recall",
    "window_workload",
]
