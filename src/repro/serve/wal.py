"""Write-ahead durability for served updates.

The server's in-memory journal makes rebuild swaps lossless, but a crash
still lost every update since the last snapshot.  The
:class:`WriteAheadLog` closes that hole: every acknowledged insert/delete
is appended — and, under the default ``always`` fsync policy, fsynced —
to an append-only log *before* the server acknowledges it, so recovery is

    latest loadable snapshot  +  replay of the WAL tail

(:meth:`IndexServer.from_snapshot` drives this).  Logs rotate per
generation (``wal-NNNNNN.log`` next to the ``gen-NNNNNN.npz`` snapshots):
a generation swap starts a fresh log and *carries* the updates that
arrived during the rebuild into it (re-appended with their original
sequence numbers — the new snapshot holds only the base index, so those
records must outlive the old log).  Once the new generation's snapshot
is durably on disk, logs older than the *previous* generation are
deleted; the previous generation's log is retained so a fallback to the
previous snapshot still has its full delta.  Because a carried record
exists in two logs, :meth:`WriteAheadLog.replay_dir` deduplicates by
sequence number — the first occurrence wins.

Record framing is self-checking: ``<u32 payload-length><u32 crc32>``
followed by a JSON payload ``{"seq", "op", "p"}``.  A crash mid-append
leaves a torn record at the tail; replay stops there — by the append
protocol a torn record was never acknowledged, so dropping it is exactly
right.  A bad record with *more* valid data behind it means real
corruption, which replay reports via :class:`~repro.serve.errors.WALCorruption`
unless told to salvage the readable prefix.

Fault injection: :func:`repro.faults.fault_check` guards the append path
(site ``wal.append``) — ``torn_write`` faults write half a record and
fail, which is how the chaos tests produce torn tails deterministically.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.faults.registry import InjectedFault, fault_check
from repro.obs.metrics import get_registry
from repro.serve.errors import WALCorruption

__all__ = ["FSYNC_POLICIES", "WALRecord", "WriteAheadLog"]

FSYNC_POLICIES = ("always", "batch", "off")

_WAL_RE = re.compile(r"^wal-(\d+)\.log$")
_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

#: Upper bound on one record's payload — a corrupt length field must not
#: make replay allocate gigabytes.
_MAX_PAYLOAD = 1 << 20

INSERT = "insert"
DELETE = "delete"
_OPS = (INSERT, DELETE)


@dataclass(frozen=True)
class WALRecord:
    """One replayable update: global sequence number, op, and point."""

    seq: int
    op: str
    point: np.ndarray


def _encode(seq: int, op: str, point: np.ndarray) -> bytes:
    payload = json.dumps(
        {"seq": seq, "op": op, "p": [float(v) for v in point]}
    ).encode()
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """An append-only, generation-rotated log of acknowledged updates.

    Parameters
    ----------
    directory:
        Where ``wal-NNNNNN.log`` files live (usually the snapshot
        directory).  Created if missing.
    generation:
        The generation whose log to open; appends go to its file (in
        append mode, so reopening after recovery extends the same log).
    fsync_policy:
        ``always`` — fsync every append before returning (an
        acknowledged update survives an OS crash); ``batch`` — fsync
        every ``batch_every`` appends (bounded loss window, much
        cheaper); ``off`` — OS-buffered writes only (survives process
        crashes, not machine crashes).
    """

    def __init__(
        self,
        directory: str | Path,
        generation: int = 0,
        fsync_policy: str = "always",
        batch_every: int = 64,
    ) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, got {fsync_policy!r}"
            )
        if batch_every < 1:
            raise ValueError(f"batch_every must be >= 1, got {batch_every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync_policy
        self.batch_every = batch_every
        self._appends_counter = get_registry().counter("wal.appends")
        self._unsynced = 0
        # Sequence numbers are global across every log in the directory,
        # so replay order is well defined across rotations and recoveries.
        self._seq = 0
        self._depth = 0
        for gen in self.generations():
            for record in self.replay_file(self.path_for(gen), salvage=True):
                self._seq = max(self._seq, record.seq)
        self.generation = int(generation)
        self._file = open(self.path_for(self.generation), "ab")
        self._depth = len(
            self.replay_file(self.path_for(self.generation), salvage=True)
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, generation: int) -> Path:
        return self.directory / f"wal-{generation:06d}.log"

    @property
    def path(self) -> Path:
        return self.path_for(self.generation)

    @staticmethod
    def generations_in(directory: str | Path) -> list[int]:
        """Generation ids with a log file in ``directory``, ascending."""
        directory = Path(directory)
        if not directory.exists():
            return []
        found = []
        for entry in directory.iterdir():
            match = _WAL_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def generations(self) -> list[int]:
        """Generation ids with a log file on disk, ascending."""
        return self.generations_in(self.directory)

    @property
    def depth(self) -> int:
        """Records in the current generation's log (replay backlog)."""
        return self._depth

    @property
    def last_seq(self) -> int:
        return self._seq

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self,
        op: str,
        point: np.ndarray,
        seq: "int | None" = None,
        sync: bool = True,
    ) -> int:
        """Durably record one update; returns its sequence number.

        Raises before the caller acknowledges the update, so a failed or
        torn append is never visible to clients as accepted.

        ``seq`` re-records an already-sequenced update under its original
        number (a *carry* across a rotation — see the module docs; replay
        deduplicates, first occurrence wins).  ``sync=False`` skips the
        per-append fsync so a run of carries can be flushed with one
        :meth:`sync` call.
        """
        if op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}, got {op!r}")
        if self._file.closed:
            raise ValueError("write-ahead log is closed")
        if seq is None:
            seq = self._seq + 1
        record = _encode(seq, op, np.asarray(point, dtype=np.float64))
        action = fault_check("wal.append")
        if action == "torn_write":
            # Crash mid-write: half the record reaches the OS, the append
            # fails — replay must drop the torn tail.
            self._file.write(record[: max(len(record) // 2, 1)])
            self._file.flush()
            raise InjectedFault("torn write injected at wal.append")
        self._file.write(record)
        self._file.flush()
        if not sync:
            self._unsynced += 1
        elif self.fsync_policy == "always":
            os.fsync(self._file.fileno())
        elif self.fsync_policy == "batch":
            self._unsynced += 1
            if self._unsynced >= self.batch_every:
                os.fsync(self._file.fileno())
                self._unsynced = 0
        self._seq = max(self._seq, seq)
        self._depth += 1
        self._appends_counter.inc()
        return seq

    def sync(self) -> None:
        """Flush and fsync whatever has been appended so far."""
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._unsynced = 0

    # ------------------------------------------------------------------
    # Rotation and pruning
    # ------------------------------------------------------------------
    def rotate(self, generation: int) -> None:
        """Close the current log and start ``generation``'s (fresh deltas
        against the new generation's base)."""
        self.sync()
        self._file.close()
        self.generation = int(generation)
        self._file = open(self.path_for(self.generation), "ab")
        self._depth = 0

    def remove_through(self, generation: int) -> list[Path]:
        """Delete logs for generations **before** ``generation``.

        Call only once every snapshot from ``generation`` on is durably
        saved.  The server compacts with ``generation = current - 1`` so
        the previous generation's log survives: a fallback to the
        previous snapshot (after quarantining a corrupt newest one)
        still has the full delta to replay.
        """
        removed = []
        for gen in self.generations():
            if gen < generation and gen != self.generation:
                path = self.path_for(gen)
                path.unlink()
                removed.append(path)
        return removed

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    @classmethod
    def replay_file(cls, path: str | Path, salvage: bool = False) -> list[WALRecord]:
        """Decode one log file's records in append order.

        A torn/corrupt record at the physical tail is dropped silently
        (it was never acknowledged).  A bad record *followed by more
        data* is real corruption: raises :class:`WALCorruption`, or —
        with ``salvage=True`` — keeps the valid prefix and counts the
        loss on the ``wal.corrupt_records`` metric.
        """
        path = Path(path)
        records: list[WALRecord] = []
        if not path.exists():
            return records
        data = path.read_bytes()
        offset = 0
        while offset < len(data):
            header = data[offset : offset + _HEADER.size]
            if len(header) < _HEADER.size:
                break  # torn header at the tail: the crash signature
            length, crc = _HEADER.unpack(header)
            corrupt = None
            if length > _MAX_PAYLOAD:
                corrupt = f"implausible record length {length}"
            else:
                payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
                if len(payload) < length:
                    break  # torn payload at the tail: never acknowledged
                if zlib.crc32(payload) != crc:
                    corrupt = "crc mismatch"
            if corrupt is not None:
                # The record is physically complete but wrong — that is
                # disk corruption, not a crash artefact.
                if salvage:
                    get_registry().counter("wal.corrupt_records").inc()
                    break
                raise WALCorruption(f"{corrupt} at byte {offset} of {path}")
            try:
                entry = json.loads(payload.decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                if salvage:
                    get_registry().counter("wal.corrupt_records").inc()
                    break
                raise WALCorruption(
                    f"undecodable payload at byte {offset} of {path}"
                ) from exc
            records.append(
                WALRecord(
                    seq=int(entry["seq"]),
                    op=str(entry["op"]),
                    point=np.asarray(entry["p"], dtype=np.float64),
                )
            )
            offset += _HEADER.size + length
        return records

    @classmethod
    def replay_dir(
        cls, directory: str | Path, from_generation: int = 0, salvage: bool = False
    ) -> list[WALRecord]:
        """All records from generation ``from_generation`` on, in order
        (ascending generation, then append order within each log).

        Records carried across a rotation exist in two logs under the
        same sequence number; only the first occurrence is returned.
        """
        directory = Path(directory)
        records: list[WALRecord] = []
        seen: set[int] = set()
        for gen in cls.generations_in(directory):
            if gen < from_generation:
                continue
            for record in cls.replay_file(
                directory / f"wal-{gen:06d}.log", salvage=salvage
            ):
                if record.seq in seen:
                    continue
                seen.add(record.seq)
                records.append(record)
        return records
