"""The Adam optimizer (Kingma & Ba), used for all FFN training in ELSI.

The paper trains every FFN with Adam at a learning rate of 0.01
(Section VII-B1); those are the defaults here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Adam"]


class Adam:
    """Adam over a fixed list of parameter arrays (updated in place).

    Parameters
    ----------
    params:
        The arrays to optimise.  They are mutated in place by :meth:`step`
        so that the owning model sees the updates directly.
    lr, beta1, beta2, eps:
        Standard Adam hyperparameters; ``lr=0.01`` per the paper.
    """

    def __init__(
        self,
        params: list[np.ndarray],
        lr: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {beta1}, {beta2}")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        """Apply one Adam update given gradients aligned with ``params``."""
        if len(grads) != len(self.params):
            raise ValueError(
                f"got {len(grads)} gradients for {len(self.params)} parameters"
            )
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        """Clear the optimizer state (moments and step counter)."""
        for m in self._m:
            m.fill(0.0)
        for v in self._v:
            v.fill(0.0)
        self._t = 0
