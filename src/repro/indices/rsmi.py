"""RSMI (Qi et al., PVLDB 2020): recursive spatial model index.

RSMI builds a hierarchy of space partitions: each node maps its points to a
space-filling-curve order *local to the node's bounding box*, learns a model
over that order, and routes points to ``fanout`` children by the model's own
prediction.  Because routing at query time repeats the build-time
computation exactly, point queries of indexed points always reach the right
leaf.  Window (and hence kNN) queries are *approximate*: the per-node models
are not monotone, so the child range predicted for a window's corner keys
can miss a child holding a matching point — this is the mechanism behind the
sub-100 % recall the paper reports for RSMI (Figure 12(b)).

Every node model is trained through the pluggable
:class:`~repro.indices.base.ModelBuilder`, which is exactly the multi-model
scenario Figure 3 illustrates ELSI accelerating (models M_{0,0}, M_{1,0},
M_{1,1} built one at a time).

Build strategies.  The default ``"level"`` strategy restructures the
recursion into level-wise frontiers: every sibling subtree's model fit at a
given depth is an independent job, dispatched as one
:meth:`~repro.indices.base.ModelBuilder.build_models` call per level
through the builder's executor (``perf.map`` spans under each
``rsmi.fit_level``).  The trees and predictions are identical to the
``"recursive"`` reference strategy — node preparation stays in tree order
and every fit job is a pure function of its partition — so the strategies
are interchangeable and parity-tested.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.indices.base import (
    BuildStats,
    LearnedSpatialIndex,
    ModelBuilder,
    TrainedModel,
)
from repro.ml.ffn import FFN
from repro.obs.trace import span as _span
from repro.spatial.rect import Rect
from repro.spatial.zcurve import zvalues
from repro.storage.blocks import BlockStore

__all__ = ["RSMIIndex"]

BUILD_STRATEGIES = ("level", "recursive")


@dataclass
class _Node:
    """One RSMI partition: a model plus either children or a leaf store."""

    bounds: Rect
    model: TrainedModel
    n: int
    children: list["_Node | None"] = field(default_factory=list)
    store: BlockStore | None = None
    depth: int = 0
    #: Built-in insertions into this leaf since its model was trained;
    #: scan ranges widen by this count (no retraining on insert).
    inserts: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.store is not None


class RSMIIndex(LearnedSpatialIndex):
    """The RSMI learned spatial index.

    Parameters
    ----------
    leaf_capacity:
        Partitions at or below this size become leaves.
    fanout:
        Children per internal node.
    bits:
        Morton resolution for the per-node local curve.
    build_strategy:
        ``"level"`` (default) fits all sibling subtrees of one depth as a
        single ``build_models`` dispatch per level (executor-parallel);
        ``"recursive"`` is the depth-first reference.  Both produce the
        same tree and the same predictions.
    """

    name = "RSMI"

    def __init__(
        self,
        builder: ModelBuilder | None = None,
        block_size: int = 100,
        leaf_capacity: int = 2_000,
        fanout: int = 4,
        bits: int = 16,
        build_strategy: str = "level",
    ) -> None:
        super().__init__(builder, block_size)
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if build_strategy not in BUILD_STRATEGIES:
            raise ValueError(
                f"build_strategy must be one of {BUILD_STRATEGIES}, "
                f"got {build_strategy!r}"
            )
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.bits = bits
        self.build_strategy = build_strategy
        self.root: _Node | None = None

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, points: np.ndarray) -> "RSMIIndex":
        pts = self._prepare_points(points)
        self.bounds = Rect.bounding(pts)
        self.n_points = len(pts)
        with _span(
            "rsmi.build", n=len(pts), strategy=self.build_strategy
        ) as build_span:
            self.root = self._build_subtree(pts, self.bounds, depth=0)
            build_span.set(models=self.n_models(), depth=self.depth())
        return self

    def _build_subtree(self, points: np.ndarray, bounds: Rect, depth: int) -> _Node:
        """Build one subtree with the configured strategy (full builds start
        at the root; leaf-overflow rebuilds start at the old leaf's depth)."""
        if self.build_strategy == "recursive":
            return self._build_node(points, bounds, depth)
        return self._build_levelwise(points, bounds, depth)

    def _node_keys(self, points: np.ndarray, bounds: Rect) -> np.ndarray:
        """Morton codes local to the node's bounding box.

        Cast to the configured key dtype so build-time sort keys and
        query-time probe keys share one (monotone) quantisation — equal
        coordinates always produce bit-equal node-local keys.
        """
        return zvalues(points, bounds, self.bits, dtype=self.key_dtype)

    def _cast_node_model(self, model: TrainedModel, node_keys: np.ndarray) -> None:
        """Apply the builder's reduced-precision mode to one node model.

        Mirrors :meth:`repro.indices.rmi.RMIModel._cast_model`: cast the
        network down and re-measure the error bounds over the node's full
        (cast) key partition, so predict-and-scan stays exact under the new
        arithmetic.  Must run *before* :meth:`_split_specs` routes the
        partition — query-time routing repeats the build-time computation,
        so the precision drop has to land first.
        """
        if getattr(self.builder, "dtype", "float64") == "float32" and isinstance(
            model.net, FFN
        ):
            model.net.astype(np.float32)
            model.measure_error_bounds(node_keys)

    def _sort_by_node_keys(
        self, points: np.ndarray, bounds: Rect
    ) -> tuple[np.ndarray, np.ndarray]:
        """Key-sort a partition on its node-local curve (timed as prepare)."""
        started = time.perf_counter()
        keys = self._node_keys(points, bounds)
        order = np.argsort(keys, kind="stable")
        sorted_pts = points[order]
        sorted_keys = keys[order]
        self.build_stats.prepare_seconds += time.perf_counter() - started
        return sorted_pts, sorted_keys

    def _split_specs(
        self, node: _Node, sorted_pts: np.ndarray, sorted_keys: np.ndarray
    ) -> "list[tuple[int, np.ndarray, Rect]]":
        """Decide leaf vs. split for a freshly modelled node.

        Returns the non-empty child partitions as ``(branch, points,
        bounds)`` in branch order — empty for a leaf.  Shared by both build
        strategies so the routing decision cannot diverge between them.
        """
        if len(sorted_pts) <= self.leaf_capacity or node.depth >= 16:
            node.store = BlockStore(sorted_pts, sorted_keys, block_size=self.block_size)
            return []
        branch = self._route(node.model, sorted_keys, len(sorted_pts))
        counts = np.bincount(branch, minlength=self.fanout)
        if counts.max() == len(sorted_pts):
            # Degenerate model: everything routed to one child.  Fall back
            # to a leaf; the scan bounds still guarantee point lookups.
            node.store = BlockStore(sorted_pts, sorted_keys, block_size=self.block_size)
            return []
        specs = []
        for b in range(self.fanout):
            mask = branch == b
            if mask.any():
                child_pts = sorted_pts[mask]
                specs.append((b, child_pts, Rect.bounding(child_pts)))
        return specs

    def _build_node(self, points: np.ndarray, bounds: Rect, depth: int) -> _Node:
        sorted_pts, sorted_keys = self._sort_by_node_keys(points, bounds)

        node_map = lambda pts: self._node_keys(pts, bounds)  # noqa: E731
        model = self.builder.build_model(
            sorted_keys, sorted_pts, self.build_stats, map_fn=node_map
        )
        self._cast_node_model(model, sorted_keys)
        node = _Node(bounds=bounds, model=model, n=len(points), depth=depth)

        specs = self._split_specs(node, sorted_pts, sorted_keys)
        if not specs:
            return node
        node.children = [None] * self.fanout
        for b, child_pts, child_bounds in specs:
            node.children[b] = self._build_node(child_pts, child_bounds, depth + 1)
        return node

    def _build_levelwise(self, points: np.ndarray, bounds: Rect, depth: int) -> _Node:
        """Frontier build: one ``build_models`` dispatch per tree level.

        Sibling subtrees at the same depth are independent — their model
        fits go to the builder's executor as a single batch, so the
        thread/process backends overlap them and the fused backend trains
        them in one vectorised pass.  Node preparation (sort, routing)
        stays in deterministic tree order, which keeps the result identical
        to the recursive strategy.
        """
        # A frontier entry: (points, bounds, depth, attach) where attach
        # places the finished node on its parent (or captures the root).
        root_ref: list[_Node | None] = [None]

        def _set_root(node: _Node) -> None:
            root_ref[0] = node

        frontier: list = [(points, bounds, depth, _set_root)]
        while frontier:
            level_depth = frontier[0][2]
            with _span("rsmi.fit_level", level=level_depth, nodes=len(frontier)):
                frontier = self._fit_level(frontier)
        assert root_ref[0] is not None
        return root_ref[0]

    def _fit_level(self, frontier: list) -> list:
        """Fit every frontier node's model in one dispatch; expand splits."""
        prepared = [
            self._sort_by_node_keys(pts, bounds) for pts, bounds, _d, _a in frontier
        ]
        map_fns = [
            (lambda pts, b=bounds: self._node_keys(pts, b))
            for _pts, bounds, _d, _a in frontier
        ]
        models = self.builder.build_models(
            [(keys, pts) for pts, keys in prepared],
            self.build_stats,
            map_fn=map_fns,
        )
        next_frontier: list = []
        for (pts, bounds, depth, attach), (sorted_pts, sorted_keys), model in zip(
            frontier, prepared, models
        ):
            self._cast_node_model(model, sorted_keys)
            node = _Node(bounds=bounds, model=model, n=len(pts), depth=depth)
            attach(node)
            specs = self._split_specs(node, sorted_pts, sorted_keys)
            if not specs:
                continue
            node.children = [None] * self.fanout
            for b, child_pts, child_bounds in specs:

                def _attach(child: _Node, children=node.children, slot=b) -> None:
                    children[slot] = child

                next_frontier.append((child_pts, child_bounds, depth + 1, _attach))
        return next_frontier

    def _route(self, model: TrainedModel, keys: np.ndarray, n: int) -> np.ndarray:
        """Child assignment: the model's predicted rank, bucketed by fanout."""
        pos = model.predict_positions(keys)
        branch = (pos * self.fanout) // max(n, 1)
        return np.clip(branch, 0, self.fanout - 1)

    # ------------------------------------------------------------------
    # Built-in insertion (the Figure 1 mechanism)
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> None:
        """RSMI's built-in insertion: route to a leaf by the existing
        models, append to the leaf's pages, and — when a leaf overflows —
        rebuild it *locally* into a subtree with new models.  Skewed
        insertions therefore deepen one region of the hierarchy while the
        rest stays shallow: the unbalanced structure of Figure 1."""
        self._check_built()
        assert self.root is not None
        q = np.asarray(point, dtype=np.float64)
        parent: _Node | None = None
        branch = -1
        node = self.root
        while not node.is_leaf:
            key = float(self._node_keys(q[None, :], node.bounds)[0])
            b = int(self._route(node.model, np.array([key]), node.n)[0])
            child = node.children[b]
            if child is None:
                # First point routed here: open a fresh single-point leaf.
                child = self._make_singleton_leaf(q, node.bounds, node.depth + 1)
                node.children[b] = child
                self.n_points += 1
                return
            parent, branch = node, b
            node = child
        assert node.store is not None
        key = float(self._node_keys(q[None, :], node.bounds)[0])
        node.store.insert(q, key)
        node.inserts += 1
        self.n_points += 1
        if len(node.store) > 2 * self.leaf_capacity and node.depth < 16:
            rebuilt = self._build_subtree(node.store.points, node.bounds, node.depth)
            if parent is None:
                self.root = rebuilt
            else:
                parent.children[branch] = rebuilt

    def _make_singleton_leaf(self, point: np.ndarray, bounds: Rect, depth: int) -> _Node:
        keys = self._node_keys(point[None, :], bounds)
        model = self.builder.build_model(keys, point[None, :], self.build_stats)
        self._cast_node_model(model, keys)
        node = _Node(bounds=bounds, model=model, n=1, depth=depth)
        node.store = BlockStore(point[None, :], keys, block_size=self.block_size)
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def point_query(self, point: np.ndarray) -> bool:
        self._check_built()
        assert self.root is not None
        q = np.asarray(point, dtype=np.float64)
        node = self.root
        self.query_stats.queries += 1
        with _span("rsmi.point", index=self.name) as point_span:
            hops = 0
            while True:
                key = float(self._node_keys(q[None, :], node.bounds)[0])
                self.query_stats.model_invocations += 1
                hops += 1
                if node.is_leaf:
                    assert node.store is not None
                    lo, hi = node.model.search_range(key)
                    pts, keys, _ids = node.store.scan(
                        lo - node.inserts, hi + node.inserts
                    )
                    self.query_stats.points_scanned += len(pts)
                    point_span.set(hops=hops, scanned=len(pts))
                    match = keys == key
                    return bool(np.any(match & np.all(pts == q, axis=1)))
                branch = int(self._route(node.model, np.array([key]), node.n)[0])
                child = node.children[branch]
                if child is None:
                    point_span.set(hops=hops, scanned=0)
                    return False
                node = child

    def window_query(self, window: Rect) -> np.ndarray:
        self._check_built()
        assert self.root is not None
        self.query_stats.queries += 1
        with _span("rsmi.window", index=self.name) as window_span:
            results: list[np.ndarray] = []
            self._window_visit(self.root, window, results)
            matched = sum(len(r) for r in results)
            window_span.set(matched=matched)
        if not results:
            return np.empty((0, window.ndim))
        return np.vstack(results)

    def _window_visit(self, node: _Node, window: Rect, out: list[np.ndarray]) -> None:
        if not node.bounds.intersects(window):
            return
        # Clip the window to the node's box before mapping, so corner codes
        # stay inside the local curve's domain.
        lo = np.maximum(window.lo_array, node.bounds.lo_array)
        hi = np.minimum(window.hi_array, node.bounds.hi_array)
        corners = np.vstack([lo, hi])
        z_lo, z_hi = self._node_keys(corners, node.bounds)
        self.query_stats.model_invocations += 2
        if node.is_leaf:
            assert node.store is not None
            scan_lo, _ = node.model.search_range(float(z_lo))
            _, scan_hi = node.model.search_range(float(z_hi))
            pts, _keys, _ids = node.store.scan(
                scan_lo - node.inserts, scan_hi + node.inserts
            )
            self.query_stats.points_scanned += len(pts)
            if len(pts):
                inside = pts[window.contains_points(pts)]
                if len(inside):
                    out.append(inside)
            return
        pos_lo, _ = node.model.search_range(float(z_lo))
        _, pos_hi = node.model.search_range(float(z_hi))
        b_lo = int(np.clip((pos_lo * self.fanout) // max(node.n, 1), 0, self.fanout - 1))
        b_hi = int(
            np.clip(((pos_hi - 1) * self.fanout) // max(node.n, 1), 0, self.fanout - 1)
        )
        for b in range(b_lo, b_hi + 1):
            child = node.children[b]
            if child is not None:
                self._window_visit(child, window, out)

    def window_queries(self, windows: "list[Rect]") -> list[np.ndarray]:
        """Batch window queries: one tree walk shared by the whole batch.

        Instead of one recursive descent per window, a single DFS carries
        the set of still-active windows through each node: per node, both
        corner keys of *every* active window map and predict in one model
        pass (2 forward passes per window in the scalar path become 1 per
        visited node).  Traversal stays pre-order, so each window's result
        chunks — and hence its result array — match :meth:`window_query`
        exactly, including RSMI's characteristic approximate recall.
        """
        self._check_built()
        assert self.root is not None
        if not windows:
            return []
        self.query_stats.queries += len(windows)
        d = windows[0].ndim
        win_lo = np.vstack([w.lo_array for w in windows])
        win_hi = np.vstack([w.hi_array for w in windows])
        chunks: list[list[np.ndarray]] = [[] for _ in windows]
        with _span(
            "rsmi.window_batch", index=self.name, windows=len(windows)
        ) as window_span:
            stack: list[tuple[_Node, np.ndarray]] = [
                (self.root, np.arange(len(windows)))
            ]
            while stack:
                node, active = stack.pop()
                # Closed-box intersection test (touching counts), vectorised
                # over the active windows — mirrors Rect.intersects.
                blo, bhi = node.bounds.lo_array, node.bounds.hi_array
                hit = np.all(win_lo[active] <= bhi, axis=1) & np.all(
                    blo <= win_hi[active], axis=1
                )
                active = active[hit]
                w = len(active)
                if w == 0:
                    continue
                # Clip each window to the node's box before mapping, so
                # corner codes stay inside the local curve's domain.
                lo = np.maximum(win_lo[active], blo)
                hi = np.minimum(win_hi[active], bhi)
                z = self._node_keys(np.vstack([lo, hi]), node.bounds)
                self.query_stats.model_invocations += 2 * w
                pos = node.model.predict_positions(z)
                model = node.model
                pos_lo = np.maximum(pos[:w] - model.err_l, 0)
                pos_hi = np.minimum(pos[w:] + model.err_u + 1, model.n_indexed)
                if node.is_leaf:
                    assert node.store is not None
                    for j, wi in enumerate(active):
                        pts, _keys, _ids = node.store.scan(
                            int(pos_lo[j]) - node.inserts,
                            int(pos_hi[j]) + node.inserts,
                        )
                        self.query_stats.points_scanned += len(pts)
                        if len(pts):
                            inside = pts[windows[wi].contains_points(pts)]
                            if len(inside):
                                chunks[wi].append(inside)
                    continue
                n = max(node.n, 1)
                b_lo = np.clip((pos_lo * self.fanout) // n, 0, self.fanout - 1)
                b_hi = np.clip(((pos_hi - 1) * self.fanout) // n, 0, self.fanout - 1)
                # Push children high-branch-first so the LIFO pop keeps the
                # scalar path's ascending pre-order per window.
                for b in range(self.fanout - 1, -1, -1):
                    child = node.children[b]
                    if child is None:
                        continue
                    sub = active[(b_lo <= b) & (b <= b_hi)]
                    if len(sub):
                        stack.append((child, sub))
            window_span.set(matched=sum(sum(len(c) for c in cs) for cs in chunks))
        return [
            np.vstack(cs) if cs else np.empty((0, d)) for cs in chunks
        ]

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        return self._knn_by_expanding_window(point, k)

    def knn_queries(self, points: np.ndarray, k: int) -> list[np.ndarray]:
        return self._knn_by_expanding_window_batch(points, k)

    def map(self, points: np.ndarray) -> np.ndarray:
        """Global Morton keys over the root bounds (CDF tracking only;
        per-node queries use node-local curves)."""
        self._check_built()
        assert self.bounds is not None
        return self._node_keys(np.atleast_2d(np.asarray(points, dtype=np.float64)), self.bounds)

    def indexed_points(self) -> np.ndarray:
        """Every indexed point, gathered from the leaf stores."""
        self._check_built()
        assert self.root is not None
        chunks: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.store is not None
                chunks.append(node.store.points)
            else:
                stack.extend(c for c in node.children if c is not None)
        return np.vstack(chunks)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Maximum leaf depth (the rebuild predictor's index-depth feature)."""
        self._check_built()
        assert self.root is not None
        best = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                stack.extend(c for c in node.children if c is not None)
        return best

    def n_models(self) -> int:
        """Number of learned models in the hierarchy."""
        self._check_built()
        assert self.root is not None
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(c for c in node.children if c is not None)
        return count

    @property
    def error_width(self) -> int:
        """Worst leaf-model ``err_l + err_u``."""
        self._check_built()
        assert self.root is not None
        worst = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            worst = max(worst, node.model.error_width)
            if not node.is_leaf:
                stack.extend(c for c in node.children if c is not None)
        return worst
