"""Flame graphs over the obs span stream, plus a sampling profiler.

The profiler-guided kernel pass needs to see *where* wall-clock goes: not
just per-phase totals (:mod:`repro.obs.report`) but the full hierarchy —
is ``query.window_batch`` time spent in model prediction or in scan
refinement, and under which build phase?  This module turns a recorded
span trace into the two standard flame-graph forms:

- **folded stacks** (:func:`folded_stacks` / :func:`render_folded`): one
  line per root-to-span path with its *self* time, the input format of
  Brendan Gregg's ``flamegraph.pl`` and of speedscope's "folded" importer;
- **an SVG icicle graph** (:func:`render_svg`): a self-contained,
  dependency-free rendering for quick browser viewing, written by
  ``python -m repro obs flame``.

For code outside instrumented spans, :class:`SamplingProfiler` captures
periodic Python stack samples (``sys._current_frames``) and emits the same
folded format, so kernel-level hotspots (einsum vs. gather vs. sort) show
up even where no span was declared.
"""

from __future__ import annotations

import hashlib
import sys
import threading
import time
import traceback
from xml.sax.saxutils import escape

from repro.obs.report import build_tree
from repro.obs.trace import SpanRecord

__all__ = [
    "SamplingProfiler",
    "folded_stacks",
    "render_folded",
    "render_svg",
    "top_paths",
]


def folded_stacks(records: list[SpanRecord]) -> dict[str, float]:
    """Collapse a span trace to ``{"root;child;...": self_seconds}``.

    Each span contributes its *self* time (duration minus recorded
    children, clamped at zero) to its full root-to-span name path, so the
    values sum to total traced wall-clock and nested phases never double
    count.  Identical paths from repeated spans merge.
    """
    roots, children = build_tree(records)
    out: dict[str, float] = {}

    def visit(record: SpanRecord, prefix: str) -> None:
        path = f"{prefix};{record.name}" if prefix else record.name
        kids = children.get(record.span_id, [])
        self_seconds = max(0.0, record.duration - sum(k.duration for k in kids))
        out[path] = out.get(path, 0.0) + self_seconds
        for kid in kids:
            visit(kid, path)

    for root in roots:
        visit(root, "")
    return out


def render_folded(stacks: dict[str, float], unit: float = 1e6) -> str:
    """Folded stacks as text: ``path value`` per line, heaviest first.

    Values are scaled by ``unit`` (default microseconds) and rounded —
    ``flamegraph.pl`` and speedscope both expect integer sample counts.
    """
    lines = [
        f"{path} {max(1, round(seconds * unit))}"
        for path, seconds in sorted(stacks.items(), key=lambda kv: -kv[1])
    ]
    return "\n".join(lines)


def top_paths(stacks: dict[str, float], limit: int = 10) -> list[tuple[str, float]]:
    """The heaviest ``limit`` paths by self time, for terminal summaries."""
    return sorted(stacks.items(), key=lambda kv: -kv[1])[:limit]


# ----------------------------------------------------------------------
# SVG icicle rendering (pure stdlib)
# ----------------------------------------------------------------------
class _Frame:
    """One rectangle of the icicle: a path segment and its subtree total."""

    __slots__ = ("name", "total", "self_seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.self_seconds = 0.0
        self.children: dict[str, _Frame] = {}


def _frame_tree(stacks: dict[str, float]) -> _Frame:
    root = _Frame("all")
    for path, seconds in stacks.items():
        node = root
        node.total += seconds
        for part in path.split(";"):
            node = node.children.setdefault(part, _Frame(part))
            node.total += seconds
        node.self_seconds += seconds
    return root


def _color(name: str) -> str:
    """Deterministic warm color per frame name (same name = same color)."""
    digest = hashlib.sha1(name.encode()).digest()
    r = 205 + digest[0] % 50
    g = 60 + digest[1] % 130
    b = digest[2] % 60
    return f"rgb({r},{g},{b})"


def render_svg(
    stacks: dict[str, float],
    width: int = 1200,
    row_height: int = 18,
    min_fraction: float = 0.001,
) -> str:
    """A self-contained SVG icicle flame graph (root on top).

    Rect widths are proportional to subtree time; frames narrower than
    ``min_fraction`` of the total are dropped.  Every rect carries a
    ``<title>`` tooltip with the exact time and share, so the SVG is
    explorable in any browser without JavaScript.
    """
    root = _frame_tree(stacks)
    total = root.total
    if total <= 0.0:
        total = 1e-12
    depth_limit = 1
    rects: list[str] = []

    def emit(frame: _Frame, x: float, depth: int, scale: float) -> None:
        nonlocal depth_limit
        depth_limit = max(depth_limit, depth + 1)
        w = frame.total * scale
        y = depth * row_height
        share = frame.total / total
        title = (
            f"{frame.name}: {frame.total * 1e3:.3f} ms "
            f"({share * 100.0:.2f}%), self {frame.self_seconds * 1e3:.3f} ms"
        )
        rects.append(
            f'<g><title>{escape(title)}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" '
            f'height="{row_height - 1}" fill="{_color(frame.name)}" rx="1"/>'
            + (
                f'<text x="{x + 3:.2f}" y="{y + row_height - 6}" '
                f'font-size="11" font-family="monospace">'
                f"{escape(frame.name[: max(1, int(w / 7))])}</text>"
                if w > 20
                else ""
            )
            + "</g>"
        )
        cx = x
        for child in sorted(frame.children.values(), key=lambda f: -f.total):
            if child.total / total < min_fraction:
                continue
            emit(child, cx, depth + 1, scale)
            cx += child.total * scale
    emit(root, 0.0, 0, width / total)
    height = depth_limit * row_height + 4
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        f'<rect width="{width}" height="{height}" fill="#fdf6ec"/>'
        + "".join(rects)
        + "</svg>"
    )


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
class SamplingProfiler:
    """Periodic Python stack sampler producing folded stacks.

    A daemon thread snapshots every live thread's frame stack
    (``sys._current_frames``) at ``interval`` seconds; each sample adds
    ``interval`` to its ``module:function`` path.  Sampling costs one
    traversal per tick and needs no instrumentation, so it complements the
    span flame graph with function-level hotspots.  Usable as a context
    manager::

        with SamplingProfiler(interval=0.005) as prof:
            index.build(points)
        print(render_folded(prof.stacks()))
    """

    def __init__(self, interval: float = 0.005, max_depth: int = 64) -> None:
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.max_depth = max_depth
        self._stacks: dict[str, float] = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------
    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.interval):
            for tid, frame in sys._current_frames().items():
                if tid == me:
                    continue
                parts = [
                    f"{f.f_code.co_filename.rsplit('/', 1)[-1]}:{f.f_code.co_name}"
                    for f, _lineno in traceback.walk_stack(frame)
                ]
                parts.reverse()
                if not parts:
                    continue
                path = ";".join(parts[-self.max_depth :])
                self._stacks[path] = self._stacks.get(path, 0.0) + self.interval
            self._samples += 1

    # -- results --------------------------------------------------------
    @property
    def samples(self) -> int:
        """Number of sampling ticks taken so far."""
        return self._samples

    def stacks(self) -> dict[str, float]:
        """Folded ``{path: seconds}`` accumulated so far (a copy)."""
        return dict(self._stacks)
