"""Unit tests for the update processor and rebuild predictor (Section IV-B2)."""

import numpy as np
import pytest

from repro.core.config import ELSIConfig
from repro.core.update_processor import (
    RebuildPredictor,
    UpdateProcessor,
    train_rebuild_predictor,
)
from repro.data import load_dataset
from repro.indices import ZMIndex
from repro.queries.evaluate import brute_force_window
from repro.spatial.rect import Rect


@pytest.fixture()
def processor(osm_points, sp_builder, fast_config):
    index = ZMIndex(builder=sp_builder).build(osm_points)
    return UpdateProcessor(index, fast_config), osm_points


class TestSideList:
    def test_insert_then_query(self, processor):
        proc, _pts = processor
        p = np.array([0.123456, 0.654321])
        assert not proc.point_query(p)
        proc.insert(p)
        assert proc.point_query(p)
        assert proc.n_pending == 1

    def test_delete_base_point(self, processor):
        proc, pts = processor
        assert proc.delete(pts[5])
        assert not proc.point_query(pts[5])
        assert proc.n_effective == len(pts) - 1

    def test_delete_inserted_point(self, processor):
        proc, _pts = processor
        p = np.array([0.42, 0.43])
        proc.insert(p)
        assert proc.delete(p)
        assert not proc.point_query(p)
        assert proc.n_pending == 0

    def test_delete_missing_point_returns_false(self, processor):
        proc, _pts = processor
        assert not proc.delete(np.array([9.9, 9.9]))

    def test_reinsert_deleted_base_point(self, processor):
        proc, pts = processor
        proc.delete(pts[7])
        proc.insert(pts[7])
        assert proc.point_query(pts[7])
        assert proc.n_effective == len(pts)

    def test_double_delete_returns_false(self, processor):
        proc, pts = processor
        assert proc.delete(pts[9])
        assert not proc.delete(pts[9])


class TestQueryMerging:
    def test_window_includes_inserts_excludes_deletes(self, processor):
        proc, pts = processor
        window = Rect.centered(np.array([0.5, 0.5]), 0.2)
        inside_new = np.array([0.5, 0.5])
        proc.insert(inside_new)
        victim = pts[window.contains_points(pts)]
        if len(victim):
            proc.delete(victim[0])
        result = proc.window_query(window)
        truth = brute_force_window(proc.current_points(), window)
        assert len(result) == len(truth)

    def test_knn_sees_inserted_points(self, processor):
        proc, _pts = processor
        q = np.array([0.313, 0.717])
        proc.insert(q)  # exact match should be the nearest neighbour
        result = proc.knn_query(q, 3)
        assert np.allclose(result[0], q)

    def test_knn_skips_deleted_points(self, processor):
        proc, pts = processor
        q = pts[50]
        proc.delete(q)
        result = proc.knn_query(q, 5)
        assert not any(np.array_equal(r, q) for r in result)

    def test_current_points_consistency(self, processor):
        proc, pts = processor
        proc.insert(np.array([0.9, 0.9]))
        proc.delete(pts[0])
        current = proc.current_points()
        assert len(current) == len(pts)  # one in, one out
        assert proc.n_effective == len(current)


class TestRebuild:
    def test_rebuild_clears_side_list(self, processor):
        proc, pts = processor
        for i in range(20):
            proc.insert(np.array([0.01 * i + 0.001, 0.5]))
        proc.delete(pts[3])
        n_before = proc.n_effective
        proc.rebuild()
        assert proc.n_pending == 0
        assert proc.n_effective == n_before
        assert proc.rebuilds == 1
        assert proc.index.n_points == n_before

    def test_queries_survive_rebuild(self, processor):
        proc, pts = processor
        extra = np.array([0.777, 0.333])
        proc.insert(extra)
        proc.rebuild()
        assert proc.point_query(extra)
        assert proc.point_query(pts[100])

    def test_heuristic_to_rebuild_triggers_on_drift(self, processor):
        proc, pts = processor
        # Massive skewed insertions shift the CDF.
        skew = load_dataset("Skewed", len(pts) // 3, seed=5)
        for p in skew:
            proc.insert(p)
        assert proc.to_rebuild()

    def test_heuristic_no_rebuild_when_unchanged(self, processor):
        proc, _pts = processor
        assert not proc.to_rebuild()

    def test_auto_rebuild_fires_at_f_u(self, osm_points, sp_builder):
        config = ELSIConfig(train_epochs=60, f_u=200)
        index = ZMIndex(builder=sp_builder).build(osm_points)
        proc = UpdateProcessor(index, config, auto_rebuild=True)
        skew = load_dataset("Skewed", 400, seed=6)
        for p in skew:
            proc.insert(p)
        assert proc.rebuilds >= 1

    def test_unbuilt_index_rejected(self, sp_builder, fast_config):
        with pytest.raises(ValueError):
            UpdateProcessor(ZMIndex(builder=sp_builder), fast_config)


class TestRebuildPredictor:
    def test_feature_vector(self):
        x = RebuildPredictor.features(10_000, 0.3, 4, 0.5, 0.8)
        assert x.shape == (5,)
        assert x[0] == pytest.approx(0.5)

    def test_fit_and_predict(self):
        rng = np.random.default_rng(0)
        # Label = 1 when the CDF similarity dropped below 0.9.
        x = np.column_stack(
            [
                rng.random(200) * 0.5 + 0.3,
                rng.random(200),
                rng.random(200),
                rng.random(200),
                rng.random(200),
            ]
        )
        y = (x[:, 4] < 0.9).astype(float)
        predictor = RebuildPredictor(seed=0)
        predictor.fit(x, y, epochs=800)
        correct = sum(
            predictor.should_rebuild(10_000, r[1], int(r[2] * 16), r[3], r[4])
            == bool(r[4] < 0.9)
            for r in x
        )
        assert correct / len(x) > 0.85

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            RebuildPredictor().should_rebuild(10, 0.0, 1, 0.0, 1.0)

    def test_bad_feature_shape_rejected(self):
        with pytest.raises(ValueError):
            RebuildPredictor().fit(np.zeros((5, 3)), np.zeros(5))

    def test_training_pipeline(self, fast_config):
        """End-to-end ground-truth generation + training (tiny scale)."""
        from repro.core.build_processor import ELSIModelBuilder

        predictor = train_rebuild_predictor(
            lambda: ZMIndex(builder=ELSIModelBuilder(fast_config, method="SP")),
            config=fast_config,
            cardinalities=(500,),
            deltas=(0.0,),
            insert_fractions=(0.05, 0.2),
            n_queries=30,
        )
        assert predictor._fitted
        # The trained predictor integrates with the processor.
        index = ZMIndex(
            builder=ELSIModelBuilder(fast_config, method="SP")
        ).build(load_dataset("OSM1", 500))
        proc = UpdateProcessor(index, fast_config, predictor=predictor)
        assert isinstance(proc.to_rebuild(), bool)
