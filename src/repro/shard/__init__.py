"""The sharded serving tier: scatter-gather routing over worker processes.

The keyspace is partitioned into N contiguous space-filling-curve key
ranges (:class:`ShardMap`, rank-quantile boundaries persisted as
``shard_map.json``); each range is served by its own worker process — a
full :class:`~repro.serve.server.IndexServer` with generations, rebuild
worker, snapshots, and WAL under a per-shard directory — and a
:class:`ShardRouter` fans query batches out and folds the answers back
(see docs/serving.md, "Sharding").
"""

from repro.shard.cluster import build_cluster, open_cluster
from repro.shard.errors import ShardError, ShardTimeout, ShardUnavailable
from repro.shard.handle import ShardHandle
from repro.shard.router import RouterConfig, ShardRouter
from repro.shard.shardmap import CURVES, ShardMap
from repro.shard.telemetry import FleetTelemetry
from repro.shard.worker import (
    ENV_KEYS,
    WORKER_CRASH_EXIT,
    WorkerSpec,
    capture_env,
    shard_worker_main,
)

__all__ = [
    "CURVES",
    "ENV_KEYS",
    "FleetTelemetry",
    "RouterConfig",
    "ShardError",
    "ShardHandle",
    "ShardMap",
    "ShardRouter",
    "ShardTimeout",
    "ShardUnavailable",
    "WORKER_CRASH_EXIT",
    "WorkerSpec",
    "build_cluster",
    "capture_env",
    "open_cluster",
    "shard_worker_main",
]
