"""Synthetic point generators for the paper's Uniform and Skewed data sets.

- ``uniform``: i.i.d. uniform in the unit hypercube (the paper's Uniform,
  128 M points there; cardinality is a parameter here).
- ``skewed``: uniform with every y-coordinate replaced by ``y**s`` (s = 4),
  exactly the construction the paper borrows from HRR [20].
- ``gaussian_mixture``: clustered data used for MR's synthetic pool and for
  selector training diversity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_mixture", "skewed", "uniform"]


def uniform(n: int, d: int = 2, seed: int = 0) -> np.ndarray:
    """``n`` i.i.d. uniform points in [0, 1]^d."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    rng = np.random.default_rng(seed)
    return rng.random((n, d))


def skewed(n: int, d: int = 2, s: float = 4.0, seed: int = 0) -> np.ndarray:
    """The paper's Skewed set: uniform, then last coordinate raised to ``s``.

    With s = 4 the mass concentrates near 0 along that axis, producing the
    density skew that stresses grid-structured indices.
    """
    if s <= 0:
        raise ValueError(f"s must be > 0, got {s}")
    pts = uniform(n, d, seed)
    pts[:, -1] = pts[:, -1] ** s
    return pts


def gaussian_mixture(
    n: int,
    n_clusters: int = 8,
    d: int = 2,
    spread: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Clustered points: ``n_clusters`` Gaussians with random centres.

    Points are clipped to the unit hypercube so every generator shares the
    same data space.  Cluster weights are Dirichlet-distributed, giving
    unequal cluster sizes like real PoI data.
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if spread <= 0:
        raise ValueError(f"spread must be > 0, got {spread}")
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, d))
    weights = rng.dirichlet(np.ones(n_clusters))
    assignment = rng.choice(n_clusters, size=n, p=weights)
    pts = centers[assignment] + rng.normal(0.0, spread, size=(n, d))
    return np.clip(pts, 0.0, 1.0)
