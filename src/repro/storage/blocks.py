"""Block (page) storage of points sorted by a one-dimensional key.

The map-and-sort paradigm stores points in key order; queries then scan a
contiguous address range.  :class:`BlockStore` materialises that layout:
points are held in key-sorted arrays and grouped into fixed-size blocks of
``B`` points (B = 100 per Section VII-B1).  The store counts block reads so
experiments can report I/O-like metrics alongside wall-clock times.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BlockStore"]


class BlockStore:
    """Key-sorted point storage with fixed-size blocks.

    Parameters
    ----------
    points:
        (n, d) coordinates.
    keys:
        One mapped key per point; the store sorts by these.
    ids:
        Optional stable point identifiers (defaults to the pre-sort row
        numbers), used by the update processor's side list.
    block_size:
        Points per block (the paper's B).
    key_dtype:
        Storage dtype for the sorted key column.  Defaults to the dtype the
        keys arrive in (floating inputs are kept as-is, everything else is
        cast to float64), so a float32 mapping pipeline halves key memory
        and ``searchsorted`` traffic.  Query boundaries must be cast through
        the same round-to-nearest conversion before searching (the cast is
        monotone, so cast boundaries bracket a superset of the candidates).
    """

    def __init__(
        self,
        points: np.ndarray,
        keys: np.ndarray,
        ids: np.ndarray | None = None,
        block_size: int = 100,
        key_dtype: np.dtype | str | None = None,
    ) -> None:
        pts = np.asarray(points, dtype=np.float64)
        key_arr = np.asarray(keys)
        if key_dtype is None:
            key_dtype = (
                key_arr.dtype
                if np.issubdtype(key_arr.dtype, np.floating)
                else np.float64
            )
        key_arr = key_arr.astype(np.dtype(key_dtype), copy=False)
        if pts.ndim != 2:
            raise ValueError(f"expected (n, d) points, got shape {pts.shape}")
        if key_arr.shape != (len(pts),):
            raise ValueError(
                f"need one key per point: {key_arr.shape} vs {len(pts)} points"
            )
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if ids is None:
            ids = np.arange(len(pts), dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (len(pts),):
                raise ValueError("need one id per point")

        order = np.argsort(key_arr, kind="stable")
        self.points = pts[order]
        self.keys = key_arr[order]
        self.ids = ids[order]
        self.block_size = block_size
        self._reads = 0

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.keys)

    @property
    def n_blocks(self) -> int:
        return max(1, -(-len(self.keys) // self.block_size)) if len(self.keys) else 0

    @property
    def block_reads(self) -> int:
        """Blocks touched by scans since construction / last reset."""
        return self._reads

    def reset_block_reads(self) -> None:
        self._reads = 0

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def rank_of_key(self, key: float, side: str = "left") -> int:
        """Sorted position of ``key`` (binary search)."""
        return int(np.searchsorted(self.keys, key, side=side))

    def scan(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Points, keys and ids in positions [lo, hi), clipped to bounds.

        Charges block reads for every block the range touches.
        """
        lo = max(0, lo)
        hi = min(len(self.keys), hi)
        if hi <= lo:
            return (
                np.empty((0, self.points.shape[1])),
                np.empty(0, dtype=self.keys.dtype),
                np.empty(0, dtype=np.int64),
            )
        first_block = lo // self.block_size
        last_block = (hi - 1) // self.block_size
        self._reads += last_block - first_block + 1
        return self.points[lo:hi], self.keys[lo:hi], self.ids[lo:hi]

    def charge_block_reads(self, starts: np.ndarray, ends: np.ndarray) -> int:
        """Charge block reads for disjoint half-open ranges without gathering.

        Vectorised accounting equivalent of calling :meth:`scan` once per
        ``[start, end)`` range: each range is charged every block it touches.
        Used by the fused batch kernels, which gather rows directly from the
        sorted arrays instead of materialising per-range slices.  Returns the
        number of reads charged.
        """
        starts = np.clip(np.asarray(starts, dtype=np.int64), 0, len(self.keys))
        ends = np.clip(np.asarray(ends, dtype=np.int64), 0, len(self.keys))
        keep = ends > starts
        starts, ends = starts[keep], ends[keep]
        if len(starts) == 0:
            return 0
        reads = int(
            ((ends - 1) // self.block_size - starts // self.block_size + 1).sum()
        )
        self._reads += reads
        return reads

    def scan_key_range(
        self, key_lo: float, key_hi: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scan all entries with key in [key_lo, key_hi]."""
        lo = self.rank_of_key(key_lo, side="left")
        hi = self.rank_of_key(key_hi, side="right")
        return self.scan(lo, hi)

    def insert(self, point: np.ndarray, key: float, point_id: int = -1) -> int:
        """Insert one point at its sorted key position; returns the position.

        O(n) per insert (array shift) — the in-memory analogue of adding a
        record to a sorted page file, used by the indices' built-in
        insertion procedures (Section IV-B2 / Figure 15).
        """
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (self.points.shape[1],):
            raise ValueError(
                f"expected a point of dim {self.points.shape[1]}, got {p.shape}"
            )
        key = self.keys.dtype.type(key)
        pos = int(np.searchsorted(self.keys, key, side="right"))
        self.points = np.insert(self.points, pos, p, axis=0)
        self.keys = np.insert(self.keys, pos, key)
        self.ids = np.insert(self.ids, pos, int(point_id))
        return pos

    def block_of(self, position: int) -> int:
        """Block id holding sorted position ``position``."""
        if not 0 <= position < len(self.keys):
            raise IndexError(f"position {position} out of range")
        return position // self.block_size
