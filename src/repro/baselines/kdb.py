"""KDB: a kd-tree with block-storage leaves (Robinson, SIGMOD 1981).

Bulk-built by recursive median splits on alternating axes until partitions
fit a block of ``B`` points.  Region pruning makes point, window and kNN
queries exact, with the classic log-depth descent the paper contrasts with
learned constant-time prediction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BestFirstKNN, TraditionalIndex
from repro.spatial.rect import Rect

__all__ = ["KDBIndex"]


@dataclass
class _Node:
    """A region node; leaves carry points, internal nodes a split."""

    region: Rect
    points: np.ndarray | None = None
    axis: int = 0
    split: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.points is not None


class KDBIndex(TraditionalIndex):
    """The KDB competitor index."""

    name = "KDB"

    def __init__(self, block_size: int = 100) -> None:
        super().__init__(block_size)
        self.root: _Node | None = None

    # ------------------------------------------------------------------
    def build(self, points: np.ndarray) -> "KDBIndex":
        pts = self._prepare_points(points)
        started = time.perf_counter()
        self.bounds = Rect.bounding(pts)
        self.n_points = len(pts)
        self.root = self._build_node(pts, self.bounds, depth=0)
        self.build_seconds = time.perf_counter() - started
        return self

    def _build_node(self, points: np.ndarray, region: Rect, depth: int) -> _Node:
        if len(points) <= self.block_size or depth >= 48:
            return _Node(region=region, points=points, depth=depth)
        axis = depth % points.shape[1]
        split = float(np.median(points[:, axis]))
        mask = points[:, axis] <= split
        if mask.all() or not mask.any():
            # All coordinates equal on this axis: try the other axes before
            # giving up and storing an oversized leaf.
            for alt in range(points.shape[1]):
                split = float(np.median(points[:, alt]))
                mask = points[:, alt] <= split
                if not mask.all() and mask.any():
                    axis = alt
                    break
            else:
                return _Node(region=region, points=points, depth=depth)
        lo = region.lo_array
        hi = region.hi_array
        left_hi = hi.copy()
        left_hi[axis] = split
        right_lo = lo.copy()
        right_lo[axis] = split
        node = _Node(region=region, axis=axis, split=split, depth=depth)
        node.left = self._build_node(
            points[mask], Rect.from_arrays(lo, left_hi), depth + 1
        )
        node.right = self._build_node(
            points[~mask], Rect.from_arrays(right_lo, hi), depth + 1
        )
        return node

    # ------------------------------------------------------------------
    def point_query(self, point: np.ndarray) -> bool:
        self._check_built()
        q = np.asarray(point, dtype=np.float64)
        node = self.root
        while node is not None and not node.is_leaf:
            node = node.left if q[node.axis] <= node.split else node.right
        if node is None or node.points is None or len(node.points) == 0:
            return False
        return bool(np.any(np.all(node.points == q, axis=1)))

    def window_query(self, window: Rect) -> np.ndarray:
        self._check_built()
        assert self.root is not None
        results: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.region.intersects(window):
                continue
            if node.is_leaf:
                assert node.points is not None
                if len(node.points):
                    inside = node.points[window.contains_points(node.points)]
                    if len(inside):
                        results.append(inside)
            else:
                if node.left is not None:
                    stack.append(node.left)
                if node.right is not None:
                    stack.append(node.right)
        if not results:
            return np.empty((0, window.ndim))
        return np.vstack(results)

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        self._check_built()
        assert self.root is not None
        search = BestFirstKNN(point, k)
        search.push(self.root.region.min_distance_sq(point), self.root)
        while True:
            payload = search.pop()
            if payload is None:
                return search.results()
            node: _Node = payload
            if node.is_leaf:
                assert node.points is not None
                if len(node.points):
                    search.push_points(node.points)
            else:
                for child in (node.left, node.right):
                    if child is not None:
                        search.push(child.region.min_distance_sq(point), child)

    def depth(self) -> int:
        """Maximum leaf depth."""
        self._check_built()
        assert self.root is not None
        best = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                stack.extend(c for c in (node.left, node.right) if c is not None)
        return best
