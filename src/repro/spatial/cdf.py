"""Empirical CDFs and the Kolmogorov–Smirnov dissimilarity of Section III.

ELSI measures how well a small training set ``D_S`` approximates ``D`` by
Definition 2: ``sim(D_S, D) = 1 - sup_x |cdf_{K(D_S)}(x) - cdf_{K(D)}(x)|``,
the KS statistic over the *key values* of the two sets.

Two implementations are provided:

- :func:`ks_distance` — the paper's optimised ``O(n_S log n)`` algorithm
  that binary-searches the rank of every ``D_S`` key in ``D``,
- :func:`ks_distance_reference` — the classical ``O(n_S + n)`` merge scan,
  used in tests to validate the fast version.

Both expect (or internally create) sorted key arrays; the fast variant is
what the RL method's reward loop and the rebuild predictor call, so it also
supports reuse of a pre-sorted ``D``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dissimilarity",
    "empirical_cdf",
    "ks_distance",
    "ks_distance_reference",
    "similarity",
    "uniform_dissimilarity",
]


def _as_sorted(keys: np.ndarray, assume_sorted: bool) -> np.ndarray:
    # Preserve floating key dtypes (float32 key columns stay float32 — the
    # CDF statistics only need ranks); integers still upcast to float64.
    arr = np.asarray(keys).ravel()
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    if len(arr) == 0:
        raise ValueError("cannot compute a CDF of an empty key set")
    if not assume_sorted:
        arr = np.sort(arr, kind="stable")
    return arr


def empirical_cdf(keys: np.ndarray, x: np.ndarray, assume_sorted: bool = False) -> np.ndarray:
    """Empirical CDF of ``keys`` evaluated at points ``x``.

    ``cdf(x) = |{k in keys : k <= x}| / |keys|``.
    """
    sorted_keys = _as_sorted(keys, assume_sorted)
    xs = np.asarray(x, dtype=np.float64)
    ranks = np.searchsorted(sorted_keys, xs, side="right")
    return ranks / len(sorted_keys)


def ks_distance(
    small: np.ndarray, large: np.ndarray, assume_sorted: bool = False
) -> float:
    """The paper's O(n_S log n) KS distance between key sets.

    For the i-th key of the small (sorted) set we binary-search its rank in
    the large set and track the largest CDF gap.  The supremum of the
    difference between two step functions is attained adjacent to a jump of
    either; checking both CDF sides at every key of *both* sets would be the
    exhaustive version, but because the small set's own jumps are where its
    CDF moves, evaluating gaps just before and at each small-set key (and
    the trailing gap) bounds the supremum exactly when the large set's CDF
    is also sampled at those keys — which the ``searchsorted`` ranks give us.
    """
    s = _as_sorted(small, assume_sorted)
    l = _as_sorted(large, assume_sorted)
    n_s = len(s)
    n = len(l)
    # CDF of the large set just before and at each small key.
    rank_left = np.searchsorted(l, s, side="left") / n
    rank_right = np.searchsorted(l, s, side="right") / n
    cdf_small_at = np.searchsorted(s, s, side="right") / n_s
    cdf_small_before = np.searchsorted(s, s, side="left") / n_s
    gap = np.maximum(
        np.abs(cdf_small_at - rank_right), np.abs(cdf_small_before - rank_left)
    )
    return float(gap.max())


def ks_distance_reference(small: np.ndarray, large: np.ndarray) -> float:
    """O(n_S + n) merge-scan KS distance (exhaustive, for validation)."""
    s = _as_sorted(small, assume_sorted=False)
    l = _as_sorted(large, assume_sorted=False)
    values = np.union1d(s, l)
    cdf_s = np.searchsorted(s, values, side="right") / len(s)
    cdf_l = np.searchsorted(l, values, side="right") / len(l)
    return float(np.abs(cdf_s - cdf_l).max())


def dissimilarity(
    small: np.ndarray, large: np.ndarray, assume_sorted: bool = False
) -> float:
    """``dist(D_S, D)`` of Definition 2 — alias of :func:`ks_distance`."""
    return ks_distance(small, large, assume_sorted=assume_sorted)


def similarity(
    small: np.ndarray, large: np.ndarray, assume_sorted: bool = False
) -> float:
    """``sim(D_S, D) = 1 - dist(D_S, D)`` of Definition 2."""
    return 1.0 - ks_distance(small, large, assume_sorted=assume_sorted)


def uniform_dissimilarity(keys: np.ndarray, assume_sorted: bool = False) -> float:
    """``dist(D_U, D)`` against a *continuous* uniform over the key range.

    The method scorer and rebuild predictor summarise a data set's
    distribution by its distance from a uniform set of the same size
    (Section IV-B1).  Using the analytical uniform CDF avoids materialising
    ``D_U``: for sorted keys ``k_i`` with ranks ``i/n``, the KS gap against
    ``U(min, max)`` is evaluated at every key (both CDF sides).
    """
    arr = _as_sorted(keys, assume_sorted)
    lo, hi = arr[0], arr[-1]
    if hi == lo:
        # All keys identical: the empirical CDF is a unit step, the uniform
        # is degenerate too; define the distance as 0.
        return 0.0
    n = len(arr)
    u = (arr - lo) / (hi - lo)
    ranks_at = np.arange(1, n + 1) / n
    ranks_before = np.arange(0, n) / n
    gap = np.maximum(np.abs(ranks_at - u), np.abs(ranks_before - u))
    return float(gap.max())
