"""d = 3 tests: the paper defines ELSI for general d >= 2 (Definition 1,
Algorithm 2's 2^d partitions, RL's eta^d grid); verify the stack beyond 2-d.
"""

import numpy as np
import pytest

from repro.baselines import KDBIndex
from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.methods import RepresentativeSetMethod, SystematicSamplingMethod
from repro.indices import MLIndex, RSMIIndex, ZMIndex
from repro.queries.evaluate import brute_force_knn, brute_force_window
from repro.spatial.rect import Rect
from repro.spatial.zcurve import zvalues


@pytest.fixture(scope="module")
def points_3d():
    rng = np.random.default_rng(0)
    clusters = rng.random((6, 3))
    assignment = rng.integers(0, 6, 2_000)
    pts = clusters[assignment] + rng.normal(0, 0.05, (2_000, 3))
    return np.clip(pts, 0, 1)


@pytest.fixture(scope="module")
def builder():
    return ELSIModelBuilder(ELSIConfig(train_epochs=80, eta=4), method="SP")


class TestIndices3D:
    @pytest.mark.parametrize("cls,kwargs", [
        (ZMIndex, {"bits": 10}),
        (MLIndex, {"n_references": 8}),
        (RSMIIndex, {"leaf_capacity": 500, "bits": 10}),
    ])
    def test_point_queries(self, cls, kwargs, points_3d, builder):
        index = cls(builder=builder, **kwargs).build(points_3d)
        assert all(index.point_query(p) for p in points_3d[::100])
        assert not index.point_query(np.array([2.0, 2.0, 2.0]))

    def test_zm_window_exact_3d(self, points_3d, builder):
        index = ZMIndex(builder=builder, bits=10).build(points_3d)
        rng = np.random.default_rng(1)
        for _ in range(15):
            center = points_3d[rng.integers(len(points_3d))]
            window = Rect.centered(center, 0.2)
            got = index.window_query(window)
            truth = brute_force_window(points_3d, window)
            assert len(got) == len(truth)

    def test_ml_knn_exact_3d(self, points_3d, builder):
        index = MLIndex(builder=builder, n_references=8).build(points_3d)
        q = np.array([0.5, 0.5, 0.5])
        got = index.knn_query(q, 10)
        truth = brute_force_knn(points_3d, q, 10)
        kth = np.linalg.norm(truth[-1] - q)
        assert (np.linalg.norm(got - q, axis=1) <= kth + 1e-12).all()

    def test_kdb_3d(self, points_3d):
        index = KDBIndex().build(points_3d)
        window = Rect.centered(np.array([0.5, 0.5, 0.5]), 0.3)
        got = index.window_query(window)
        assert len(got) == len(brute_force_window(points_3d, window))


class TestMethods3D:
    def test_rs_octree_partitioning(self, points_3d):
        """Algorithm 2 in 3-d: the quadtree becomes an octree (2^3 children)."""
        bounds = Rect.bounding(points_3d)
        keys = zvalues(points_3d, bounds, bits=10).astype(np.float64)
        order = np.argsort(keys, kind="stable")
        result = RepresentativeSetMethod(beta=100).compute_set(
            keys[order], points_3d[order], None
        )
        assert 5 <= len(result.train_keys) <= len(points_3d)

    def test_sp_3d(self, points_3d):
        bounds = Rect.bounding(points_3d)
        keys = np.sort(zvalues(points_3d, bounds, bits=10).astype(np.float64))
        pts = points_3d[np.argsort(zvalues(points_3d, bounds, bits=10))]
        result = SystematicSamplingMethod(rho=0.02).compute_set(keys, pts, None)
        assert len(result.train_keys) == pytest.approx(0.02 * len(keys), abs=2)

    def test_rl_eta_cubed_cells(self, points_3d):
        from repro.core.methods import ReinforcementLearningMethod

        method = ReinforcementLearningMethod(eta=3, steps=30, seed=0)
        centers = method._cell_centers(points_3d)
        assert centers.shape == (27, 3)  # eta^d


class TestUpdates3D:
    def test_update_processor_3d(self, points_3d, builder):
        from repro.core.update_processor import UpdateProcessor

        index = ZMIndex(builder=builder, bits=10).build(points_3d)
        processor = UpdateProcessor(index, ELSIConfig(train_epochs=60))
        p = np.array([0.11, 0.22, 0.33])
        processor.insert(p)
        assert processor.point_query(p)
        assert processor.delete(points_3d[4])
        assert not processor.point_query(points_3d[4])
        features = processor.update_features()
        assert features.shape == (5,)
