"""ELSI's method pool (Section V): training-set construction strategies.

Adapted from the literature:

- :mod:`repro.core.methods.sampling` — SP (systematic) and RSP (random),
- :mod:`repro.core.methods.clustering` — CL (k-means centroids),
- :mod:`repro.core.methods.model_reuse` — MR (pre-trained model pool).

Proposed by the paper:

- :mod:`repro.core.methods.representative` — RS (Algorithm 2),
- :mod:`repro.core.methods.rl` — RL (MDP + DQN search).

Backup:

- :mod:`repro.core.methods.original` — OG (train on the full data set).
"""

from repro.core.methods.base import BuildMethod, MethodResult, make_method_pool
from repro.core.methods.clustering import ClusteringMethod
from repro.core.methods.model_reuse import ModelReuseMethod
from repro.core.methods.original import OriginalMethod
from repro.core.methods.representative import RepresentativeSetMethod
from repro.core.methods.rl import ReinforcementLearningMethod
from repro.core.methods.sampling import RandomSamplingMethod, SystematicSamplingMethod

__all__ = [
    "BuildMethod",
    "ClusteringMethod",
    "MethodResult",
    "ModelReuseMethod",
    "OriginalMethod",
    "RandomSamplingMethod",
    "ReinforcementLearningMethod",
    "RepresentativeSetMethod",
    "SystematicSamplingMethod",
    "make_method_pool",
]
