"""OG: the backup method — train on the full data set (no reduction).

This is what a base index does without ELSI.  It sits in the method pool so
the method selector can fall back to it when query time is the overriding
priority (small λ) and so every experiment has the no-ELSI reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.methods.base import BuildMethod, MethodResult
from repro.indices.base import MapFn

__all__ = ["OriginalMethod"]


class OriginalMethod(BuildMethod):
    """OG: the identity training set."""

    name = "OG"
    requires_map_fn = False

    def compute_set(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None,
    ) -> MethodResult:
        n = len(sorted_keys)
        ranks = np.arange(n, dtype=np.float64) / max(n - 1, 1)
        return MethodResult(sorted_keys, ranks, extra_seconds=0.0)
