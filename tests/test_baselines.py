"""Unit tests for the traditional competitor indices (Grid, KDB, HRR, RR*).

Traditional indices are exact by design: every query result is compared
against brute force.
"""

import numpy as np
import pytest

from repro.baselines import GridIndex, HRRIndex, KDBIndex, RStarIndex
from repro.queries.evaluate import brute_force_knn, brute_force_window
from repro.spatial.rect import Rect

CASES = [
    pytest.param(GridIndex, id="Grid"),
    pytest.param(KDBIndex, id="KDB"),
    pytest.param(HRRIndex, id="HRR"),
    pytest.param(RStarIndex, id="RR*"),
]


@pytest.fixture(scope="module")
def built(osm_points):
    return {
        "Grid": GridIndex().build(osm_points),
        "KDB": KDBIndex().build(osm_points),
        "HRR": HRRIndex().build(osm_points),
        "RR*": RStarIndex().build(osm_points),
    }


@pytest.mark.parametrize("cls", [p.values[0] for p in CASES], ids=[p.id for p in CASES])
class TestExactness:
    def _get(self, built, cls):
        names = {GridIndex: "Grid", KDBIndex: "KDB", HRRIndex: "HRR", RStarIndex: "RR*"}
        return built[names[cls]]

    def test_point_queries(self, built, osm_points, cls):
        index = self._get(built, cls)
        assert all(index.point_query(p) for p in osm_points[:300])
        assert not index.point_query(np.array([5.0, 5.0]))

    def test_window_queries_exact(self, built, osm_points, cls):
        index = self._get(built, cls)
        rng = np.random.default_rng(0)
        for _ in range(25):
            center = osm_points[rng.integers(len(osm_points))]
            window = Rect.centered(center, rng.uniform(0.01, 0.15))
            got = index.window_query(window)
            truth = brute_force_window(osm_points, window)
            assert len(got) == len(truth)
            assert set(map(tuple, got)) == set(map(tuple, truth))

    def test_knn_exact_distances(self, built, osm_points, cls):
        index = self._get(built, cls)
        rng = np.random.default_rng(1)
        for _ in range(10):
            q = rng.random(2)
            got = index.knn_query(q, 15)
            truth = brute_force_knn(osm_points, q, 15)
            np.testing.assert_allclose(
                np.sort(np.linalg.norm(got - q, axis=1)),
                np.sort(np.linalg.norm(truth - q, axis=1)),
                atol=1e-12,
            )

    def test_build_seconds_recorded(self, built, cls):
        assert self._get(built, cls).build_seconds > 0

    def test_unbuilt_rejected(self, built, cls):
        with pytest.raises(RuntimeError):
            cls().point_query(np.array([0.5, 0.5]))

    def test_invalid_input(self, built, cls):
        with pytest.raises(ValueError):
            cls().build(np.empty((0, 2)))


class TestGridSpecifics:
    def test_cell_count_rule(self, osm_points):
        """sqrt(n/B) cells per axis (Section VII-A)."""
        index = GridIndex(block_size=100).build(osm_points)
        assert index.cells_per_axis == int(np.sqrt(len(osm_points) / 100))

    def test_block_capacity(self, osm_points):
        index = GridIndex(block_size=50).build(osm_points)
        for blocks in index._cells.values():
            for block in blocks:
                assert len(block.points) <= 50

    def test_skewed_data_concentrates_splits(self):
        """Skew concentrates blocks in a few dense cells (the Figure 8 NYC
        effect: each insert into a dense cell scans many blocks, and the
        dense cells re-split repeatedly while sparse cells sit idle)."""
        from repro.data import load_dataset

        uniform_index = GridIndex().build(load_dataset("Uniform", 3_000))
        nyc_index = GridIndex().build(load_dataset("NYC", 3_000))
        blocks_per_cell = lambda idx: max(len(b) for b in idx._cells.values())  # noqa: E731
        assert blocks_per_cell(nyc_index) > 2 * blocks_per_cell(uniform_index)


class TestKDBSpecifics:
    def test_leaf_size_bounded(self, osm_points):
        index = KDBIndex(block_size=64).build(osm_points)
        stack = [index.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node.points) <= 64
            else:
                stack.extend(c for c in (node.left, node.right) if c)

    def test_depth_logarithmic(self, osm_points):
        index = KDBIndex(block_size=50).build(osm_points)
        assert index.depth() <= 2 * np.log2(len(osm_points) / 50) + 4

    def test_duplicate_coordinates(self):
        pts = np.tile([[0.5, 0.5]], (500, 1))
        index = KDBIndex(block_size=50).build(pts)
        assert index.point_query(np.array([0.5, 0.5]))


class TestHRRSpecifics:
    def test_leaves_packed_full(self, osm_points):
        index = HRRIndex(block_size=100).build(osm_points)
        leaves = []
        stack = [index.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(node.children)
        sizes = [len(leaf.points) for leaf in leaves]
        # All but the last leaf are full (packed bulk load).
        assert sorted(sizes, reverse=True)[: len(sizes) - 1] == [100] * (len(sizes) - 1)

    def test_total_points_preserved(self, osm_points):
        index = HRRIndex().build(osm_points)
        assert index.root.count_points() == len(osm_points)

    def test_low_leaf_overlap(self, osm_points):
        """Hilbert packing keeps sibling leaf MBRs essentially disjoint."""
        index = HRRIndex().build(osm_points)
        leaves = []
        stack = [index.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node.mbr)
            else:
                stack.extend(node.children)
        overlap = sum(
            leaves[i].intersection_area(leaves[j])
            for i in range(len(leaves))
            for j in range(i + 1, len(leaves))
        )
        total = sum(leaf.area() for leaf in leaves)
        assert overlap < 0.5 * total


class TestRStarSpecifics:
    def test_incremental_insert(self, osm_points):
        index = RStarIndex().build(osm_points[:500])
        for p in osm_points[500:600]:
            index.insert(p)
        assert index.n_points == 600
        assert all(index.point_query(p) for p in osm_points[:600][::10])

    def test_mbr_containment_invariant(self, osm_points):
        """Every child's MBR lies inside its parent's MBR."""
        index = RStarIndex().build(osm_points[:800])
        stack = [index.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.mbr.contains_points(node.points).all()
            else:
                for child in node.children:
                    assert node.mbr.contains_rect(child.mbr)
                    stack.append(child)

    def test_node_capacity_invariant(self, osm_points):
        index = RStarIndex(block_size=40, fanout=8).build(osm_points[:800])
        stack = [index.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node.points) <= 40
            else:
                assert len(node.children) <= 8
                stack.extend(node.children)

    def test_height_grows(self):
        rng = np.random.default_rng(0)
        index = RStarIndex(block_size=10, fanout=4)
        index.build(rng.random((400, 2)))
        assert index.height() >= 2
