"""The map-and-sort / predict-and-scan contract shared by all base indices.

Section III's applicability conditions become code here:

- :class:`TrainedModel` is an index model ``M``: it predicts a storage
  address from a mapped key and carries the empirical error bounds
  ``err_l``/``err_u`` measured over the *full* data set, so a scan of
  ``[M(q.key) - err_l, M(q.key) + err_u]`` is guaranteed to contain any
  indexed point (predict-and-scan correctness).
- :class:`ModelBuilder` is the seam ELSI plugs into.  Its
  :meth:`~ModelBuilder.build_model` receives the key-sorted data and returns
  a trained model; :class:`OriginalBuilder` (the paper's OG) trains on the
  full set, while ELSI's build processor trains on an engineered subset
  ``D_S`` (Algorithm 1).
- :class:`LearnedSpatialIndex` is the query-facing API: point, window and
  kNN queries plus build statistics.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig, train_regressor
from repro.spatial.rect import Rect

__all__ = [
    "BuildStats",
    "LearnedSpatialIndex",
    "MapFn",
    "ModelBuilder",
    "OriginalBuilder",
    "QueryStats",
    "TrainedModel",
]

# A base index's map() for one partition: coordinates -> mapped keys.
MapFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class BuildStats:
    """Per-build timing decomposition matching Section VI.

    ``prepare_seconds`` is ``cost_dp`` (mapping + sorting), ``train_seconds``
    is ``T(|D_S|)``, ``extra_seconds`` is the method-specific ``cost_ex``
    (sampling, clustering, partitioning, RL search, ...), and
    ``error_bound_seconds`` the ``M(n)`` full-set prediction pass.
    """

    prepare_seconds: float = 0.0
    train_seconds: float = 0.0
    extra_seconds: float = 0.0
    error_bound_seconds: float = 0.0
    train_set_size: int = 0
    n_models: int = 0
    methods_used: dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.prepare_seconds
            + self.train_seconds
            + self.extra_seconds
            + self.error_bound_seconds
        )

    def merge(self, other: "BuildStats") -> None:
        """Accumulate another model's build costs (multi-model indices)."""
        self.prepare_seconds += other.prepare_seconds
        self.train_seconds += other.train_seconds
        self.extra_seconds += other.extra_seconds
        self.error_bound_seconds += other.error_bound_seconds
        self.train_set_size += other.train_set_size
        self.n_models += other.n_models
        for name, count in other.methods_used.items():
            self.methods_used[name] = self.methods_used.get(name, 0) + count


@dataclass
class QueryStats:
    """Counters accumulated across queries (reset with :meth:`reset`)."""

    model_invocations: int = 0
    points_scanned: int = 0
    queries: int = 0

    def reset(self) -> None:
        self.model_invocations = 0
        self.points_scanned = 0
        self.queries = 0


class TrainedModel:
    """An index model ``M`` with empirical error bounds.

    Predicts the sorted position (address) of a mapped key among the ``n``
    indexed keys.  Keys are min-max normalised to [0, 1] before hitting the
    network; predictions are de-normalised to integer positions.

    Parameters
    ----------
    net:
        Any object with a ``predict(x) -> y`` over 2-D float input; an
        :class:`~repro.ml.ffn.FFN` in practice.
    key_lo, key_hi:
        Normalisation range, taken from the *full* data set so queries and
        error-bound measurement agree.
    n_indexed:
        Number of indexed points (the address space size).
    """

    def __init__(
        self,
        net: FFN,
        key_lo: float,
        key_hi: float,
        n_indexed: int,
        method_name: str = "OG",
        train_set_size: int = 0,
    ) -> None:
        if n_indexed < 0:
            raise ValueError(f"n_indexed must be >= 0, got {n_indexed}")
        self.net = net
        self.key_lo = float(key_lo)
        self.key_hi = float(key_hi)
        self.n_indexed = int(n_indexed)
        self.method_name = method_name
        self.train_set_size = train_set_size
        self.err_l = 0
        self.err_u = 0
        self.invocations = 0

    # ------------------------------------------------------------------
    def normalise(self, keys: np.ndarray) -> np.ndarray:
        """Min-max key normalisation (degenerate range maps to 0)."""
        keys = np.asarray(keys, dtype=np.float64)
        span = self.key_hi - self.key_lo
        if span <= 0.0:
            return np.zeros_like(keys)
        return (keys - self.key_lo) / span

    def predict_positions(self, keys: np.ndarray) -> np.ndarray:
        """Predicted sorted positions (clipped to [0, n-1]) for ``keys``."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        self.invocations += len(keys)
        if self.n_indexed == 0:
            return np.zeros(len(keys), dtype=np.int64)
        raw = self.net.predict(self.normalise(keys)[:, None])
        pos = np.rint(raw * (self.n_indexed - 1)).astype(np.int64)
        return np.clip(pos, 0, self.n_indexed - 1)

    def measure_error_bounds(self, all_keys_sorted: np.ndarray) -> None:
        """Record ``err_l``/``err_u`` over the full sorted key set.

        Guarantees that for every indexed key at true position ``i`` with
        prediction ``p``: ``i in [p - err_l, p + err_u]`` — the invariant the
        predict-and-scan paradigm relies on (Section III, condition 2).
        """
        n = len(all_keys_sorted)
        if n == 0:
            self.err_l = self.err_u = 0
            return
        predicted = self.predict_positions(all_keys_sorted)
        true_pos = np.arange(n)
        over = predicted - true_pos  # positive: predicted past the point
        self.err_l = int(max(0, over.max()))
        self.err_u = int(max(0, (-over).max()))

    def search_range(self, key: float) -> tuple[int, int]:
        """Half-open scan range [lo, hi) for ``key`` under the error bounds."""
        pos = int(self.predict_positions(np.array([key]))[0])
        return max(0, pos - self.err_l), min(self.n_indexed, pos + self.err_u + 1)

    @property
    def error_width(self) -> int:
        """``err_l + err_u`` — the paper's |Error| column in Table I."""
        return self.err_l + self.err_u


class ModelBuilder(ABC):
    """Strategy that turns key-sorted data into a :class:`TrainedModel`.

    This is ELSI's integration point: base indices never train directly,
    they ask their builder.  The builder receives the *sorted* mapped keys
    and the points in the same order (Algorithm 1 runs after map + sort).

    ``map_fn`` is the base index's ``map()`` for this partition: it turns
    arbitrary coordinates into mapped keys.  Build methods that synthesise
    points not in ``D`` (CL, RL) need it; an index whose mapping depends on
    ``D`` itself (LISA's data-derived grid) passes ``None``, which is
    exactly the paper's applicability restriction for those methods.
    """

    @abstractmethod
    def build_model(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        stats: BuildStats,
        map_fn: "MapFn | None" = None,
    ) -> TrainedModel:
        """Train an index model for the given partition and record costs."""


def fit_cdf_model(
    train_keys: np.ndarray,
    train_ranks: np.ndarray,
    key_lo: float,
    key_hi: float,
    n_indexed: int,
    hidden: int = 16,
    train_config: TrainConfig | None = None,
    method_name: str = "OG",
    seed: int = 0,
) -> tuple[TrainedModel, float]:
    """Train an FFN on (key, rank) pairs and wrap it as a :class:`TrainedModel`.

    ``train_ranks`` must already be normalised to [0, 1].  Returns the model
    and the training wall-clock seconds (the ``T(|D_S|)`` term).
    """
    model = TrainedModel(
        net=FFN([1, hidden, 1], seed=seed),
        key_lo=key_lo,
        key_hi=key_hi,
        n_indexed=n_indexed,
        method_name=method_name,
        train_set_size=len(train_keys),
    )
    x = model.normalise(np.asarray(train_keys, dtype=np.float64))
    result = train_regressor(model.net, x, np.asarray(train_ranks), train_config)
    return model, result.elapsed_seconds


class OriginalBuilder(ModelBuilder):
    """The paper's OG method: train on the full data set (no reduction)."""

    def __init__(self, train_config: TrainConfig | None = None, hidden: int = 16, seed: int = 0) -> None:
        self.train_config = train_config
        self.hidden = hidden
        self.seed = seed

    def build_model(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        stats: BuildStats,
        map_fn: MapFn | None = None,
    ) -> TrainedModel:
        n = len(sorted_keys)
        if n == 0:
            raise ValueError("cannot build a model over an empty partition")
        ranks = np.arange(n) / max(n - 1, 1)
        model, train_seconds = fit_cdf_model(
            sorted_keys,
            ranks,
            key_lo=float(sorted_keys[0]),
            key_hi=float(sorted_keys[-1]),
            n_indexed=n,
            hidden=self.hidden,
            train_config=self.train_config,
            method_name="OG",
            seed=self.seed,
        )
        started = time.perf_counter()
        model.measure_error_bounds(sorted_keys)
        stats.error_bound_seconds += time.perf_counter() - started
        stats.train_seconds += train_seconds
        stats.train_set_size += n
        stats.n_models += 1
        stats.methods_used["OG"] = stats.methods_used.get("OG", 0) + 1
        return model


class LearnedSpatialIndex(ABC):
    """Query-facing API shared by ZM, ML-Index, RSMI and LISA.

    Subclasses implement :meth:`build` (map + sort + train through the
    builder) and the three query kinds.  ``build_stats`` and ``query_stats``
    expose the cost counters every experiment reports.
    """

    name: str = "base"

    def __init__(self, builder: ModelBuilder | None = None, block_size: int = 100) -> None:
        self.builder = builder or OriginalBuilder()
        self.block_size = block_size
        self.build_stats = BuildStats()
        self.query_stats = QueryStats()
        self.bounds: Rect | None = None
        self.n_points = 0

    # ------------------------------------------------------------------
    @abstractmethod
    def build(self, points: np.ndarray) -> "LearnedSpatialIndex":
        """Index ``points``; returns self for chaining."""

    @abstractmethod
    def point_query(self, point: np.ndarray) -> bool:
        """Whether ``point`` (exact coordinates) is indexed."""

    @abstractmethod
    def window_query(self, window: Rect) -> np.ndarray:
        """Points inside ``window`` as an (m, d) array (may be approximate)."""

    @abstractmethod
    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        """The ``k`` nearest indexed points to ``point`` (may be approximate)."""

    @abstractmethod
    def indexed_points(self) -> np.ndarray:
        """Every indexed point, exactly (used by the update processor)."""

    def point_queries(self, points: np.ndarray) -> np.ndarray:
        """Batch membership test; returns one bool per row.

        The default loops over :meth:`point_query`; store-backed indices
        override it with vectorised model predictions (one forward pass
        for the whole batch).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.array([self.point_query(p) for p in pts], dtype=bool)

    def insert(self, point: np.ndarray) -> None:
        """Built-in insertion procedure (Section IV-B2 / Figure 15).

        Inserts without retraining: the point lands at its sorted key
        position and scan ranges widen conservatively, so predict-and-scan
        stays correct while queries slow down as insertions accumulate —
        the degradation that motivates the rebuild predictor.  Subclasses
        refine this (RSMI adds local models, Figure 1).
        """
        raise NotImplementedError(f"{self.name} has no built-in insertion")

    @abstractmethod
    def map(self, points: np.ndarray) -> np.ndarray:
        """The base index's map(): coordinates to one-dimensional keys."""

    # ------------------------------------------------------------------
    def _check_built(self) -> None:
        if self.bounds is None:
            raise RuntimeError(f"{self.name} index is not built yet")

    @staticmethod
    def _prepare_points(points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("need a non-empty (n, d) array of points")
        if pts.shape[1] < 2:
            raise ValueError("spatial indices need d >= 2")
        return pts

    def _knn_by_expanding_window(self, point: np.ndarray, k: int) -> np.ndarray:
        """kNN via growing window queries (the paper's learned-index strategy).

        Starts from a window sized for the expected k-point density and
        doubles the side length until at least k points fall inside *and*
        the k-th distance is covered by the window's inradius (so no closer
        point can be outside the window).
        """
        self._check_built()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        q = np.asarray(point, dtype=np.float64)
        assert self.bounds is not None
        d = self.bounds.ndim
        volume = self.bounds.area()
        density = self.n_points / volume if volume > 0 else self.n_points
        side = (k / max(density, 1e-12)) ** (1.0 / d)
        max_side = float(self.bounds.extents.max()) * 2.0 + 1e-9
        while True:
            window = Rect.centered(q, side)
            candidates = self.window_query(window)
            if len(candidates) >= k:
                diff = candidates - q
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                order = np.argsort(dist, kind="stable")
                if dist[order[k - 1]] <= side / 2.0 or side > max_side:
                    return candidates[order[:k]]
            elif side > max_side:
                # Fewer than k points indexed in total: return what exists.
                if len(candidates) == 0:
                    return np.empty((0, d))
                diff = candidates - q
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                order = np.argsort(dist, kind="stable")
                return candidates[order]
            side *= 2.0
