"""Tests for RSMI's level-wise build strategy and its obs instrumentation.

The level-wise frontier build dispatches every level's sibling model fits
as one ``build_models`` batch; the resulting tree must be identical to the
depth-first recursive reference — structure, models, and error bounds —
for every executor backend that guarantees bit-identical fits.
"""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices.rsmi import RSMIIndex
from repro.obs.trace import get_tracer


@pytest.fixture
def tracer():
    t = get_tracer()
    t.enable()
    t.reset()
    yield t
    t.disable()
    t.reset()


def _build(points, strategy, backend="serial", leaf_capacity=300):
    config = ELSIConfig(
        train_epochs=60, parallelism=backend, parallel_workers=2
    )
    return RSMIIndex(
        builder=ELSIModelBuilder(config, method="SP"),
        leaf_capacity=leaf_capacity,
        build_strategy=strategy,
    ).build(points)


def _signature(node, out):
    """Flatten a tree into comparable per-node tuples (pre-order)."""
    out.append(
        (
            node.depth,
            node.n,
            node.is_leaf,
            node.model.err_l,
            node.model.err_u,
            tuple(node.bounds.lo_array),
            tuple(node.bounds.hi_array),
        )
    )
    if node.is_leaf:
        out.append(tuple(node.store.keys[:: max(1, len(node.store) // 7)]))
    else:
        for child in node.children:
            if child is None:
                out.append(None)
            else:
                _signature(child, out)


def _weights_equal(a, b):
    stack = [(a.root, b.root)]
    while stack:
        na, nb = stack.pop()
        for wa, wb in zip(na.model.net.weights, nb.model.net.weights):
            np.testing.assert_array_equal(wa, wb)
        if not na.is_leaf:
            for ca, cb in zip(na.children, nb.children):
                assert (ca is None) == (cb is None)
                if ca is not None:
                    stack.append((ca, cb))


class TestLevelwiseParity:
    def test_level_matches_recursive(self, osm_points, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        recursive = _build(osm_points, "recursive")
        level = _build(osm_points, "level")
        sig_r, sig_l = [], []
        _signature(recursive.root, sig_r)
        _signature(level.root, sig_l)
        assert sig_r == sig_l
        _weights_equal(recursive, level)
        # The hierarchy is non-trivial at this leaf capacity.
        assert level.n_models() > 1
        assert level.depth() >= 1

    @pytest.mark.parametrize("backend", ["thread", "fused"])
    def test_backends_produce_same_tree(self, osm_points, backend, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        serial = _build(osm_points, "level")
        other = _build(osm_points, "level", backend=backend)
        sig_s, sig_o = [], []
        _signature(serial.root, sig_s)
        _signature(other.root, sig_o)
        if backend == "thread":
            # Thread dispatch is bit-identical to serial.
            assert sig_s == sig_o
            _weights_equal(serial, other)
        # Fused training differs at the ulp level, but every strategy must
        # keep predict-and-scan exact for indexed points.
        assert all(other.point_query(p) for p in osm_points[:150])

    def test_queries_agree_across_strategies(self, osm_points, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        from repro.spatial.rect import Rect

        recursive = _build(osm_points, "recursive")
        level = _build(osm_points, "level")
        assert all(level.point_query(p) for p in osm_points[:150])
        window = Rect(np.array([0.2, 0.2]), np.array([0.5, 0.5]))
        np.testing.assert_array_equal(
            recursive.window_query(window), level.window_query(window)
        )

    def test_overflow_rebuild_uses_configured_strategy(self, osm_points):
        index = _build(osm_points[:500], "level", leaf_capacity=40)
        rng = np.random.default_rng(2)
        extra = osm_points[500:900] + rng.normal(0.0, 1e-4, (400, 2))
        for p in extra:
            index.insert(p)
        assert all(index.point_query(p) for p in extra[::25])
        assert index.n_points == 900

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError, match="build_strategy"):
            RSMIIndex(build_strategy="bfs")


class TestRSMISpans:
    def test_build_emits_level_spans(self, osm_points, tracer):
        _build(osm_points, "level")
        build_spans = tracer.find("rsmi.build")
        assert len(build_spans) == 1
        assert build_spans[0].attrs["strategy"] == "level"
        assert build_spans[0].attrs["models"] >= 1
        levels = tracer.find("rsmi.fit_level")
        assert levels, "level-wise build must emit per-level spans"
        assert levels[0].attrs["level"] == 0
        assert levels[0].attrs["nodes"] == 1
        # Each level dispatches its fits through the executor.
        assert tracer.find("perf.map")

    def test_recursive_build_span(self, osm_points, tracer):
        _build(osm_points, "recursive")
        spans = tracer.find("rsmi.build")
        assert len(spans) == 1
        assert spans[0].attrs["strategy"] == "recursive"
        assert not tracer.find("rsmi.fit_level")

    def test_query_spans(self, osm_points, tracer):
        from repro.spatial.rect import Rect

        index = _build(osm_points, "level")
        tracer.reset()
        index.point_query(osm_points[0])
        index.window_query(Rect(np.array([0.2, 0.2]), np.array([0.4, 0.4])))
        point_spans = tracer.find("rsmi.point")
        assert len(point_spans) == 1
        assert point_spans[0].attrs["hops"] >= 1
        window_spans = tracer.find("rsmi.window")
        assert len(window_spans) == 1
        assert "matched" in window_spans[0].attrs
