"""Index persistence: save a built learned index to disk and load it back.

A production system rebuilds rarely (the whole point of ELSI) and reopens
often, so built indices must round-trip through storage.  Persistence
covers the store-based indices (ZM, ML-Index, LISA, Flood) whose state is
a block store plus trained models; RSMI's recursive structure is saved by
flattening its node tree.

Format: a single ``.npz`` with JSON-encoded structural metadata and numpy
arrays for points/keys/model weights.  FFN and PLA model states are both
supported.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.indices.base import TrainedModel
from repro.indices.rmi import RMIModel
from repro.indices.zm import ZMIndex
from repro.ml.ffn import FFN
from repro.ml.pla import PiecewiseLinearModel, _Segment
from repro.spatial.rect import Rect
from repro.storage.blocks import BlockStore

__all__ = ["load_zm_index", "save_zm_index"]


def _model_payload(model: TrainedModel, prefix: str, arrays: dict) -> dict:
    """Serialise one TrainedModel; weights go to ``arrays`` under ``prefix``."""
    meta = {
        "key_lo": model.key_lo,
        "key_hi": model.key_hi,
        "n_indexed": model.n_indexed,
        "method_name": model.method_name,
        "train_set_size": model.train_set_size,
        "err_l": model.err_l,
        "err_u": model.err_u,
    }
    net = model.net
    if isinstance(net, FFN):
        meta["net_type"] = "ffn"
        meta["layer_sizes"] = net.layer_sizes
        for name, value in net.state_dict().items():
            arrays[f"{prefix}.{name}"] = value
    elif isinstance(net, PiecewiseLinearModel):
        meta["net_type"] = "pla"
        meta["epsilon"] = net.epsilon
        arrays[f"{prefix}.starts"] = net._starts
        arrays[f"{prefix}.slopes"] = net._slopes
        arrays[f"{prefix}.intercepts"] = net._intercepts
    else:
        raise TypeError(f"cannot persist model net of type {type(net).__name__}")
    return meta


def _model_from_payload(meta: dict, prefix: str, arrays) -> TrainedModel:
    if meta["net_type"] == "ffn":
        net = FFN(list(meta["layer_sizes"]))
        state = {}
        for i in range(net.n_layers):
            state[f"w{i}"] = arrays[f"{prefix}.w{i}"]
            state[f"b{i}"] = arrays[f"{prefix}.b{i}"]
        net.load_state_dict(state)
    elif meta["net_type"] == "pla":
        segments = [
            _Segment(start=float(s), slope=float(m), intercept=float(b))
            for s, m, b in zip(
                arrays[f"{prefix}.starts"],
                arrays[f"{prefix}.slopes"],
                arrays[f"{prefix}.intercepts"],
            )
        ]
        net = PiecewiseLinearModel(segments, epsilon=meta["epsilon"])
    else:
        raise ValueError(f"unknown net type {meta['net_type']!r}")
    model = TrainedModel(
        net=net,
        key_lo=meta["key_lo"],
        key_hi=meta["key_hi"],
        n_indexed=meta["n_indexed"],
        method_name=meta["method_name"],
        train_set_size=meta["train_set_size"],
    )
    model.err_l = meta["err_l"]
    model.err_u = meta["err_u"]
    return model


def save_zm_index(index: ZMIndex, path: str | Path) -> None:
    """Persist a built ZM index to ``path`` (.npz)."""
    if index.store is None or index.model is None or index.bounds is None:
        raise ValueError("the index must be built before saving")
    arrays: dict[str, np.ndarray] = {
        "points": index.store.points,
        "keys": index.store.keys,
        "ids": index.store.ids,
    }
    meta = {
        "format": "repro-zm-v1",
        "bits": index.bits,
        "block_size": index.block_size,
        "branching": index.branching,
        "n_points": index.n_points,
        "bounds_lo": list(index.bounds.lo),
        "bounds_hi": list(index.bounds.hi),
        "native_inserts": index._native_inserts,
        "stage1": _model_payload(index.model.stage1, "m0", arrays),
        "stage2": [],
        "stage2_positions": [],
        "rmi_n": index.model.n,
    }
    for i, model in enumerate(index.model.stage2):
        if model is index.model.stage1:
            meta["stage2"].append(None)
        else:
            meta["stage2"].append(_model_payload(model, f"m{i + 1}", arrays))
        arrays[f"pos{i}"] = index.model._stage2_positions[i]
        meta["stage2_positions"].append(f"pos{i}")
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(Path(path), **arrays)


def load_zm_index(path: str | Path) -> ZMIndex:
    """Load a ZM index saved by :func:`save_zm_index`; queryable immediately."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        if meta.get("format") != "repro-zm-v1":
            raise ValueError(f"not a repro ZM index file: {path}")
        index = ZMIndex(
            block_size=meta["block_size"],
            bits=meta["bits"],
            branching=meta["branching"],
        )
        index.bounds = Rect(tuple(meta["bounds_lo"]), tuple(meta["bounds_hi"]))
        index.n_points = meta["n_points"]
        index._native_inserts = meta["native_inserts"]
        # Rebuild the store without re-sorting (arrays are already sorted).
        store = BlockStore.__new__(BlockStore)
        store.points = data["points"]
        store.keys = data["keys"]
        store.ids = data["ids"]
        store.block_size = meta["block_size"]
        store._reads = 0
        index.store = store

        rmi = RMIModel(index.builder, branching=meta["branching"])
        rmi.n = meta["rmi_n"]
        rmi.stage1 = _model_from_payload(meta["stage1"], "m0", data)
        rmi.stage2 = []
        rmi._stage2_positions = []
        for i, payload in enumerate(meta["stage2"]):
            if payload is None:
                rmi.stage2.append(rmi.stage1)
            else:
                rmi.stage2.append(_model_from_payload(payload, f"m{i + 1}", data))
            rmi._stage2_positions.append(data[meta["stage2_positions"][i]])
        index.model = rmi
    return index
