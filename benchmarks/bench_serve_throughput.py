"""Serving throughput benchmark: micro-batching vs one-at-a-time.

Builds a ZM index, then drives :class:`repro.serve.IndexServer` with the
closed-loop in-process driver across a sweep of batch-formation windows
(``max_wait_seconds``) and compares against the unbatched baseline (a
single thread calling the scalar query APIs one request at a time).
Every configuration is run twice: quiescent, and with a concurrent
updater thread feeding inserts (which periodically triggers background
rebuilds and generation swaps) — serving throughput with updates in
flight is the number that matters for a live system.

Writes machine-readable ``BENCH_serve.json``.  Run from the repo root
(scale via ``REPRO_SCALE=smoke|default|large``):

    PYTHONPATH=src REPRO_SCALE=default python benchmarks/bench_serve_throughput.py
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time

import numpy as np

from repro.bench.harness import ExperimentScale
from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.update_processor import UpdateProcessor
from repro.indices import ZMIndex
from repro.serve import IndexServer, ServeConfig, ServeWorkload, run_baseline, run_closed_loop

#: Batch-formation windows swept by the benchmark (seconds).  0 serves
#: whatever is queued immediately; larger windows buy bigger batches.
WAIT_WINDOWS = (0.0, 0.0005, 0.002, 0.008)
MAX_BATCH_SIZE = 256
CLIENTS = 8
PIPELINE = 128


def _build(points: np.ndarray, scale: ExperimentScale) -> ZMIndex:
    config = ELSIConfig(train_epochs=scale.train_epochs)
    return ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(points)


def _point_workload(points: np.ndarray, n_requests: int) -> ServeWorkload:
    rng = np.random.default_rng(7)
    return ServeWorkload.points_only(points[rng.integers(0, len(points), size=n_requests)])


def _serve_once(
    index: ZMIndex,
    workload: ServeWorkload,
    wait: float,
    with_updates: bool,
    n_updates: int,
) -> dict:
    config = ServeConfig(
        max_batch_size=MAX_BATCH_SIZE,
        max_wait_seconds=wait,
        rebuild_check_every=max(n_updates // 4, 1),
    )
    server = IndexServer(index, config, elsi_config=ELSIConfig())
    rng = np.random.default_rng(11)
    updates = rng.uniform(0.0, 1.0, size=(n_updates, 2))
    with server:
        stop = threading.Event()

        def feeder() -> None:
            for p in updates:
                if stop.is_set():
                    return
                server.insert(p)
                time.sleep(0)  # yield so queries interleave

        threads = []
        if with_updates:
            threads.append(threading.Thread(target=feeder, name="bench-updates"))
            # Force one rebuild + generation swap mid-run so the measured
            # throughput genuinely includes serving-while-rebuilding (the
            # drift heuristic alone may not fire within a short benchmark).
            threads.append(
                threading.Thread(target=server.rebuild_now, name="bench-rebuild")
            )
            for t in threads:
                t.start()
        result = run_closed_loop(server, workload, clients=CLIENTS, pipeline=PIPELINE)
        stop.set()
        for t in threads:
            t.join()
        stats = server.stats.snapshot()
    return {
        "max_wait_seconds": wait,
        "max_batch_size": MAX_BATCH_SIZE,
        "with_updates": with_updates,
        "throughput": result.throughput,
        "seconds": result.elapsed_seconds,
        "errors": result.errors,
        "mean_batch_size": stats["mean_batch_size"],
        "p50_latency_seconds": stats["latency"]["p50_seconds"],
        "p99_latency_seconds": stats["latency"]["p99_seconds"],
        "inserts": stats["inserts"],
        "rebuilds": stats["rebuilds"],
        "generation_swaps": stats["generation_swaps"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_serve.json", help="where to write the results"
    )
    args = parser.parse_args()

    scale = ExperimentScale.from_env(default="default")
    from repro.data import load_dataset

    points = load_dataset("OSM1", scale.n)
    n_requests = max(scale.n_point_queries * 10, 2_000)
    n_updates = max(scale.n // 20, 50)
    print(f"scale={scale.name} n={scale.n} requests={n_requests} cpus={os.cpu_count()}")

    index = _build(points, scale)
    workload = _point_workload(points, n_requests)

    baseline = run_baseline(UpdateProcessor(index, ELSIConfig()), workload)
    print(f"baseline (unbatched loop): {baseline.throughput:,.0f} req/s")

    results = []
    best_speedup = 0.0
    for with_updates in (False, True):
        for wait in WAIT_WINDOWS:
            record = _serve_once(index, workload, wait, with_updates, n_updates)
            record["speedup_vs_baseline"] = record["throughput"] / baseline.throughput
            best_speedup = max(best_speedup, record["speedup_vs_baseline"])
            results.append(record)
            tag = "updates" if with_updates else "quiescent"
            print(
                f"wait={wait*1e3:5.1f}ms {tag:9s} "
                f"{record['throughput']:>10,.0f} req/s "
                f"batch={record['mean_batch_size']:6.1f} "
                f"p99={record['p99_latency_seconds']*1e3:6.2f}ms "
                f"rebuilds={record['rebuilds']} "
                f"speedup={record['speedup_vs_baseline']:.1f}x"
            )

    from repro.perf.fused_infer import resolve_dtype

    payload = {
        "benchmark": "bench_serve_throughput",
        "scale": scale.name,
        "n": scale.n,
        "n_requests": n_requests,
        "n_updates": n_updates,
        "clients": CLIENTS,
        "pipeline": PIPELINE,
        "cpu_count": os.cpu_count(),
        "dtype": resolve_dtype(),
        "baseline": {
            "throughput": baseline.throughput,
            "seconds": baseline.elapsed_seconds,
        },
        "best_speedup_vs_baseline": best_speedup,
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output} (best speedup {best_speedup:.1f}x)")


if __name__ == "__main__":
    main()
