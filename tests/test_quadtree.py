"""Unit tests for the quadtree partitioning substrate (Algorithm 2)."""

import numpy as np
import pytest

from repro.spatial.quadtree import QuadTree
from repro.spatial.rect import Rect


def test_every_point_in_exactly_one_leaf(osm_points):
    tree = QuadTree(osm_points, max_points=50)
    indices = np.concatenate([leaf.point_indices for leaf in tree.leaves()])
    assert sorted(indices.tolist()) == list(range(len(osm_points)))


def test_leaf_capacity_respected(osm_points):
    tree = QuadTree(osm_points, max_points=64)
    assert all(leaf.size <= 64 for leaf in tree.leaves())


def test_points_inside_leaf_bounds(osm_points):
    tree = QuadTree(osm_points, max_points=100)
    for leaf in tree.leaves():
        pts = osm_points[leaf.point_indices]
        # Closed-open convention: lower bound inclusive, upper may equal.
        assert np.all(pts >= leaf.bounds.lo_array - 1e-12)
        assert np.all(pts <= leaf.bounds.hi_array + 1e-12)


def test_single_node_when_under_capacity():
    pts = np.random.default_rng(0).random((10, 2))
    tree = QuadTree(pts, max_points=100)
    assert tree.root.is_leaf
    assert tree.depth() == 0


def test_duplicate_points_bounded_by_max_depth():
    pts = np.tile([[0.5, 0.5]], (100, 1))
    tree = QuadTree(pts, max_points=4, max_depth=6)
    assert tree.depth() <= 6
    assert sum(leaf.size for leaf in tree.leaves()) == 100


def test_locate_finds_containing_leaf(osm_points):
    tree = QuadTree(osm_points, max_points=32)
    for p in osm_points[:100]:
        leaf = tree.locate(p)
        assert leaf.is_leaf
        assert leaf.bounds.contains_point(np.clip(p, leaf.bounds.lo_array, leaf.bounds.hi_array))


def test_locate_consistent_with_membership(osm_points):
    tree = QuadTree(osm_points, max_points=32)
    for i in range(0, 200, 7):
        leaf = tree.locate(osm_points[i])
        assert i in set(leaf.point_indices.tolist())


def test_3d_partitioning():
    pts = np.random.default_rng(1).random((500, 3))
    tree = QuadTree(pts, max_points=32)
    internal, _leaves = tree.count_nodes()
    assert internal >= 1
    # Each internal node has 2^3 children.
    assert len(tree.root.children) == 8
    assert sum(leaf.size for leaf in tree.leaves()) == 500


def test_explicit_bounds():
    pts = np.array([[0.4, 0.4], [0.6, 0.6]])
    tree = QuadTree(pts, max_points=1, bounds=Rect.unit(2))
    assert tree.bounds == Rect.unit(2)


def test_empty_points():
    tree = QuadTree(np.empty((0, 2)), max_points=4)
    assert tree.root.is_leaf
    assert tree.leaves() == []
    assert tree.leaves(include_empty=True)[0].size == 0


def test_invalid_args():
    pts = np.zeros((2, 2))
    with pytest.raises(ValueError):
        QuadTree(pts, max_points=0)
    with pytest.raises(ValueError):
        QuadTree(np.zeros(3), max_points=1)


def test_count_nodes_consistency(osm_points):
    tree = QuadTree(osm_points, max_points=50)
    internal, leaves = tree.count_nodes()
    # A full 2^d-ary tree: leaves = internal * (2^d - 1) + 1.
    assert leaves == internal * 3 + 1
