"""Shard scaling benchmark: scatter-gather routing at N = 1, 2, 4 shards.

Builds one dataset, then serves the identical point/window/kNN workload
through sharded clusters of increasing width (each shard a separate
worker process with its own IndexServer, WAL, and snapshots) and through
two single-process baselines:

- ``closed_loop`` — the acceptance baseline: one in-process IndexServer
  driven by the closed-loop driver (8 clients, pipeline 128), i.e. the
  throughput a single unsharded server sustains on the same workload.
- ``single_batch`` — the same server answering the workload through one
  ``submit_point_batch`` call, isolating how much of the sharded tier's
  advantage comes from batching alone vs from partitioned serving.

Two headline numbers, deliberately kept apart:

- ``speedup_point_4x_vs_closed_loop`` — 4-shard cluster vs the
  closed-loop single server.  This conflates batching with sharding
  (the router always speaks batches), so it is large even on one core.
  The 2.0x acceptance floor on it holds everywhere.
- ``speedup_point_4x_vs_single_batch`` — 4-shard cluster vs the same
  workload as one batch on one unsharded server.  This isolates what
  *sharding itself* buys; it cannot exceed ~1.0x without real cores to
  scale onto and smoke-sized batches cannot amortise the process
  fan-out, so its 1.5x floor is enforced only when
  ``os.cpu_count() >= 4`` and the scale is above ``smoke``
  (``sharding_floor_enforced`` in the output records whether it was;
  the number itself is always reported).

Writes machine-readable ``BENCH_shard.json``.

Run from the repo root (scale via ``REPRO_SCALE=smoke|default|large``):

    PYTHONPATH=src REPRO_SCALE=smoke python benchmarks/bench_shard_scaling.py
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import ExperimentScale
from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import ZMIndex
from repro.perf.fused_infer import resolve_dtype
from repro.queries.workload import window_workload
from repro.serve import IndexServer, ServeConfig, ServeWorkload, run_closed_loop
from repro.shard import build_cluster

N_SHARDS_SWEEP = (1, 2, 4)
REPEATS = 3
CLIENTS = 8
PIPELINE = 128
K = 10


def _workloads(points: np.ndarray, scale: ExperimentScale):
    rng = np.random.default_rng(7)
    n_requests = max(scale.n_point_queries * 100, 20_000)
    probes = points[rng.integers(0, len(points), size=n_requests)]
    windows = [
        q.window
        for q in window_workload(points, scale.n_window_queries, 1e-3, seed=11)
    ]
    knn_points = points[rng.integers(0, len(points), size=scale.n_knn_queries)]
    return probes, windows, knn_points


def _best_qps(fn, n_items: int, repeats: int = REPEATS) -> float:
    """Best-of-N throughput of ``fn`` answering ``n_items`` queries."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = max(best, n_items / (time.perf_counter() - start))
    return best


def _fleet_p99(stats: dict) -> float:
    """Fleet-wide request-latency p99 from a merged metrics export."""
    for entry in stats.get("serve.request_latency_seconds", ()):
        if not entry["labels"]:
            return entry["value"]["p99"]
    return float("nan")


def _worker_cpu_seconds(stats: dict) -> dict:
    """Per-shard cumulative worker CPU (user+system) from the merged
    export — the ``worker.cpu_seconds`` gauge each stats reply carries."""
    return {
        entry["labels"]["shard"]: float(entry["value"])
        for entry in stats.get("worker.cpu_seconds", ())
        if "shard" in entry["labels"]
    }


def _bench_baselines(points, probes, scale) -> dict:
    config = ELSIConfig(train_epochs=scale.train_epochs)
    index = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(points)
    serve_config = ServeConfig(max_wait_seconds=0.0)
    with IndexServer(index, serve_config, elsi_config=config) as server:
        workload = ServeWorkload.points_only(probes)
        result = run_closed_loop(
            server, workload, clients=CLIENTS, pipeline=PIPELINE
        )
        closed_loop = result.throughput
        single_batch = _best_qps(
            lambda: server.submit_point_batch(probes).wait(300.0), len(probes)
        )
    return {
        "closed_loop": closed_loop,
        "closed_loop_errors": result.errors,
        "single_batch": single_batch,
    }


def _bench_cluster(
    points, probes, windows, knn_points, n_shards, scale, root: Path
) -> dict:
    router = build_cluster(
        points,
        root / f"cluster-{n_shards}",
        n_shards=n_shards,
        elsi={"train_epochs": scale.train_epochs, "seed": 0},
        serve={"max_wait_seconds": 0.0},
    )
    with router:
        cpu_before = _worker_cpu_seconds(router.stats_snapshot())
        wall_start = time.perf_counter()
        point_qps = _best_qps(lambda: router.point_queries(probes), len(probes))
        window_qps = _best_qps(
            lambda: router.window_queries(windows), len(windows)
        )
        knn_qps = _best_qps(
            lambda: router.knn_queries(knn_points, K), len(knn_points)
        )
        wall_seconds = time.perf_counter() - wall_start
        stats = router.stats_snapshot()
        health = router.health_summary()["overall"]
    # Scrape-to-scrape CPU deltas per worker: real parallel speedup shows
    # as aggregate CPU exceeding wall time; pure batching does not.
    cpu_after = _worker_cpu_seconds(stats)
    worker_cpu = {
        shard: round(cpu_after[shard] - cpu_before.get(shard, 0.0), 4)
        for shard in sorted(cpu_after)
    }
    total_cpu = sum(worker_cpu.values())
    return {
        "n_shards": n_shards,
        "point_qps": point_qps,
        "window_qps": window_qps,
        "knn_qps": knn_qps,
        "fleet_p99_seconds": _fleet_p99(stats),
        "health": health,
        "workload_wall_seconds": wall_seconds,
        "worker_cpu_seconds": worker_cpu,
        "worker_cpu_total_seconds": total_cpu,
        "cpu_utilisation_vs_wall": (
            total_cpu / wall_seconds if wall_seconds > 0 else float("nan")
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_shard.json", help="where to write the results"
    )
    args = parser.parse_args()

    scale = ExperimentScale.from_env(default="default")
    from repro.data import load_dataset

    points = load_dataset("OSM1", scale.n)
    probes, windows, knn_points = _workloads(points, scale)
    print(
        f"scale={scale.name} n={scale.n} point_requests={len(probes)} "
        f"windows={len(windows)} knn={len(knn_points)} cpus={os.cpu_count()}"
    )

    baselines = _bench_baselines(points, probes, scale)
    print(
        f"baseline closed-loop: {baselines['closed_loop']:>10,.0f} req/s   "
        f"single-server batch: {baselines['single_batch']:>10,.0f} req/s"
    )

    results = []
    with tempfile.TemporaryDirectory(prefix="bench-shard-") as tmp:
        for n_shards in N_SHARDS_SWEEP:
            record = _bench_cluster(
                points, probes, windows, knn_points, n_shards, scale, Path(tmp)
            )
            record["speedup_vs_closed_loop"] = (
                record["point_qps"] / baselines["closed_loop"]
            )
            record["speedup_vs_single_batch"] = (
                record["point_qps"] / baselines["single_batch"]
            )
            results.append(record)
            print(
                f"shards={n_shards}  point {record['point_qps']:>10,.0f}/s  "
                f"window {record['window_qps']:>8,.0f}/s  "
                f"knn {record['knn_qps']:>8,.0f}/s  "
                f"p99={record['fleet_p99_seconds']*1e3:6.2f}ms  "
                f"{record['speedup_vs_closed_loop']:5.1f}x vs closed-loop  "
                f"{record['speedup_vs_single_batch']:4.2f}x vs single batch  "
                f"cpu {record['worker_cpu_total_seconds']:.2f}s "
                f"({record['cpu_utilisation_vs_wall']:.2f}x wall)"
            )

    at_four = next(r for r in results if r["n_shards"] == 4)
    speedup = at_four["speedup_vs_closed_loop"]
    shard_speedup = at_four["speedup_vs_single_batch"]
    # Sharding can only beat one server batching the same workload when
    # there are cores for the shards to run on and batches big enough to
    # amortise the process fan-out; otherwise the number is reported but
    # not enforced.
    sharding_floor_enforced = (os.cpu_count() or 1) >= 4 and scale.name != "smoke"
    payload = {
        "benchmark": "bench_shard_scaling",
        "scale": scale.name,
        "n": scale.n,
        "n_point_requests": len(probes),
        "n_windows": len(windows),
        "n_knn": len(knn_points),
        "k": K,
        "clients": CLIENTS,
        "pipeline": PIPELINE,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "dtype": resolve_dtype(),
        "baselines": baselines,
        "results": results,
        "speedup_point_4x_vs_closed_loop": speedup,
        "speedup_point_4x_vs_single_batch": shard_speedup,
        "sharding_floor_enforced": sharding_floor_enforced,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(
        f"wrote {args.output} (4 shards: {speedup:.1f}x vs closed-loop, "
        f"{shard_speedup:.2f}x vs single-server batch"
        + ("" if sharding_floor_enforced else "; sharding floor not enforced "
           f"(cpu_count={os.cpu_count()}, scale={scale.name})")
        + ")"
    )
    if speedup < 2.0:
        raise SystemExit(
            f"4-shard point throughput only {speedup:.2f}x the single-process "
            "closed-loop baseline (acceptance floor is 2.0x)"
        )
    if sharding_floor_enforced and shard_speedup < 1.5:
        raise SystemExit(
            f"4-shard point throughput only {shard_speedup:.2f}x the "
            "single-server batched baseline on a multi-core host "
            "(sharding floor is 1.5x) — sharding added no parallel benefit"
        )


if __name__ == "__main__":
    main()
