"""Figure 11 — point query time vs lambda (OSM1, TPC-H).

Paper shapes to hold: point query times of the -F indices grow only slowly
with lambda (the maximum increase in the paper is ~19% from lambda=0 to 1);
they stay comparable to the RSMI and RR* references.
"""

import numpy as np

from repro.bench.experiments import fig11_point_vs_lambda
from repro.bench.harness import format_table


def test_fig11_point_vs_lambda(ctx, benchmark):
    result = benchmark.pedantic(
        fig11_point_vs_lambda, args=(ctx,), rounds=1, iterations=1
    )

    print()
    for name, data in result.items():
        lams = [lam for lam, _ in data["series"]["ML-F"]]
        rows = [
            [label] + [f"{us:.1f}" for _l, us in series]
            for label, series in data["series"].items()
        ]
        rows.append(["RR* (ref)"] + [f"{data['RR*']:.1f}"] * len(lams))
        rows.append(["RSMI (ref)"] + [f"{data['RSMI']:.1f}"] * len(lams))
        print(format_table(
            ["index"] + [f"lam={l}" for l in lams], rows,
            title=f"Figure 11: point query time (us) vs lambda on {name}",
        ))

    for name, data in result.items():
        for label, series in data["series"].items():
            us = [v for _l, v in series]
            # Slow growth: the lambda=1 end within ~2.5x of the lambda=0 end.
            assert max(us) < 2.5 * min(us) + 10, (name, label, us)
