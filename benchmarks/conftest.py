"""Shared benchmark fixtures.

One :class:`~repro.bench.experiments.Context` per session: the method
selector and MR pool are prepared once (the paper's off-line one-off
preparation) and shared by every table/figure benchmark.

Scale is controlled by the ``REPRO_SCALE`` environment variable
(``smoke`` [default] / ``default`` / ``large``); see
:class:`repro.bench.harness.ExperimentScale`.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import Context
from repro.bench.harness import ExperimentScale


@pytest.fixture(scope="session")
def ctx() -> Context:
    return Context(ExperimentScale.from_env())


def pytest_configure(config):
    # Benchmarks are one-shot experiment drivers; calibration reruns would
    # multiply minutes-long experiments.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False
