"""Core perf microbenchmark: parallel build backends + batch-query engine.

Measures (1) multi-model index build time under every executor backend,
(2) batch point-query throughput against the per-query loop, and (3) fused
batch inference (one grouped einsum across all leaf models) against the
per-model prediction loop — in float64 and the opt-in float32 mode — then
writes a machine-readable ``BENCH_core.json`` — the repo's perf trajectory
seed.

Run from the repo root (scale via ``REPRO_SCALE=smoke|default|large``):

    PYTHONPATH=src REPRO_SCALE=default python benchmarks/bench_perf_core.py

Each result record carries ``op``, ``n``, ``backend``, ``seconds`` and
``speedup`` (vs the serial backend for builds, vs the scalar loop for
queries, vs the per-model loop for fused inference).  Thread/process
speedups reflect the host's core count — on a single-core CI runner they
hover near 1.0x and the ``fused`` backend (vectorised multi-model
training) carries the build win.  The fused-inference section runs at
n=1e6 (except at smoke scale) and *asserts* that fusion is not slower
than the per-model loop.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.bench.harness import ExperimentScale
from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import FloodIndex, LISAIndex, MLIndex, ZMIndex

#: RMI stage-2 fan-out for the build benchmark (the issue's "multi-model
#: build, branching >= 8").
BRANCHING = 16
BUILD_BACKENDS = ("serial", "thread", "process", "fused")
QUERY_INDICES = (ZMIndex, MLIndex, LISAIndex, FloodIndex)


def _build_index(points: np.ndarray, backend: str, scale: ExperimentScale):
    config = ELSIConfig(train_epochs=scale.train_epochs, parallelism=backend)
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=BRANCHING
    )
    started = time.perf_counter()
    index.build(points)
    return index, time.perf_counter() - started


def _models_identical(a, b) -> bool:
    return all(
        m1.err_l == m2.err_l
        and m1.err_u == m2.err_u
        and all(np.array_equal(w1, w2) for w1, w2 in zip(m1.net.weights, m2.net.weights))
        and all(np.array_equal(b1, b2) for b1, b2 in zip(m1.net.biases, m2.net.biases))
        for m1, m2 in zip(a.model.models, b.model.models)
    )


def bench_build(points: np.ndarray, scale: ExperimentScale) -> list[dict]:
    records = []
    serial_index, serial_seconds = _build_index(points, "serial", scale)
    records.append(
        {
            "op": "build",
            "n": len(points),
            "backend": "serial",
            "seconds": serial_seconds,
            "speedup": 1.0,
            "identical_to_serial": True,
        }
    )
    for backend in BUILD_BACKENDS[1:]:
        try:
            index, seconds = _build_index(points, backend, scale)
        except Exception as exc:  # e.g. process pools unavailable in a sandbox
            records.append(
                {
                    "op": "build",
                    "n": len(points),
                    "backend": backend,
                    "seconds": None,
                    "speedup": None,
                    "error": str(exc),
                }
            )
            continue
        records.append(
            {
                "op": "build",
                "n": len(points),
                "backend": backend,
                "seconds": seconds,
                "speedup": serial_seconds / seconds,
                "identical_to_serial": _models_identical(serial_index, index),
            }
        )
    return records


def bench_queries(points: np.ndarray, scale: ExperimentScale) -> list[dict]:
    rng = np.random.default_rng(7)
    b = max(scale.n_point_queries, 200)
    batch = np.vstack(
        [
            points[rng.integers(0, len(points), size=b)],  # hits
            rng.random((b, 2)) * 2.0,  # mostly misses
        ]
    )
    records = []
    for cls in QUERY_INDICES:
        config = ELSIConfig(train_epochs=scale.train_epochs)
        index = cls(builder=ELSIModelBuilder(config, method="SP")).build(points)
        started = time.perf_counter()
        loop = np.array([index.point_query(p) for p in batch], dtype=bool)
        loop_seconds = time.perf_counter() - started
        started = time.perf_counter()
        vectorised = index.point_queries(batch)
        batch_seconds = time.perf_counter() - started
        if not np.array_equal(loop, vectorised):
            raise AssertionError(f"{cls.name}: batch results diverge from the loop")
        records.append(
            {
                "op": f"point_queries[{cls.name}]",
                "n": len(batch),
                "backend": "loop",
                "seconds": loop_seconds,
                "speedup": 1.0,
            }
        )
        records.append(
            {
                "op": f"point_queries[{cls.name}]",
                "n": len(batch),
                "backend": "batch",
                "seconds": batch_seconds,
                "speedup": loop_seconds / batch_seconds,
            }
        )
    return records


#: Query batch size for the fused-inference benchmark (a serving-sized
#: micro-batch touching every stage-2 leaf).
FUSED_BATCH = 4096
#: Data size for the fused-inference benchmark at non-smoke scales (the
#: acceptance workload: 1e6 points).
FUSED_N = 1_000_000
#: Stage-2 fan-out for the fused-inference benchmark.  At 1e6 points a
#: branching-16 RMI leaves ~62k keys per leaf — far coarser than the
#: paper's per-leaf sizes — so the fused section uses a realistic wide
#: fan-out (~8k keys per leaf), which is also where the per-model
#: dispatch overhead that fusion removes actually bites.
FUSED_BRANCHING = 128


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_fused_inference(scale: ExperimentScale) -> list[dict]:
    """Fused engine vs per-model batch prediction, float64 and float32."""
    from repro.data import load_dataset

    n = scale.n if scale.name == "smoke" else FUSED_N
    points = load_dataset("OSM1", n)
    rng = np.random.default_rng(11)
    config = ELSIConfig(train_epochs=scale.train_epochs)
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=FUSED_BRANCHING
    ).build(points)
    model = index.model
    if model._engine is None:
        raise AssertionError("fused inference engine was not built")
    keys = index.map(points[rng.integers(0, len(points), size=FUSED_BATCH)])

    fused_seconds = _best_of(lambda: model.search_ranges(keys))
    engine = model._engine
    model._engine = None
    try:
        per_model_seconds = _best_of(lambda: model.search_ranges(keys))
        # Parity: both paths must answer real point queries identically.
        probe = points[rng.integers(0, len(points), size=512)]
        plain = index.point_queries(probe)
    finally:
        model._engine = engine
    if not np.array_equal(index.point_queries(probe), plain):
        raise AssertionError("fused point queries diverge from per-model")
    if fused_seconds > per_model_seconds:
        raise AssertionError(
            f"fused inference slower than per-model: "
            f"{fused_seconds:.4f}s vs {per_model_seconds:.4f}s"
        )
    records = [
        {
            "op": "fused_infer[ZM]",
            "n": n,
            "backend": "per_model",
            "seconds": per_model_seconds,
            "speedup": 1.0,
        },
        {
            "op": "fused_infer[ZM]",
            "n": n,
            "backend": "fused",
            "seconds": fused_seconds,
            "speedup": per_model_seconds / fused_seconds,
            "model_bytes": engine.nbytes,
        },
    ]

    # Opt-in float32: same answers, half the stacked-parameter memory.
    config32 = ELSIConfig(train_epochs=scale.train_epochs, dtype="float32")
    index32 = ZMIndex(
        builder=ELSIModelBuilder(config32, method="SP"), branching=FUSED_BRANCHING
    ).build(points)
    if index32.model._engine is None:
        raise AssertionError("float32 fused inference engine was not built")
    if not np.array_equal(index32.point_queries(probe), plain):
        raise AssertionError("float32 point queries diverge from float64")
    f32_seconds = _best_of(lambda: index32.model.search_ranges(keys))
    records.append(
        {
            "op": "fused_infer[ZM]",
            "n": n,
            "backend": "fused_f32",
            "seconds": f32_seconds,
            "speedup": per_model_seconds / f32_seconds,
            "model_bytes": index32.model._engine.nbytes,
            "parity_with_f64": True,
        }
    )
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_core.json", help="where to write the results"
    )
    args = parser.parse_args()

    scale = ExperimentScale.from_env(default="default")
    from repro.data import load_dataset

    points = load_dataset("OSM1", scale.n)
    print(f"scale={scale.name} n={scale.n} cpus={os.cpu_count()}")

    results = (
        bench_build(points, scale)
        + bench_queries(points, scale)
        + bench_fused_inference(scale)
    )
    for r in results:
        seconds = "failed" if r["seconds"] is None else f"{r['seconds']:.3f}s"
        speedup = "-" if r["speedup"] is None else f"{r['speedup']:.2f}x"
        print(f"{r['op']:24s} {r['backend']:8s} {seconds:>10s} {speedup:>8s}")

    payload = {
        "benchmark": "bench_perf_core",
        "scale": scale.name,
        "n": scale.n,
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
