"""Learned spatial indices (the paper's base indices).

Every index here satisfies ELSI's applicability conditions (Section III):

1. *Map-and-sort*: points are mapped to one-dimensional keys and stored in
   key order (:class:`repro.storage.blocks.BlockStore`).
2. *Predict-and-scan*: a point query invokes the index model once and scans
   ``[M(q) - err_l, M(q) + err_u]``.

The seam where ELSI plugs in is :class:`repro.indices.base.ModelBuilder`:
each index builds its model(s) through a builder, and ELSI substitutes its
build processor for the default original-data (OG) builder.

- :mod:`repro.indices.zm` — ZM: Z-curve keys + learned CDF model,
- :mod:`repro.indices.ml_index` — ML-Index: iDistance keys (exact queries),
- :mod:`repro.indices.rsmi` — RSMI: recursive SFC partitions, model per node,
- :mod:`repro.indices.lisa` — LISA: grid-mapped keys + shard prediction.

Extensions beyond the paper's four base indices (its stated future work):

- :mod:`repro.indices.flood` — Flood: a query-aware column index whose
  per-column models ELSI accelerates,
- :mod:`repro.indices.pgm` — a PGM-style builder giving *provable* error
  bounds via piecewise-linear CDFs.
"""

from repro.indices.base import (
    BuildStats,
    LearnedSpatialIndex,
    ModelBuilder,
    OriginalBuilder,
    TrainedModel,
)
from repro.indices.flood import FloodIndex
from repro.indices.lisa import LISAIndex
from repro.indices.ml_index import MLIndex
from repro.indices.pgm import PGMBuilder
from repro.indices.rmi import RMIModel
from repro.indices.rsmi import RSMIIndex
from repro.indices.zm import ZMIndex

__all__ = [
    "BuildStats",
    "FloodIndex",
    "LISAIndex",
    "LearnedSpatialIndex",
    "MLIndex",
    "ModelBuilder",
    "OriginalBuilder",
    "PGMBuilder",
    "RMIModel",
    "RSMIIndex",
    "TrainedModel",
    "ZMIndex",
]
