"""Core perf microbenchmark: parallel build backends + batch-query engine.

Measures (1) multi-model index build time under every executor backend,
(2) batch point-query throughput against the per-query loop, (3) fused
batch inference (one grouped einsum across all leaf models) against the
per-model prediction loop — in float64 and the opt-in float32 mode — and
(4) the fused scan-refinement kernels (single-pass gather + vectorised
predicate over flattened candidate runs) against the pre-PR batch kernels
on the 1e6-point acceptance workload, with float32 key-memory/parity
evidence — then writes a machine-readable ``BENCH_core.json`` — the
repo's perf trajectory seed.

Run from the repo root (scale via ``REPRO_SCALE=smoke|default|large``):

    PYTHONPATH=src REPRO_SCALE=default python benchmarks/bench_perf_core.py

Each result record carries ``op``, ``n``, ``backend``, ``seconds`` and
``speedup`` (vs the serial backend for builds, vs the scalar loop for
queries, vs the per-model loop for fused inference).  Thread/process
speedups reflect the host's core count — on a single-core CI runner they
hover near 1.0x and the ``fused`` backend (vectorised multi-model
training) carries the build win.  The fused-inference section runs at
n=1e6 (except at smoke scale) and *asserts* that fusion is not slower
than the per-model loop.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.bench.harness import ExperimentScale
from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import FloodIndex, LISAIndex, MLIndex, ZMIndex

#: RMI stage-2 fan-out for the build benchmark (the issue's "multi-model
#: build, branching >= 8").
BRANCHING = 16
BUILD_BACKENDS = ("serial", "thread", "process", "fused")
QUERY_INDICES = (ZMIndex, MLIndex, LISAIndex, FloodIndex)


def _build_index(points: np.ndarray, backend: str, scale: ExperimentScale):
    config = ELSIConfig(train_epochs=scale.train_epochs, parallelism=backend)
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=BRANCHING
    )
    started = time.perf_counter()
    index.build(points)
    return index, time.perf_counter() - started


def _models_identical(a, b) -> bool:
    return all(
        m1.err_l == m2.err_l
        and m1.err_u == m2.err_u
        and all(np.array_equal(w1, w2) for w1, w2 in zip(m1.net.weights, m2.net.weights))
        and all(np.array_equal(b1, b2) for b1, b2 in zip(m1.net.biases, m2.net.biases))
        for m1, m2 in zip(a.model.models, b.model.models)
    )


def bench_build(points: np.ndarray, scale: ExperimentScale) -> list[dict]:
    records = []
    serial_index, serial_seconds = _build_index(points, "serial", scale)
    records.append(
        {
            "op": "build",
            "n": len(points),
            "backend": "serial",
            "seconds": serial_seconds,
            "speedup": 1.0,
            "identical_to_serial": True,
        }
    )
    for backend in BUILD_BACKENDS[1:]:
        try:
            index, seconds = _build_index(points, backend, scale)
        except Exception as exc:  # e.g. process pools unavailable in a sandbox
            records.append(
                {
                    "op": "build",
                    "n": len(points),
                    "backend": backend,
                    "seconds": None,
                    "speedup": None,
                    "error": str(exc),
                }
            )
            continue
        records.append(
            {
                "op": "build",
                "n": len(points),
                "backend": backend,
                "seconds": seconds,
                "speedup": serial_seconds / seconds,
                "identical_to_serial": _models_identical(serial_index, index),
            }
        )
    return records


def bench_queries(points: np.ndarray, scale: ExperimentScale) -> list[dict]:
    rng = np.random.default_rng(7)
    b = max(scale.n_point_queries, 200)
    batch = np.vstack(
        [
            points[rng.integers(0, len(points), size=b)],  # hits
            rng.random((b, 2)) * 2.0,  # mostly misses
        ]
    )
    records = []
    for cls in QUERY_INDICES:
        config = ELSIConfig(train_epochs=scale.train_epochs)
        index = cls(builder=ELSIModelBuilder(config, method="SP")).build(points)
        started = time.perf_counter()
        loop = np.array([index.point_query(p) for p in batch], dtype=bool)
        loop_seconds = time.perf_counter() - started
        started = time.perf_counter()
        vectorised = index.point_queries(batch)
        batch_seconds = time.perf_counter() - started
        if not np.array_equal(loop, vectorised):
            raise AssertionError(f"{cls.name}: batch results diverge from the loop")
        records.append(
            {
                "op": f"point_queries[{cls.name}]",
                "n": len(batch),
                "backend": "loop",
                "seconds": loop_seconds,
                "speedup": 1.0,
            }
        )
        records.append(
            {
                "op": f"point_queries[{cls.name}]",
                "n": len(batch),
                "backend": "batch",
                "seconds": batch_seconds,
                "speedup": loop_seconds / batch_seconds,
            }
        )
    return records


#: Query batch size for the fused-inference benchmark (a serving-sized
#: micro-batch touching every stage-2 leaf).
FUSED_BATCH = 4096
#: Data size for the fused-inference benchmark at non-smoke scales (the
#: acceptance workload: 1e6 points).
FUSED_N = 1_000_000
#: Stage-2 fan-out for the fused-inference benchmark.  At 1e6 points a
#: branching-16 RMI leaves ~62k keys per leaf — far coarser than the
#: paper's per-leaf sizes — so the fused section uses a realistic wide
#: fan-out (~8k keys per leaf), which is also where the per-model
#: dispatch overhead that fusion removes actually bites.
FUSED_BRANCHING = 128


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _build_big_pair(scale: ExperimentScale):
    """The acceptance-workload indices (n=1e6, wide fan-out), built once in
    float64 and float32 and shared by the fused-inference and
    refinement-kernel sections."""
    from repro.data import load_dataset

    n = scale.n if scale.name == "smoke" else FUSED_N
    points = load_dataset("OSM1", n)
    config = ELSIConfig(train_epochs=scale.train_epochs)
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=FUSED_BRANCHING
    ).build(points)
    config32 = ELSIConfig(train_epochs=scale.train_epochs, dtype="float32")
    index32 = ZMIndex(
        builder=ELSIModelBuilder(config32, method="SP"), branching=FUSED_BRANCHING
    ).build(points)
    return points, index, index32


def bench_fused_inference(
    scale: ExperimentScale, points: np.ndarray, index: ZMIndex, index32: ZMIndex
) -> list[dict]:
    """Fused engine vs per-model batch prediction, float64 and float32."""
    n = len(points)
    rng = np.random.default_rng(11)
    model = index.model
    if model._engine is None:
        raise AssertionError("fused inference engine was not built")
    keys = index.map(points[rng.integers(0, len(points), size=FUSED_BATCH)])

    fused_seconds = _best_of(lambda: model.search_ranges(keys))
    engine = model._engine
    model._engine = None
    try:
        per_model_seconds = _best_of(lambda: model.search_ranges(keys))
        # Parity: both paths must answer real point queries identically.
        probe = points[rng.integers(0, len(points), size=512)]
        plain = index.point_queries(probe)
    finally:
        model._engine = engine
    if not np.array_equal(index.point_queries(probe), plain):
        raise AssertionError("fused point queries diverge from per-model")
    if fused_seconds > per_model_seconds:
        raise AssertionError(
            f"fused inference slower than per-model: "
            f"{fused_seconds:.4f}s vs {per_model_seconds:.4f}s"
        )
    records = [
        {
            "op": "fused_infer[ZM]",
            "n": n,
            "backend": "per_model",
            "seconds": per_model_seconds,
            "speedup": 1.0,
        },
        {
            "op": "fused_infer[ZM]",
            "n": n,
            "backend": "fused",
            "seconds": fused_seconds,
            "speedup": per_model_seconds / fused_seconds,
            "model_bytes": engine.nbytes,
        },
    ]

    # Opt-in float32: same answers, half the stacked-parameter memory.
    if index32.model._engine is None:
        raise AssertionError("float32 fused inference engine was not built")
    if not np.array_equal(index32.point_queries(probe), plain):
        raise AssertionError("float32 point queries diverge from float64")
    f32_seconds = _best_of(lambda: index32.model.search_ranges(keys))
    records.append(
        {
            "op": "fused_infer[ZM]",
            "n": n,
            "backend": "fused_f32",
            "seconds": f32_seconds,
            "speedup": per_model_seconds / f32_seconds,
            "model_bytes": index32.model._engine.nbytes,
            "parity_with_f64": True,
        }
    )
    return records


#: Batch sizes for the refinement-kernel benchmark (the acceptance
#: workload: 1e6-point batch point/window queries).
POINT_BATCH = 4096
WINDOW_BATCH = 256


def _reference_point_membership(store, lo, hi, query_keys, query_points):
    """The pre-PR batch point kernel, inlined verbatim as the baseline:
    one ``store.scan`` Python call per merged group, a single full-width
    gather-and-compare over all candidate rows, and ``logical_or.at``."""
    from repro.perf.batching import merge_ranges

    n = len(store)
    b = len(query_keys)
    out = np.zeros(b, dtype=bool)
    lo = np.clip(np.asarray(lo, dtype=np.int64), 0, n)
    hi = np.clip(np.asarray(hi, dtype=np.int64), 0, n)
    for g_lo, g_hi in zip(*merge_ranges(lo, hi)):
        store.scan(int(g_lo), int(g_hi))
    run_lo = np.searchsorted(store.keys, query_keys, side="left")
    run_hi = np.searchsorted(store.keys, query_keys, side="right")
    cand_lo = np.maximum(run_lo, lo)
    cand_hi = np.minimum(run_hi, hi)
    counts = np.maximum(cand_hi - cand_lo, 0)
    total = int(counts.sum())
    if total == 0:
        return out
    owner = np.repeat(np.arange(b), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
    rows = np.arange(total) - np.repeat(offsets, counts) + np.repeat(cand_lo, counts)
    equal = np.all(store.points[rows] == query_points[owner], axis=1)
    np.logical_or.at(out, owner, equal)
    return out


def _reference_window_queries(index: ZMIndex, windows) -> list:
    """The pre-PR batch window path, inlined verbatim as the baseline: one
    batched model pass, then a per-window ``locate_rank`` + ``scan`` +
    ``contains_points`` Python loop."""
    from repro.indices.zm import locate_rank

    store, model = index.store, index.model
    w = len(windows)
    corners = np.vstack(
        [win.lo_array for win in windows] + [win.hi_array for win in windows]
    )
    z = np.asarray(index.map(corners), dtype=np.float64)
    lo_pred, hi_pred = model.search_ranges(z)
    results = []
    for i, window in enumerate(windows):
        lo = locate_rank(
            store.keys, float(z[i]), (int(lo_pred[i]), int(hi_pred[i])), "left"
        )
        hi = locate_rank(
            store.keys, float(z[w + i]), (int(lo_pred[w + i]), int(hi_pred[w + i])), "right"
        )
        pts, _keys, _ids = store.scan(lo, hi)
        results.append(pts[window.contains_points(pts)] if len(pts) else pts)
    return results


def _random_windows(rng: np.random.Generator, count: int) -> list:
    from repro.spatial.rect import Rect

    wins = []
    for _ in range(count):
        lo = rng.random(2) * 0.9
        wins.append(Rect(tuple(lo), tuple(lo + rng.random(2) * 0.08 + 0.005)))
    return wins


def bench_refine_kernels(
    scale: ExperimentScale, points: np.ndarray, index: ZMIndex, index32: ZMIndex
) -> list[dict]:
    """Fused refinement kernels vs the pre-PR batch kernels, plus float32
    key-memory/parity evidence, on the 1e6-point acceptance workload."""
    n = len(points)
    rng = np.random.default_rng(13)
    records = []

    # --- Batch point membership -------------------------------------
    batch = np.vstack(
        [
            points[rng.integers(0, len(points), size=POINT_BATCH // 2)],
            rng.random((POINT_BATCH // 2, 2)) * 2.0,
        ]
    )
    keys = index.map(batch)
    lo, hi = index.model.search_ranges(keys)
    lo = np.maximum(lo, 0)
    hi = np.minimum(hi, len(index.store))
    from repro.perf.batching import batch_point_membership

    ref_seconds = _best_of(
        lambda: _reference_point_membership(index.store, lo, hi, keys, batch)
    )
    new_seconds = _best_of(
        lambda: batch_point_membership(index.store, lo, hi, keys, batch)
    )
    ref_out = _reference_point_membership(index.store, lo, hi, keys, batch)
    new_out = batch_point_membership(index.store, lo, hi, keys, batch)
    if not np.array_equal(ref_out, new_out):
        raise AssertionError("fused point kernel diverges from the reference")
    records += [
        {
            "op": "point_refine[ZM]",
            "n": n,
            "backend": "reference",
            "seconds": ref_seconds,
            "speedup": 1.0,
        },
        {
            "op": "point_refine[ZM]",
            "n": n,
            "backend": "fused_kernel",
            "seconds": new_seconds,
            "speedup": ref_seconds / new_seconds,
        },
    ]

    # --- Batch window refinement ------------------------------------
    windows = _random_windows(rng, WINDOW_BATCH)
    ref_w_seconds = _best_of(lambda: _reference_window_queries(index, windows))
    new_w_seconds = _best_of(lambda: index.window_queries(windows))
    ref_w = _reference_window_queries(index, windows)
    new_w = index.window_queries(windows)
    for a, b in zip(ref_w, new_w):
        if not np.array_equal(a, b):
            raise AssertionError("fused window kernel diverges from the reference")
    records += [
        {
            "op": "window_refine[ZM]",
            "n": n,
            "backend": "reference",
            "seconds": ref_w_seconds,
            "speedup": 1.0,
        },
        {
            "op": "window_refine[ZM]",
            "n": n,
            "backend": "fused_kernel",
            "seconds": new_w_seconds,
            "speedup": ref_w_seconds / new_w_seconds,
        },
    ]
    if scale.name != "smoke":
        # The acceptance gate: at 1e6 the fused kernels must win.
        if new_seconds > ref_seconds:
            raise AssertionError(
                f"fused point kernel slower than reference: "
                f"{new_seconds:.4f}s vs {ref_seconds:.4f}s"
            )
        if new_w_seconds > ref_w_seconds:
            raise AssertionError(
                f"fused window kernel slower than reference: "
                f"{new_w_seconds:.4f}s vs {ref_w_seconds:.4f}s"
            )

    # --- float32 keys: half the key memory, identical answers --------
    k64, k32 = index.store.keys, index32.store.keys
    if k32.dtype != np.float32:
        raise AssertionError(f"float32 index stores {k32.dtype} keys")
    keys32 = index32.map(batch)
    lo32, hi32 = index32.model.search_ranges(keys32)
    lo32 = np.maximum(lo32, 0)
    hi32 = np.minimum(hi32, len(index32.store))
    f32_point = batch_point_membership(index32.store, lo32, hi32, keys32, batch)
    if not np.array_equal(f32_point, new_out):
        raise AssertionError("float32 point queries diverge from float64")
    def _canon(rows):
        rows = np.atleast_2d(rows)
        return rows if len(rows) == 0 else rows[np.lexsort(rows.T)]

    f32_w = index32.window_queries(windows)
    for a, b in zip(new_w, f32_w):
        if not np.array_equal(_canon(a), _canon(b)):
            raise AssertionError("float32 window queries diverge from float64")
    f32_point_seconds = _best_of(
        lambda: batch_point_membership(index32.store, lo32, hi32, keys32, batch)
    )
    f32_window_seconds = _best_of(lambda: index32.window_queries(windows))
    records += [
        {
            "op": "point_refine[ZM]",
            "n": n,
            "backend": "fused_kernel_f32",
            "seconds": f32_point_seconds,
            "speedup": ref_seconds / f32_point_seconds,
            "key_bytes": k32.nbytes,
            "key_bytes_f64": k64.nbytes,
            "parity_with_f64": True,
        },
        {
            "op": "window_refine[ZM]",
            "n": n,
            "backend": "fused_kernel_f32",
            "seconds": f32_window_seconds,
            "speedup": ref_w_seconds / f32_window_seconds,
            "key_bytes": k32.nbytes,
            "key_bytes_f64": k64.nbytes,
            "parity_with_f64": True,
        },
    ]
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_core.json", help="where to write the results"
    )
    args = parser.parse_args()

    scale = ExperimentScale.from_env(default="default")
    from repro.data import load_dataset

    points = load_dataset("OSM1", scale.n)
    print(f"scale={scale.name} n={scale.n} cpus={os.cpu_count()}")

    big_points, big_index, big_index32 = _build_big_pair(scale)
    results = (
        bench_build(points, scale)
        + bench_queries(points, scale)
        + bench_fused_inference(scale, big_points, big_index, big_index32)
        + bench_refine_kernels(scale, big_points, big_index, big_index32)
    )
    for r in results:
        seconds = "failed" if r["seconds"] is None else f"{r['seconds']:.3f}s"
        speedup = "-" if r["speedup"] is None else f"{r['speedup']:.2f}x"
        print(f"{r['op']:24s} {r['backend']:8s} {seconds:>10s} {speedup:>8s}")

    from repro.perf.fused_infer import resolve_dtype

    payload = {
        "benchmark": "bench_perf_core",
        "scale": scale.name,
        "n": scale.n,
        "cpu_count": os.cpu_count(),
        "dtype": resolve_dtype(),
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
