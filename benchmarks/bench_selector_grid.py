"""Selector-grid + ML-kNN perf microbenchmark (the serial-hot-loop PR).

Measures the three loops this PR moved onto the perf subsystem:

1. ``collect_selector_data`` over the (n, dist) grid — serial vs. the
   ``process:4`` MapExecutor dispatch.  Parity is checked with a hash over
   the deterministic record fields (n, dist_u, method names); speedups are
   wall-clock and therefore excluded from the hash.
2. ML-Index kNN — the per-query iDistance radius loop vs. the vectorised
   ``knn_queries`` batch (batch size 256, exact-parity asserted).
3. RSMI build — the depth-first recursive reference vs. the level-wise
   frontier strategy (parity on model count and depth).

Run from the repo root (scale via ``REPRO_SCALE=smoke|default``):

    PYTHONPATH=src REPRO_SCALE=smoke python benchmarks/bench_selector_grid.py

Thread/process speedups reflect the host's core count: on a single-core CI
runner the grid dispatch can only break even (workers time-slice one core),
while the batched kNN win is algorithmic and holds everywhere.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time

import numpy as np

from repro.bench.harness import ExperimentScale
from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.selector import collect_selector_data
from repro.indices import MLIndex, RSMIIndex, ZMIndex

GRID_BACKENDS = ("serial", "thread:4", "process:4")
KNN_BATCH = 256
KNN_K = 10


def _zm_factory(builder):
    """Module-level so the process backend can pickle it."""
    return ZMIndex(builder=builder, branching=1)


def _grid_hash(records) -> str:
    """Digest of the deterministic grid fields (speedups are wall-clock)."""
    digest = hashlib.sha256()
    for r in records:
        digest.update(f"{r.n}:{r.dist_u:.12f}:{','.join(sorted(r.speedups))};".encode())
    return digest.hexdigest()[:16]


def bench_grid(scale: ExperimentScale) -> list[dict]:
    config = ELSIConfig(train_epochs=scale.train_epochs)
    kwargs = dict(
        config=config,
        cardinalities=scale.selector_cardinalities,
        deltas=scale.selector_deltas,
        n_queries=scale.n_point_queries,
    )
    records = []
    serial_seconds = None
    serial_hash = None
    for backend in GRID_BACKENDS:
        try:
            started = time.perf_counter()
            grid = collect_selector_data(_zm_factory, executor=backend, **kwargs)
            seconds = time.perf_counter() - started
        except Exception as exc:  # e.g. process pools unavailable in a sandbox
            records.append(
                {
                    "op": "selector_grid",
                    "n": len(scale.selector_cardinalities) * len(scale.selector_deltas),
                    "backend": backend,
                    "seconds": None,
                    "speedup": None,
                    "error": str(exc),
                }
            )
            continue
        grid_hash = _grid_hash(grid)
        if backend == "serial":
            serial_seconds, serial_hash = seconds, grid_hash
        elif grid_hash != serial_hash:
            raise AssertionError(
                f"{backend}: grid digest {grid_hash} != serial {serial_hash}"
            )
        records.append(
            {
                "op": "selector_grid",
                "n": len(grid),
                "backend": backend,
                "seconds": seconds,
                "speedup": serial_seconds / seconds,
                "parity_hash": grid_hash,
            }
        )
    return records


def bench_ml_knn(points: np.ndarray, scale: ExperimentScale) -> list[dict]:
    config = ELSIConfig(train_epochs=scale.train_epochs)
    index = MLIndex(builder=ELSIModelBuilder(config, method="SP")).build(points)
    rng = np.random.default_rng(11)
    batch = np.vstack(
        [
            points[rng.integers(0, len(points), size=KNN_BATCH // 2)],
            rng.random((KNN_BATCH // 2, 2)),
        ]
    )
    started = time.perf_counter()
    loop = [index.knn_query(q, KNN_K) for q in batch]
    loop_seconds = time.perf_counter() - started
    started = time.perf_counter()
    batched = index.knn_queries(batch, KNN_K)
    batch_seconds = time.perf_counter() - started
    for a, b in zip(loop, batched):
        if not np.array_equal(a, b):
            raise AssertionError("ML knn_queries diverges from the scalar loop")
    return [
        {
            "op": "ml_knn",
            "n": len(batch),
            "backend": "loop",
            "seconds": loop_seconds,
            "speedup": 1.0,
        },
        {
            "op": "ml_knn",
            "n": len(batch),
            "backend": "batch",
            "seconds": batch_seconds,
            "speedup": loop_seconds / batch_seconds,
        },
    ]


def bench_rsmi_build(points: np.ndarray, scale: ExperimentScale) -> list[dict]:
    records = []
    reference = None
    for strategy in ("recursive", "level"):
        config = ELSIConfig(train_epochs=scale.train_epochs)
        index = RSMIIndex(
            builder=ELSIModelBuilder(config, method="SP"),
            leaf_capacity=max(200, len(points) // 8),
            build_strategy=strategy,
        )
        started = time.perf_counter()
        index.build(points)
        seconds = time.perf_counter() - started
        shape = (index.n_models(), index.depth())
        if strategy == "recursive":
            reference = (seconds, shape)
        elif shape != reference[1]:
            raise AssertionError(
                f"level-wise tree shape {shape} != recursive {reference[1]}"
            )
        records.append(
            {
                "op": "rsmi_build",
                "n": len(points),
                "backend": strategy,
                "seconds": seconds,
                "speedup": reference[0] / seconds,
                "models": shape[0],
                "depth": shape[1],
            }
        )
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_selector.json", help="where to write the results"
    )
    args = parser.parse_args()

    scale = ExperimentScale.from_env(default="default")
    from repro.data import load_dataset

    points = load_dataset("OSM1", scale.n)
    print(f"scale={scale.name} n={scale.n} cpus={os.cpu_count()}")

    results = (
        bench_grid(scale) + bench_ml_knn(points, scale) + bench_rsmi_build(points, scale)
    )
    for r in results:
        seconds = "failed" if r["seconds"] is None else f"{r['seconds']:.3f}s"
        speedup = "-" if r["speedup"] is None else f"{r['speedup']:.2f}x"
        print(f"{r['op']:16s} {r['backend']:10s} {seconds:>10s} {speedup:>8s}")

    from repro.perf.fused_infer import resolve_dtype

    payload = {
        "benchmark": "bench_selector_grid",
        "scale": scale.name,
        "n": scale.n,
        "cpu_count": os.cpu_count(),
        "dtype": resolve_dtype(),
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
