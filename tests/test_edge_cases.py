"""Cross-module edge cases and failure injection.

Degenerate geometries, adversarial key distributions, boundary parameter
values, and misuse of the APIs — the inputs a released library meets in
the wild.
"""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.update_processor import UpdateProcessor
from repro.data import load_dataset
from repro.indices import LISAIndex, MLIndex, RSMIIndex, ZMIndex
from repro.spatial.rect import Rect


@pytest.fixture()
def builder():
    return ELSIModelBuilder(ELSIConfig(train_epochs=60), method="SP")


class TestDegenerateData:
    def test_two_point_dataset(self, builder):
        pts = np.array([[0.1, 0.2], [0.8, 0.9]])
        for cls in (ZMIndex, MLIndex, LISAIndex):
            index = cls(builder=builder).build(pts)
            assert index.point_query(pts[0])
            assert index.point_query(pts[1])

    def test_all_identical_points(self, builder):
        pts = np.tile([[0.5, 0.5]], (200, 1))
        index = ZMIndex(builder=builder).build(pts)
        assert index.point_query(np.array([0.5, 0.5]))
        window = Rect.centered(np.array([0.5, 0.5]), 0.01)
        assert len(index.window_query(window)) == 200

    def test_extreme_coordinates(self, builder):
        pts = np.array([[1e-12, 1e-12], [1e6, 1e6], [500.0, 0.001], [1.0, 2.0]])
        index = ZMIndex(builder=builder).build(pts)
        assert all(index.point_query(p) for p in pts)

    def test_negative_coordinates(self, builder):
        rng = np.random.default_rng(0)
        pts = rng.random((300, 2)) * 2 - 1  # [-1, 1]^2
        index = MLIndex(builder=builder).build(pts)
        assert all(index.point_query(p) for p in pts[::30])

    def test_grid_aligned_lattice(self, builder):
        """TPC-H-like integer lattices: many duplicate keys per axis."""
        xs, ys = np.meshgrid(np.arange(20) / 19, np.arange(20) / 19)
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        index = LISAIndex(builder=builder).build(pts)
        assert all(index.point_query(p) for p in pts[::37])
        window = Rect((0.2, 0.2), (0.4, 0.4))
        truth = pts[window.contains_points(pts)]
        assert len(index.window_query(window)) == len(truth)


class TestQueryBoundaries:
    def test_window_outside_data_space(self, builder, osm_points):
        index = ZMIndex(builder=builder).build(osm_points)
        window = Rect((10.0, 10.0), (11.0, 11.0))
        assert len(index.window_query(window)) == 0

    def test_window_covering_everything(self, builder, osm_points):
        index = ZMIndex(builder=builder).build(osm_points)
        window = Rect((-1.0, -1.0), (2.0, 2.0))
        assert len(index.window_query(window)) == len(osm_points)

    def test_zero_area_window_on_point(self, builder, osm_points):
        index = ZMIndex(builder=builder).build(osm_points)
        p = osm_points[17]
        window = Rect(tuple(p), tuple(p))
        got = index.window_query(window)
        assert len(got) >= 1

    def test_knn_k_one(self, builder, osm_points):
        index = MLIndex(builder=builder).build(osm_points)
        got = index.knn_query(osm_points[3], 1)
        np.testing.assert_array_equal(got[0], osm_points[3])

    def test_knn_invalid_k(self, builder, osm_points):
        index = ZMIndex(builder=builder).build(osm_points)
        with pytest.raises(ValueError):
            index.knn_query(np.array([0.5, 0.5]), 0)

    def test_query_point_outside_bounds(self, builder, osm_points):
        index = RSMIIndex(builder=builder, leaf_capacity=500).build(osm_points)
        assert not index.point_query(np.array([-5.0, 7.0]))


class TestUpdateProcessorEdges:
    def test_delete_everything_then_window(self, builder):
        pts = load_dataset("Uniform", 150, seed=4)
        index = ZMIndex(builder=builder).build(pts)
        processor = UpdateProcessor(index, ELSIConfig(train_epochs=60))
        for p in pts:
            assert processor.delete(p)
        assert processor.n_effective == 0
        window = Rect.unit(2)
        assert len(processor.window_query(window)) == 0
        assert len(processor.current_points()) == 0

    def test_rebuild_after_deleting_everything_but_one(self, builder):
        pts = load_dataset("Uniform", 100, seed=5)
        index = ZMIndex(builder=builder).build(pts)
        processor = UpdateProcessor(index, ELSIConfig(train_epochs=60))
        for p in pts[1:]:
            processor.delete(p)
        processor.rebuild()
        assert processor.index.n_points == 1
        assert processor.point_query(pts[0])

    def test_insert_duplicate_of_base_point(self, builder, osm_points):
        index = ZMIndex(builder=builder).build(osm_points)
        processor = UpdateProcessor(index, ELSIConfig(train_epochs=60))
        processor.insert(osm_points[0])  # duplicate coordinates
        assert processor.point_query(osm_points[0])
        # Deleting once removes the side-list copy; the base copy remains.
        assert processor.delete(osm_points[0])
        assert processor.point_query(osm_points[0])

    def test_knn_with_everything_deleted_nearby(self, builder):
        pts = np.vstack([
            np.tile([[0.5, 0.5]], (5, 1)) + np.arange(5)[:, None] * 1e-3,
            np.array([[0.9, 0.9]]),
        ])
        index = ZMIndex(builder=builder).build(pts)
        processor = UpdateProcessor(index, ELSIConfig(train_epochs=60))
        for p in pts[:5]:
            processor.delete(p)
        got = processor.knn_query(np.array([0.5, 0.5]), 1)
        np.testing.assert_array_equal(got[0], [0.9, 0.9])


class TestBuilderEdges:
    def test_single_point_partition(self, builder):
        keys = np.array([0.5])
        pts = np.array([[0.5, 0.5]])
        from repro.indices.base import BuildStats

        model = builder.build_model(keys, pts, BuildStats())
        lo, hi = model.search_range(0.5)
        assert lo == 0 and hi == 1

    def test_constant_keys_partition(self, builder):
        keys = np.full(50, 7.0)
        pts = np.random.default_rng(0).random((50, 2))
        from repro.indices.base import BuildStats

        model = builder.build_model(keys, pts, BuildStats())
        lo, hi = model.search_range(7.0)
        assert lo == 0 and hi == 50  # degenerate range: scan everything

    def test_rl_on_tiny_partition(self):
        config = ELSIConfig(train_epochs=40, rl_steps=20, eta=2)
        builder = ELSIModelBuilder(config, method="RL")
        rng = np.random.default_rng(1)
        pts = rng.random((30, 2))
        keys = np.sort(rng.random(30))
        from repro.indices.base import BuildStats

        map_fn = lambda p: p[:, 0]  # noqa: E731
        model = builder.build_model(keys, pts, BuildStats(), map_fn)
        assert model.n_indexed == 30

    def test_selector_with_subset_pool(self):
        config = ELSIConfig(train_epochs=40, methods=("SP", "OG"))
        builder = ELSIModelBuilder(config, method="SP")
        assert [m.name for m in builder.pool] == ["SP", "OG"]


class TestConcurrencySafety:
    """Builders are reused across many models; confirm no state leaks."""

    def test_builder_reuse_across_indices(self, builder, osm_points):
        a = ZMIndex(builder=builder).build(osm_points[:500])
        b = ZMIndex(builder=builder).build(osm_points[500:1000])
        assert a.point_query(osm_points[0])
        assert b.point_query(osm_points[700])
        assert not b.point_query(osm_points[0]) or any(
            np.array_equal(osm_points[0], p) for p in osm_points[500:1000]
        )

    def test_independent_query_stats(self, builder, osm_points):
        a = ZMIndex(builder=builder).build(osm_points[:500])
        b = ZMIndex(builder=builder).build(osm_points[:500])
        a.point_query(osm_points[0])
        assert b.query_stats.queries == 0
