"""Property-based tests (hypothesis) on the core invariants.

Each property corresponds to a guarantee the system's correctness rests on:
space-filling-curve bijectivity, KS-distance correctness, quadtree
partition invariants, sampling gap bounds, predict-and-scan containment,
and window-query exactness of the Z-curve interval.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.spatial.cdf import ks_distance, ks_distance_reference
from repro.spatial.hilbert import hilbert_decode, hilbert_encode
from repro.spatial.quadtree import QuadTree
from repro.spatial.rect import Rect
from repro.spatial.zcurve import morton_decode, morton_encode, zvalues

# Bounded sizes keep each example fast; hypothesis explores the space.
coords_2d = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 64), st.just(2)),
    elements=st.integers(0, 2**12 - 1),
)

float_keys = arrays(
    dtype=np.float64,
    shape=st.integers(1, 80),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)

points_2d = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 120), st.just(2)),
    elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
)


@given(coords_2d)
@settings(max_examples=60, deadline=None)
def test_morton_round_trip(coords):
    decoded = morton_decode(morton_encode(coords, bits=12), d=2, bits=12)
    np.testing.assert_array_equal(decoded, coords.astype(np.uint64))


@given(coords_2d)
@settings(max_examples=60, deadline=None)
def test_hilbert_round_trip(coords):
    decoded = hilbert_decode(hilbert_encode(coords, bits=12), d=2, bits=12)
    np.testing.assert_array_equal(decoded, coords.astype(np.uint64))


@given(coords_2d)
@settings(max_examples=40, deadline=None)
def test_morton_codes_unique_iff_coords_unique(coords):
    codes = morton_encode(coords, bits=12)
    n_unique_coords = len({tuple(c) for c in coords.tolist()})
    assert len(set(codes.tolist())) == n_unique_coords


@given(float_keys, float_keys)
@settings(max_examples=80, deadline=None)
def test_ks_distance_fast_equals_reference(small, large):
    fast = ks_distance(small, large)
    reference = ks_distance_reference(small, large)
    assert abs(fast - reference) < 1e-12
    assert 0.0 <= fast <= 1.0


@given(float_keys)
@settings(max_examples=40, deadline=None)
def test_ks_distance_to_self_is_zero(keys):
    assert ks_distance(keys, keys) == 0.0


@given(points_2d, st.integers(1, 20))
@settings(max_examples=40, deadline=None)
def test_quadtree_partition_invariants(points, max_points):
    tree = QuadTree(points, max_points=max_points, max_depth=12)
    leaves = tree.leaves()
    indices = np.concatenate([leaf.point_indices for leaf in leaves]) if leaves else np.empty(0)
    # Every point in exactly one leaf.
    assert sorted(indices.tolist()) == list(range(len(points)))
    # Capacity respected unless the depth cap was hit.
    for leaf in leaves:
        assert leaf.size <= max_points or leaf.depth == 12


@given(points_2d)
@settings(max_examples=30, deadline=None)
def test_window_zvalue_containment(points):
    """Any rectangle's corner Z-values bracket the Z-values of all points
    inside it — the exactness foundation of ZM window queries."""
    bounds = Rect.unit(2)
    window = Rect((0.25, 0.25), (0.7, 0.8))
    inside = points[window.contains_points(points)]
    if len(inside) == 0:
        return
    z_inside = zvalues(inside, bounds)
    z_corners = zvalues(np.array([window.lo, window.hi]), bounds)
    assert np.all(z_inside >= z_corners[0])
    assert np.all(z_inside <= z_corners[1])


@given(st.integers(2, 500), st.floats(0.001, 1.0))
@settings(max_examples=60, deadline=None)
def test_systematic_sampling_gap_bound(n, rho):
    """The pigeonhole bound of Section V-A1: |i - j| <= floor(1/rho) - 1."""
    from repro.core.methods.sampling import SystematicSamplingMethod

    keys = np.sort(np.random.default_rng(0).random(n))
    pts = np.column_stack([keys, keys])
    result = SystematicSamplingMethod(rho=rho).compute_set(keys, pts, None)
    sampled = np.rint(result.train_ranks * (n - 1)).astype(int)
    step = max(1, int(1.0 / rho))
    for i in range(n):
        assert np.abs(sampled - i).min() <= step - 1


@given(
    arrays(
        dtype=np.float64,
        shape=st.integers(16, 200),
        elements=st.floats(0.0, 1.0, allow_nan=False),
    )
)
@settings(max_examples=25, deadline=None)
def test_predict_and_scan_containment(keys):
    """A model trained on *any* reduced subset still satisfies the
    predict-and-scan invariant after measure_error_bounds (Section III)."""
    from repro.indices.base import TrainedModel
    from repro.ml.ffn import FFN

    sorted_keys = np.sort(keys)
    model = TrainedModel(
        FFN([1, 8, 1], seed=0), float(sorted_keys[0]), float(sorted_keys[-1]), len(sorted_keys)
    )
    # Deliberately untrained network: bounds must still make scans correct.
    model.measure_error_bounds(sorted_keys)
    for i in range(0, len(sorted_keys), 7):
        lo, hi = model.search_range(sorted_keys[i])
        assert lo <= i < hi


@given(points_2d)
@settings(max_examples=20, deadline=None)
def test_rect_bounding_contains_all(points):
    box = Rect.bounding(points)
    assert box.contains_points(points).all()


@given(
    st.floats(0.0, 0.89),
    st.integers(500, 3_000),
)
@settings(max_examples=20, deadline=None)
def test_controlled_distance_tracks_target(delta, n):
    """Generated key sets realise their target KS distance from uniform."""
    from repro.data.controlled import keys_with_uniform_distance
    from repro.spatial.cdf import uniform_dissimilarity

    keys = keys_with_uniform_distance(n, delta, seed=0)
    measured = uniform_dissimilarity(keys)
    assert abs(measured - delta) < 0.08 + 2.0 / np.sqrt(n)
