"""Unified observability: structured tracing + a metrics registry.

ELSI's whole argument is a cost story — build time against query error,
steered by a learned method selector.  This package makes that story
observable end to end:

- :mod:`repro.obs.trace` — nested spans with durations and attributes
  (``span("build.method_select", n=...)``), an in-memory ring buffer, an
  optional ``REPRO_TRACE`` JSON-lines sink, and merge support for spans
  produced inside ``repro.perf`` process-backend workers;
- :mod:`repro.obs.metrics` — counters, gauges and log-bucket histograms
  in a :class:`MetricsRegistry` with text/JSON exporters (the machinery
  behind ``repro.serve.stats.ServerStats``);
- :mod:`repro.obs.report` — per-phase cost breakdowns and span trees from
  a trace file (``python -m repro obs report``), including cross-process
  trees adopted from shard workers;
- :mod:`repro.obs.slo` — rolling-window latency quantiles and
  error-budget burn per request kind (:class:`SLOTracker`);
- :mod:`repro.obs.httpd` — a stdlib ``/metrics`` + ``/health`` +
  ``/overview`` HTTP endpoint (:class:`MetricsServer`);
- :mod:`repro.obs.top` — the ``repro obs top`` terminal dashboard
  renderer.

Everything is no-op cheap when disabled: a single boolean guard at each
site, so the instrumented hot paths stay within the benchmark overhead
budget (<5 %; see ``docs/observability.md``).
"""

from repro.obs.httpd import MetricsServer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    registry_from_export,
)
from repro.obs.slo import SLOConfig, SLOTarget, SLOTracker
from repro.obs.top import render_top, run_top
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    disable,
    enable,
    enabled,
    get_tracer,
    new_request_id,
    span,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "SLOConfig",
    "SLOTarget",
    "SLOTracker",
    "SpanRecord",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "new_request_id",
    "registry_from_export",
    "render_top",
    "run_top",
    "span",
    "traced",
]
