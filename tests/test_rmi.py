"""Unit tests for the recursive model index."""

import numpy as np
import pytest

from repro.indices.base import BuildStats, OriginalBuilder
from repro.indices.rmi import RMIModel
from repro.ml.trainer import TrainConfig


def _sorted_data(n: int = 3_000, seed: int = 0):
    keys = np.sort(np.random.default_rng(seed).random(n) ** 3)
    pts = np.column_stack([keys, keys])
    return keys, pts


@pytest.fixture()
def builder():
    return OriginalBuilder(train_config=TrainConfig(epochs=60))


def test_single_stage(builder):
    keys, pts = _sorted_data()
    stats = BuildStats()
    rmi = RMIModel(builder, branching=1).fit(keys, pts, stats)
    assert not rmi.is_two_stage
    assert stats.n_models == 1


def test_two_stage_builds_submodels(builder):
    keys, pts = _sorted_data()
    stats = BuildStats()
    rmi = RMIModel(builder, branching=4, min_partition_size=100).fit(keys, pts, stats)
    assert rmi.is_two_stage
    assert stats.n_models >= 2
    assert len(rmi.stage2) == 4


def test_small_set_stays_single_stage(builder):
    keys, pts = _sorted_data(n=100)
    rmi = RMIModel(builder, branching=8, min_partition_size=2_000).fit(
        keys, pts, BuildStats()
    )
    assert not rmi.is_two_stage


def test_search_range_contains_every_key(builder):
    """The global predict-and-scan guarantee holds through two stages."""
    keys, pts = _sorted_data()
    rmi = RMIModel(builder, branching=4, min_partition_size=100).fit(
        keys, pts, BuildStats()
    )
    for i in range(0, len(keys), 97):
        lo, hi = rmi.search_range(keys[i])
        assert lo <= i < hi, f"key rank {i} outside [{lo}, {hi})"


def test_two_stage_narrower_scans(builder):
    keys, pts = _sorted_data(n=5_000)
    single = RMIModel(builder, branching=1).fit(keys, pts, BuildStats())
    multi = RMIModel(builder, branching=8, min_partition_size=100).fit(
        keys, pts, BuildStats()
    )

    def avg_width(rmi):
        widths = [rmi.search_range(keys[i])[1] - rmi.search_range(keys[i])[0] for i in range(0, 5_000, 111)]
        return np.mean(widths)

    assert avg_width(multi) < avg_width(single)


def test_routing_deterministic(builder):
    keys, pts = _sorted_data()
    rmi = RMIModel(builder, branching=4, min_partition_size=100).fit(
        keys, pts, BuildStats()
    )
    a = rmi._route(keys[:50])
    b = rmi._route(keys[:50])
    np.testing.assert_array_equal(a, b)


def test_models_listing(builder):
    keys, pts = _sorted_data()
    rmi = RMIModel(builder, branching=3, min_partition_size=100).fit(
        keys, pts, BuildStats()
    )
    models = rmi.models
    assert models[0] is rmi.stage1
    assert rmi.max_error_width >= 0
    assert rmi.invocations > 0


def test_empty_fit_rejected(builder):
    with pytest.raises(ValueError):
        RMIModel(builder).fit(np.empty(0), np.empty((0, 2)), BuildStats())


def test_invalid_branching(builder):
    with pytest.raises(ValueError):
        RMIModel(builder, branching=0)
