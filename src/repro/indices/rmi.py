"""A recursive model index (RMI) over one-dimensional mapped keys.

ZM and ML-Index both learn the key→rank CDF with an RMI (Kraska et al.,
SIGMOD 2018): a stage-1 model routes each key to one of ``branching``
stage-2 models, and the chosen stage-2 model predicts the storage address.
Routing uses the stage-1 model's own prediction — the same computation at
build and query time — so lookups of indexed keys always reach the model
that indexed them.

Every member model is trained through a
:class:`~repro.indices.base.ModelBuilder`, which is how ELSI accelerates
multi-model indices one model at a time (Figure 3).

Batch prediction is fused: after the fit, the structurally identical
stage-2 leaves are stacked into one
:class:`~repro.perf.fused_infer.FusedInferenceEngine`, so a
:meth:`~RMIModel.search_ranges` batch touching many leaves costs one
grouped einsum per layer instead of one FFN call per visited leaf.  The
engine re-measures its own error bounds over every member's partition, so
predict-and-scan correctness holds on the fused path exactly as on the
per-model one; when the leaves cannot be fused (single model, mixed
architectures, PLA nets) the per-model loop keeps running and the reason
lands in the ``perf.fusion_rejected`` counter.

The builder's ``dtype`` (``ELSIConfig.dtype`` / ``REPRO_DTYPE``) selects
the inference precision: with ``float32``, stage-1 is cast *before*
routing — so build-time and query-time routing stay the identical
computation — every member's bounds are re-measured under the reduced
precision, and the fused stacks are single precision.
"""

from __future__ import annotations

import numpy as np

from repro.indices.base import BuildStats, MapFn, ModelBuilder, TrainedModel
from repro.ml.ffn import FFN
from repro.perf.fused_infer import FusedInferenceEngine, record_fusion_rejected

__all__ = ["RMIModel"]


class RMIModel:
    """One- or two-stage learned CDF over a sorted key array.

    Parameters
    ----------
    builder:
        Trains each member model (ELSI's hook).  Its optional ``dtype``
        attribute selects the inference precision (default float64).
    branching:
        Number of stage-2 models; ``1`` collapses to a single model.
    min_partition_size:
        Below this cardinality the index stays single-stage regardless of
        ``branching`` (tiny stage-2 models are pure overhead).
    """

    def __init__(
        self,
        builder: ModelBuilder,
        branching: int = 1,
        min_partition_size: int = 2_000,
    ) -> None:
        if branching < 1:
            raise ValueError(f"branching must be >= 1, got {branching}")
        self.builder = builder
        self.branching = branching
        self.min_partition_size = min_partition_size
        self.stage1: TrainedModel | None = None
        self.stage2: list[TrainedModel] = []
        self._stage2_positions: list[np.ndarray] = []
        self.n = 0
        #: Fused batch-prediction engine over the stage-2 leaves (None
        #: when fusion was rejected or the model is single-stage).
        self._engine: FusedInferenceEngine | None = None
        self._branch_to_midx: np.ndarray | None = None
        self._fused_positions: np.ndarray | None = None
        self._fused_offsets: np.ndarray | None = None
        self._fused_members: list[TrainedModel] = []

    # ------------------------------------------------------------------
    @property
    def dtype(self) -> str:
        """Inference precision, from the builder (default float64)."""
        return getattr(self.builder, "dtype", "float64")

    def _cast_model(self, model: TrainedModel, member_keys: np.ndarray) -> None:
        """Apply the reduced-precision mode to one member model.

        Casts the network parameters down and re-measures the error bounds
        over the member's full partition, so the per-model prediction path
        keeps its predict-and-scan guarantee under the new arithmetic.
        """
        if isinstance(model.net, FFN):
            model.net.astype(np.float32)
            model.measure_error_bounds(member_keys)

    # ------------------------------------------------------------------
    def fit(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        stats: BuildStats,
        map_fn: MapFn | None = None,
    ) -> "RMIModel":
        """Train the model hierarchy over globally key-sorted data."""
        self.n = len(sorted_keys)
        if self.n == 0:
            raise ValueError("cannot fit an RMI on an empty key set")
        reduced = self.dtype == "float32"
        self.stage1 = self.builder.build_model(sorted_keys, sorted_points, stats, map_fn)
        if reduced:
            # Cast *before* routing: stage-1 predictions partition the data,
            # and query-time routing must repeat the build-time computation
            # exactly, so the precision drop has to land first.
            self._cast_model(self.stage1, sorted_keys)
        self.stage2 = []
        self._stage2_positions = []
        self._engine = None
        if self.branching == 1 or self.n < self.min_partition_size:
            record_fusion_rejected("single_model", context="rmi")
            return self

        # Stage-2 leaves are independent per-partition jobs: prepare every
        # partition, then build them all through the builder's executor
        # (parallel backends overlap the fits; results stay in branch order).
        routed = self._route(sorted_keys)
        positions_per_branch = [
            np.flatnonzero(routed == branch) for branch in range(self.branching)
        ]
        partitions = [
            (sorted_keys[positions], sorted_points[positions])
            for positions in positions_per_branch
            if len(positions)
        ]
        models = iter(self.builder.build_models(partitions, stats, map_fn))
        for positions in positions_per_branch:
            # An empty branch reuses stage 1 (routing sends no key there).
            self.stage2.append(self.stage1 if len(positions) == 0 else next(models))
            self._stage2_positions.append(positions)
        if reduced:
            for model, positions in zip(self.stage2, self._stage2_positions):
                if model is not self.stage1 and len(positions):
                    self._cast_model(model, sorted_keys[positions])
        self.fuse_inference(sorted_keys)
        return self

    def fuse_inference(self, sorted_keys: np.ndarray) -> "FusedInferenceEngine | None":
        """Stack the stage-2 leaves into a fused batch-prediction engine.

        Called at the end of :meth:`fit` and again by the persistence
        loaders (the engine itself is derived state and is not saved).
        Returns the engine, or ``None`` with the rejection reason counted
        when the leaves cannot share one compute path.
        """
        self._engine = None
        self._branch_to_midx = None
        self._fused_positions = None
        self._fused_offsets = None
        self._fused_members = []
        if not self.is_two_stage:
            return None
        assert self.stage1 is not None
        members: list[TrainedModel] = []
        member_positions: list[np.ndarray] = []
        branch_to_midx = np.full(self.branching, -1, dtype=np.int64)
        for branch, (model, positions) in enumerate(
            zip(self.stage2, self._stage2_positions)
        ):
            if model is self.stage1 or len(positions) == 0:
                continue  # empty branch: the stage-1 fallback answers it
            branch_to_midx[branch] = len(members)
            members.append(model)
            member_positions.append(np.asarray(positions, dtype=np.int64))
        sorted_keys = np.asarray(sorted_keys, dtype=np.float64)
        engine = FusedInferenceEngine.try_build(
            members,
            member_keys=[sorted_keys[p] for p in member_positions],
            dtype=self.dtype,
            context="rmi",
        )
        if engine is None:
            return None
        self._engine = engine
        self._branch_to_midx = branch_to_midx
        self._fused_positions = np.concatenate(member_positions)
        lengths = np.array([len(p) for p in member_positions], dtype=np.int64)
        self._fused_offsets = np.concatenate(([0], np.cumsum(lengths)))[:-1]
        self._fused_members = members
        return engine

    def _route(self, keys: np.ndarray) -> np.ndarray:
        """Stage-2 branch per key, from the stage-1 position prediction."""
        assert self.stage1 is not None
        pos = self.stage1.predict_positions(keys)
        branch = (pos * self.branching) // max(self.n, 1)
        return np.clip(branch, 0, self.branching - 1)

    # ------------------------------------------------------------------
    @property
    def is_two_stage(self) -> bool:
        return bool(self.stage2)

    @property
    def fused(self) -> bool:
        """Whether batch predictions run through the fused engine."""
        return self._engine is not None

    @property
    def models(self) -> list[TrainedModel]:
        """All member models (stage 1 first)."""
        assert self.stage1 is not None
        unique: list[TrainedModel] = [self.stage1]
        for m in self.stage2:
            if m is not self.stage1:
                unique.append(m)
        return unique

    @property
    def invocations(self) -> int:
        return sum(m.invocations for m in self.models)

    @property
    def max_error_width(self) -> int:
        """Worst-case ``err_l + err_u`` across member models (Table I |Error|)."""
        return max(m.error_width for m in self.models)

    def search_ranges(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`search_range` over a key batch.

        With the fused engine: one stage-1 pass to route, then one grouped
        forward pass for *all* visited stage-2 leaves at once.  Without it:
        one network forward pass per visited stage-2 model.  Either way the
        returned ranges are guaranteed to contain every indexed key.
        """
        assert self.stage1 is not None
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        if not self.is_two_stage:
            pos = self.stage1.predict_positions(keys)
            lo = np.maximum(pos - self.stage1.err_l, 0)
            hi = np.minimum(pos + self.stage1.err_u + 1, self.n)
            return lo, hi
        branches = self._route(keys)
        if self._engine is not None:
            return self._search_ranges_fused(keys, branches)
        lo = np.zeros(len(keys), dtype=np.int64)
        hi = np.zeros(len(keys), dtype=np.int64)
        for branch in np.unique(branches):
            mask = branches == branch
            positions = self._stage2_positions[branch]
            model = self.stage2[branch]
            if len(positions) == 0:
                pos = self.stage1.predict_positions(keys[mask])
                lo[mask] = np.maximum(pos - self.stage1.err_l, 0)
                hi[mask] = np.minimum(pos + self.stage1.err_u + 1, self.n)
                continue
            local = model.predict_positions(keys[mask])
            lo_local = np.clip(local - model.err_l, 0, len(positions) - 1)
            hi_local = np.clip(local + model.err_u + 1, 1, len(positions))
            lo[mask] = positions[lo_local]
            hi[mask] = positions[hi_local - 1] + 1
        return lo, hi

    def _search_ranges_fused(
        self, keys: np.ndarray, branches: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The engine-backed half of :meth:`search_ranges`."""
        assert self._engine is not None
        assert self._branch_to_midx is not None
        assert self._fused_positions is not None and self._fused_offsets is not None
        assert self.stage1 is not None
        lo = np.zeros(len(keys), dtype=np.int64)
        hi = np.zeros(len(keys), dtype=np.int64)
        midx = self._branch_to_midx[branches]
        fused = midx >= 0
        if fused.any():
            fm = midx[fused]
            lo_local, hi_local = self._engine.search_ranges(fm, keys[fused])
            base = self._fused_offsets[fm]
            lo[fused] = self._fused_positions[base + lo_local]
            hi[fused] = self._fused_positions[base + hi_local - 1] + 1
            # Keep per-model invocation accounting meaningful on the
            # fused path (one logical invocation per answered key).
            for i, count in enumerate(np.bincount(fm, minlength=len(self._fused_members))):
                if count:
                    self._fused_members[i].invocations += int(count)
        rest = ~fused
        if rest.any():
            pos = self.stage1.predict_positions(keys[rest])
            lo[rest] = np.maximum(pos - self.stage1.err_l, 0)
            hi[rest] = np.minimum(pos + self.stage1.err_u + 1, self.n)
        return lo, hi

    def search_range(self, key: float) -> tuple[int, int]:
        """Global half-open position range guaranteed to contain ``key``.

        Single-stage: the stage-1 model's own range.  Two-stage: route, get
        the stage-2 model's *local* range, then widen to the global
        positions its local endpoints map to (stage-2 point sets need not be
        globally contiguous).
        """
        assert self.stage1 is not None
        if not self.is_two_stage:
            return self.stage1.search_range(key)
        branch = int(self._route(np.array([key]))[0])
        positions = self._stage2_positions[branch]
        model = self.stage2[branch]
        if len(positions) == 0:
            return self.stage1.search_range(key)
        lo_local, hi_local = model.search_range(key)
        lo_local = max(0, min(lo_local, len(positions) - 1))
        hi_local = max(1, min(hi_local, len(positions)))
        return int(positions[lo_local]), int(positions[hi_local - 1]) + 1
