"""Regenerate key paper figures as terminal charts.

Runs small-scale versions of Figure 8 (build time vs data distribution),
Figure 9 (build time vs lambda) and Figure 15(b) (point query time vs
insertion ratio) through the same experiment drivers the benchmark suite
uses, and renders them with the ASCII plot helpers.

Run:  python examples/reproduce_figures.py          (~2-3 minutes)
      REPRO_SCALE=default python examples/reproduce_figures.py  (slower)
"""

from __future__ import annotations

from repro.bench.experiments import (
    Context,
    fig08_build_times,
    fig09_build_vs_lambda,
    fig15_updates,
)
from repro.bench.harness import ExperimentScale
from repro.bench.plots import bar_chart, line_chart


def main() -> None:
    ctx = Context(ExperimentScale.from_env())
    print(f"Scale: {ctx.scale.name} (n={ctx.scale.n:,}); preparing the method "
          f"selector (one-off) ...\n")

    # ------------------------------------------------------------------
    print("=" * 72)
    fig8 = fig08_build_times(ctx)
    for dataset in ("OSM1", "NYC"):
        row = fig8[dataset]
        print(bar_chart(
            list(row), list(row.values()),
            title=f"Figure 8 (shape): build time on {dataset} (s)",
            unit="s",
        ))
        print()
    speedups = [
        fig8[d][i] / max(fig8[d][f"{i}-F"], 1e-9)
        for d in fig8
        for i in ("ML", "LISA", "RSMI")
    ]
    print(f"mean ELSI build speedup: {sum(speedups)/len(speedups):.1f}x "
          f"(paper: ~70x at n=1e8)\n")

    # ------------------------------------------------------------------
    print("=" * 72)
    fig9 = fig09_build_vs_lambda(ctx, datasets=("OSM1",))
    data = fig9["OSM1"]
    series = dict(data["series"])
    lams = [lam for lam, _ in series["ML-F"]]
    series["RR* (ref)"] = [(lam, data["RR*"]) for lam in lams]
    print(line_chart(
        series,
        title="Figure 9 (shape): build time (s) vs lambda on OSM1 (log y)",
        log_y=True,
    ))
    print(f"\nmethods chosen: lambda=0 -> "
          f"{data['methods_chosen'][lams[0]]}, lambda=1 -> "
          f"{data['methods_chosen'][lams[-1]]}\n")

    # ------------------------------------------------------------------
    print("=" * 72)
    fig15 = fig15_updates(ctx)
    series = {
        label: [(m["ratio"], m["point_us"]) for m in metrics]
        for label, metrics in fig15.items()
        if label in ("ML-F", "ML-R", "LISA-F", "LISA-R", "RR*")
    }
    print(line_chart(
        series,
        title="Figure 15(b) (shape): point query (us) vs insertion ratio",
    ))
    rebuilds = {
        label: [m["ratio"] for m in metrics if m["rebuilt"]]
        for label, metrics in fig15.items()
        if label.endswith("-R")
    }
    print(f"\nrebuilds triggered at insert ratios: {rebuilds}")
    print("(paper: rebuilds keep -R query times below the -F variants)")


if __name__ == "__main__":
    main()
