"""Tests for the Flood extension (query-aware column index + ELSI)."""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import FloodIndex
from repro.queries.evaluate import brute_force_knn, brute_force_window
from repro.queries.workload import window_workload
from repro.spatial.rect import Rect


@pytest.fixture(scope="module")
def built(osm_points):
    config = ELSIConfig(train_epochs=80)
    index = FloodIndex(builder=ELSIModelBuilder(config, method="SP"), n_columns=8)
    return index.build(osm_points)


class TestQueries:
    def test_point_queries(self, built, osm_points):
        assert all(built.point_query(p) for p in osm_points[::40])
        assert not built.point_query(np.array([5.0, 5.0]))

    def test_window_queries_exact(self, built, osm_points):
        rng = np.random.default_rng(0)
        for _ in range(30):
            center = osm_points[rng.integers(len(osm_points))]
            window = Rect.centered(center, rng.uniform(0.02, 0.2))
            got = built.window_query(window)
            truth = brute_force_window(osm_points, window)
            assert len(got) == len(truth)

    def test_knn(self, built, osm_points):
        q = np.array([0.4, 0.6])
        got = built.knn_query(q, 10)
        truth = brute_force_knn(osm_points, q, 10)
        kth = np.linalg.norm(truth[-1] - q)
        assert (np.linalg.norm(got - q, axis=1) <= kth + 1e-12).all()

    def test_indexed_points_complete(self, built, osm_points):
        assert len(built.indexed_points()) == len(osm_points)

    def test_map_orders_by_column_then_y(self, built, osm_points):
        keys = built.map(osm_points[:50])
        cols = np.floor(keys)
        assert np.all((cols >= 0) & (cols < built.n_columns))


class TestELSIIntegration:
    def test_one_model_per_nonempty_column(self, built):
        n_models = sum(m is not None for m in built._models)
        assert built.build_stats.n_models == n_models
        assert built.build_stats.methods_used.get("SP", 0) == n_models

    def test_elsi_speeds_up_flood_builds(self, osm_points):
        """The paper's future-work claim, realised: ELSI reduces Flood's
        per-column training cost like any map-and-sort index."""
        import time

        config = ELSIConfig(train_epochs=150)
        started = time.perf_counter()
        FloodIndex(builder=ELSIModelBuilder(config, method="OG"), n_columns=4).build(osm_points)
        og = time.perf_counter() - started
        started = time.perf_counter()
        FloodIndex(builder=ELSIModelBuilder(config, method="SP"), n_columns=4).build(osm_points)
        sp = time.perf_counter() - started
        assert sp < og


class TestTuning:
    def test_selective_workload_prefers_more_columns(self, osm_points):
        tiny = [w.window for w in window_workload(osm_points, 20, 1e-4, seed=0)]
        huge = [w.window for w in window_workload(osm_points, 20, 0.3, seed=0)]
        cost = FloodIndex.estimate_cost
        # For huge windows, many columns add per-column overhead.
        assert cost(osm_points, huge, 64) > cost(osm_points, huge, 2)
        # For selective windows, more columns tighten the scans.
        assert cost(osm_points, tiny, 32) < cost(osm_points, tiny, 2)

    def test_tune_picks_candidate(self, osm_points):
        windows = [w.window for w in window_workload(osm_points, 10, 1e-3, seed=1)]
        index = FloodIndex.tune(osm_points, windows, candidates=(2, 8, 32))
        assert index.n_columns in (2, 8, 32)

    def test_tune_requires_windows(self, osm_points):
        with pytest.raises(ValueError):
            FloodIndex.tune(osm_points, [])


class TestEdgeCases:
    def test_single_column(self, osm_points):
        index = FloodIndex(n_columns=1).build(osm_points)
        assert index.point_query(osm_points[0])

    def test_duplicate_x_coordinates(self):
        pts = np.column_stack([np.full(300, 0.5), np.linspace(0, 1, 300)])
        index = FloodIndex(n_columns=4).build(pts)
        assert index.point_query(pts[100])
        window = Rect((0.4, 0.2), (0.6, 0.4))
        got = index.window_query(window)
        assert len(got) == len(brute_force_window(pts, window))

    def test_invalid_columns(self):
        with pytest.raises(ValueError):
            FloodIndex(n_columns=0)
