"""Tests for the sharded serving tier (shard map, router, recovery).

The parity tests are the acceptance centrepiece: every query kind routed
through the multi-process scatter-gather tier must return the same
answers as one unsharded index over the same data — bit-identical after
canonical (lexsort) ordering, since a cross-shard merge cannot reproduce
a single index's internal scan order.

The failure tests exercise the PR 7 vocabulary through the router:
overload retry, read-only partial degradation, and the chaos-style
kill-one-shard-mid-stream scenario asserting zero acknowledged-update
loss while the surviving shards keep serving.
"""

import os
import threading

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.update_processor import UpdateProcessor
from repro.faults.chaos import make_schedule, _apply_op, _canon
from repro.faults.registry import InjectedFault
from repro.indices import ZMIndex
from repro.serve import ServerOverloaded, ServerReadOnly
from repro.shard import (
    RouterConfig,
    ShardHandle,
    ShardMap,
    ShardRouter,
    ShardTimeout,
    ShardUnavailable,
    WorkerSpec,
    build_cluster,
    capture_env,
    open_cluster,
)
from repro.spatial.rect import Rect
from repro.spatial.zcurve import zvalues

_ELSI = {"train_epochs": 40, "seed": 0}
_SERVE = {"max_wait_seconds": 0.0}


# ----------------------------------------------------------------------
# Shard map units (no processes)
# ----------------------------------------------------------------------
class TestShardMap:
    def test_quantile_boundaries_balance_points(self, osm_points):
        smap = ShardMap.from_points(osm_points, 4)
        owners = smap.shard_of_points(osm_points)
        counts = np.bincount(owners, minlength=4)
        assert counts.min() > 0
        # Rank quantiles: shards within a few percent of n/4 barring ties.
        assert counts.max() <= 1.2 * len(osm_points) / 4

    def test_duplicate_keys_never_straddle_a_cut(self):
        # Heavy duplication: 10 distinct locations x 100 copies each.
        rng = np.random.default_rng(3)
        base = rng.random((10, 2))
        pts = np.repeat(base, 100, axis=0)
        smap = ShardMap.from_points(pts, 3)
        owners = smap.shard_of_points(pts)
        keys = smap.keys_of(pts)
        for key in np.unique(keys):
            assert len(np.unique(owners[keys == key])) == 1

    def test_too_many_shards_for_distinct_keys_raises(self):
        pts = np.repeat(np.random.default_rng(0).random((2, 2)), 50, axis=0)
        with pytest.raises(ValueError, match="shards"):
            ShardMap.from_points(pts, 8)

    def test_fewer_points_than_shards_raises(self):
        # n < n_shards: must raise, never silently build an empty shard.
        pts = np.random.default_rng(1).random((3, 2))
        with pytest.raises(ValueError, match="non-empty shards"):
            ShardMap.from_points(pts, 8)
        owners = ShardMap.from_points(pts, 3).shard_of_points(pts)
        assert set(owners.tolist()) == {0, 1, 2}

    def test_window_routing_covers_contained_points(self, osm_points):
        smap = ShardMap.from_points(osm_points, 5)
        owners = smap.shard_of_points(osm_points)
        rng = np.random.default_rng(7)
        for _ in range(25):
            center = osm_points[rng.integers(len(osm_points))]
            window = Rect.centered(center, float(rng.uniform(0.01, 0.3)))
            visited = set(smap.shards_for_window(window))
            inside = owners[window.contains_points(osm_points)]
            assert set(inside.tolist()) <= visited

    def test_ball_routing_covers_points_in_radius(self, osm_points):
        smap = ShardMap.from_points(osm_points, 5)
        owners = smap.shard_of_points(osm_points)
        rng = np.random.default_rng(11)
        for _ in range(25):
            q = osm_points[rng.integers(len(osm_points))]
            radius = float(rng.uniform(0.01, 0.2))
            visited = set(smap.shards_for_ball(q, radius))
            dist = np.sqrt(((osm_points - q) ** 2).sum(axis=1))
            assert set(owners[dist <= radius].tolist()) <= visited
        assert set(smap.shards_for_ball(osm_points[0], np.inf)) == set(range(5))

    def test_zorder_interval_matches_key_arithmetic(self, osm_points):
        smap = ShardMap.from_points(osm_points, 4)
        window = Rect((0.2, 0.3), (0.4, 0.5))
        corners = np.stack([window.lo_array, window.hi_array])
        lo, hi = zvalues(corners, smap.bounds, bits=smap.bits)
        assert list(smap.shards_for_window(window)) == list(
            smap.shard_range(int(lo), int(hi))
        )

    def test_hilbert_windows_broadcast(self, osm_points):
        smap = ShardMap.from_points(osm_points, 3, curve="hilbert")
        window = Rect((0.2, 0.2), (0.25, 0.25))
        assert list(smap.shards_for_window(window)) == [0, 1, 2]
        # Point routing still works: every point owned by exactly one shard.
        owners = smap.shard_of_points(osm_points)
        assert set(np.unique(owners)) <= {0, 1, 2}

    def test_save_load_roundtrip(self, osm_points, tmp_path):
        smap = ShardMap.from_points(osm_points, 4, bits=14)
        path = smap.save(tmp_path / "shard_map.json")
        loaded = ShardMap.load(path)
        np.testing.assert_array_equal(loaded.boundaries, smap.boundaries)
        assert loaded.curve == smap.curve and loaded.bits == smap.bits
        np.testing.assert_array_equal(
            loaded.shard_of_points(osm_points), smap.shard_of_points(osm_points)
        )

    def test_single_shard_owns_everything(self, osm_points):
        smap = ShardMap.from_points(osm_points, 1)
        assert not smap.shard_of_points(osm_points).any()
        assert list(smap.shards_for_window(Rect.unit())) == [0]


# ----------------------------------------------------------------------
# Serve-core batch request kinds (no processes)
# ----------------------------------------------------------------------
class TestBatchRequests:
    @pytest.fixture(scope="class")
    def server(self, osm_points):
        config = ELSIConfig(train_epochs=40)
        index = ZMIndex(builder=ELSIModelBuilder(config, method="SP"))
        index.build(osm_points)
        from repro.serve import IndexServer, ServeConfig

        with IndexServer(
            index, ServeConfig(max_wait_seconds=0.0), elsi_config=config
        ) as server:
            yield server

    def test_point_batch_matches_scalar_submits(self, server, osm_points):
        probes = np.vstack([osm_points[:20], osm_points[:20] + 3.0])
        batched = server.submit_point_batch(probes).wait(20)
        scalar = [server.submit_point(p).wait(20) for p in probes]
        np.testing.assert_array_equal(np.asarray(batched), np.asarray(scalar))

    def test_window_batch_matches_scalar_submits(self, server):
        windows = [
            Rect.centered(np.array([x, x]), 0.1) for x in (0.25, 0.5, 0.75)
        ]
        batched = server.submit_window_batch(windows).wait(20)
        for got, window in zip(batched, windows):
            want = server.submit_window(window).wait(20)
            np.testing.assert_array_equal(_canon(got), _canon(want))

    def test_knn_batch_matches_scalar_submits(self, server, osm_points):
        batched = server.submit_knn_batch(osm_points[:5], 6).wait(20)
        for got, q in zip(batched, osm_points[:5]):
            want = server.submit_knn(q, 6).wait(20)
            np.testing.assert_array_equal(_canon(got), _canon(want))

    def test_batch_requests_validate_payloads(self):
        from repro.serve.requests import KNN_BATCH, POINT_BATCH, Request

        with pytest.raises(ValueError, match="points"):
            Request(kind=POINT_BATCH)
        with pytest.raises(ValueError, match="k"):
            Request(kind=KNN_BATCH, points=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="windows"):
            Request(kind="window_batch")


# ----------------------------------------------------------------------
# Router failure handling against stub handles (no processes)
# ----------------------------------------------------------------------
class _StubHandle:
    def __init__(self, shard_id, fail=(), result=True):
        self.shard_id = shard_id
        self.fail = list(fail)
        self.result = result
        self.requests = []
        self.respawns = 0
        self._alive = True

    def alive(self):
        return self._alive

    def respawn(self):
        self.respawns += 1
        self._alive = True
        self.fail = []
        return {}

    def request(self, command, *payload, timeout=None, trace=None):
        self.requests.append(command)
        if not self._alive:
            raise ShardUnavailable("no live worker", shard_id=self.shard_id)
        if self.fail:
            exc = self.fail.pop(0)
            if isinstance(exc, ShardTimeout):
                self._alive = False  # real handles poison themselves
            raise exc
        if command == "point_batch":
            return np.ones(len(payload[0]), dtype=bool)
        if command == "status":
            return {"health": "healthy", "generation": 0, "n_points": 1}
        return self.result

    def close(self):
        pass


def _stub_router(handles, **config):
    smap = ShardMap(
        np.asarray([2**30] * 0, dtype=np.uint64), Rect.unit(), bits=16
    )
    cfg = RouterConfig(retry_base_delay=0.0, retry_max_delay=0.0, **config)
    return ShardRouter(smap, handles, config=cfg)


class TestRouterFailureHandling:
    def test_overloaded_retries_then_succeeds(self):
        handle = _StubHandle(0, fail=[ServerOverloaded("full")] * 2)
        router = _stub_router([handle])
        hits = router.point_queries(np.zeros((3, 2)))
        assert hits.all()
        assert handle.requests.count("point_batch") == 3
        export = router.registry.export()
        assert sum(e["value"] for e in export["router.retries"]) == 2

    def test_overloaded_beyond_budget_raises(self):
        handle = _StubHandle(0, fail=[ServerOverloaded("full")] * 9)
        router = _stub_router([handle], max_retries=2)
        with pytest.raises(ServerOverloaded):
            router.point_queries(np.zeros((1, 2)))

    def test_dead_shard_respawned_for_queries(self):
        handle = _StubHandle(0, fail=[ShardUnavailable("dead", shard_id=0)])
        handle._alive = False
        router = _stub_router([handle])
        assert router.point_queries(np.zeros((2, 2))).all()
        assert handle.respawns == 1

    def test_mid_request_death_not_retried_for_updates(self):
        handle = _StubHandle(0, fail=[ShardUnavailable("died", shard_id=0)])
        router = _stub_router([handle])
        with pytest.raises(ShardUnavailable):
            router.insert(np.array([0.5, 0.5]))
        assert handle.respawns == 0  # at-most-once: no blind redo

    def test_read_only_surfaces_with_partial_degradation(self):
        handle = _StubHandle(0, fail=[ServerReadOnly("read only")])
        router = _stub_router([handle])
        with pytest.raises(ServerReadOnly):
            router.insert(np.array([0.1, 0.1]))
        handle.fail = [ServerReadOnly("read only")]
        report = router.apply_updates(
            [("insert", np.array([0.1, 0.1])), ("insert", np.array([0.9, 0.9]))]
        )
        assert report["applied"] == 1
        assert [r["error"] for r in report["rejected"]] == ["ServerReadOnly"]
        assert report["health"]["overall"] in ("healthy", "degraded")

    def test_auto_respawn_off_surfaces_query_failures(self):
        handle = _StubHandle(0, fail=[ShardUnavailable("dead", shard_id=0)])
        router = _stub_router([handle], auto_respawn=False)
        with pytest.raises(ShardUnavailable):
            router.point_queries(np.zeros((1, 2)))
        assert handle.respawns == 0

    def test_timed_out_shard_respawned_for_queries(self):
        # A timeout poisons the handle; the router must respawn (killing
        # the wedged worker) and retry idempotent queries transparently.
        handle = _StubHandle(0, fail=[ShardTimeout("wedged", shard_id=0)])
        router = _stub_router([handle])
        assert router.point_queries(np.zeros((2, 2))).all()
        assert handle.respawns == 1
        export = router.registry.export()
        assert sum(e["value"] for e in export["router.shard_timeouts"]) == 1

    def test_timeout_on_update_surfaces_without_resend(self):
        handle = _StubHandle(0, fail=[ShardTimeout("wedged", shard_id=0)])
        router = _stub_router([handle])
        with pytest.raises(ShardTimeout):
            router.insert(np.array([0.5, 0.5]))
        assert handle.respawns == 0  # outcome unknown: never resent

    def test_wedged_shard_reported_down_in_health_and_stats(self):
        handle = _StubHandle(
            0,
            fail=[
                ShardTimeout("wedged", shard_id=0),
                ShardTimeout("wedged", shard_id=0),
            ],
        )
        router = _stub_router([handle])
        health = router.health_summary()
        assert health["shards"][0]["health"] == "down"
        assert health["overall"] == "down"
        handle._alive = True  # wedged again for the stats probe
        stats = router.stats_snapshot()
        assert sum(
            e["value"] for e in stats["router.stats_unreachable"]
        ) == 1

    def test_apply_updates_rejects_timed_out_then_recovers(self):
        handle = _StubHandle(0, fail=[ShardTimeout("wedged", shard_id=0)])
        router = _stub_router([handle])
        report = router.apply_updates(
            [("insert", np.array([0.1, 0.1])), ("insert", np.array([0.9, 0.9]))]
        )
        # First update timed out (rejected, never resent); the poisoned
        # handle was respawned before the second, which applied cleanly.
        assert report["applied"] == 1
        assert [r["error"] for r in report["rejected"]] == ["ShardTimeout"]
        assert report["rejected"][0]["shard"] == 0
        assert handle.respawns == 1


# ----------------------------------------------------------------------
# Handle wire protocol: sequence ids and timeout poisoning (no processes)
# ----------------------------------------------------------------------
class _FakeConn:
    def __init__(self, replies=()):
        self.sent = []
        self.replies = list(replies)

    def send(self, message):
        self.sent.append(message)

    def poll(self, _timeout=0):
        return bool(self.replies)

    def recv(self):
        if not self.replies:
            raise EOFError
        return self.replies.pop(0)

    def close(self):
        pass


class _FakeProc:
    exitcode = None

    def is_alive(self):
        return True


def _bare_handle(conn):
    handle = ShardHandle.__new__(ShardHandle)
    handle.spec = WorkerSpec(shard_id=0, directory=".")
    handle._lock = threading.RLock()
    handle._seq = 0
    handle._poisoned = False
    handle._proc = _FakeProc()
    handle._conn = conn
    handle._ready_status = None
    return handle


class TestHandleProtocol:
    def test_request_carries_seq_timeout_and_trace_slot(self):
        conn = _FakeConn([(1, "ok", {"health": "healthy"}, None)])
        handle = _bare_handle(conn)
        assert handle.request("status", timeout=7.5) == {"health": "healthy"}
        assert conn.sent == [(1, 7.5, "status", None)]

    def test_stale_reply_discarded_by_seq(self):
        # A leftover reply from an earlier (timed-out) request must never
        # be returned as the answer to the current one.
        conn = _FakeConn([(1, "ok", "stale", None), (2, "ok", "fresh", None)])
        handle = _bare_handle(conn)
        handle._seq = 1  # request #1 already timed out in the past
        assert handle.request("status", timeout=5.0) == "fresh"

    def test_timeout_poisons_handle(self):
        handle = _bare_handle(_FakeConn())  # worker never answers
        with pytest.raises(ShardTimeout):
            handle.request("status", timeout=0.15)
        assert not handle.alive()  # process runs, but handle refuses
        with pytest.raises(ShardUnavailable, match="poisoned"):
            handle.request("status", timeout=0.15)

    def test_worker_error_reply_raises(self):
        conn = _FakeConn([(1, "err", ServerOverloaded("full"), None)])
        handle = _bare_handle(conn)
        with pytest.raises(ServerOverloaded):
            handle.request("status", timeout=5.0)
        assert handle.alive()  # typed errors don't poison the pipe


# ----------------------------------------------------------------------
# Multi-process parity vs the unsharded reference
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster(osm_points, tmp_path_factory):
    directory = tmp_path_factory.mktemp("shard-cluster")
    router = build_cluster(
        osm_points, directory, n_shards=3, elsi=_ELSI, serve=_SERVE
    )
    yield router
    router.close()


@pytest.fixture(scope="module")
def reference(osm_points):
    """The unsharded reference: one index over the same points."""
    config = ELSIConfig(**_ELSI)
    index = ZMIndex(builder=ELSIModelBuilder(config, method="SP"))
    index.build(osm_points)
    return UpdateProcessor(index, config, auto_rebuild=False)


class TestClusterParity:
    def test_point_parity(self, cluster, reference, osm_points):
        rng = np.random.default_rng(5)
        probes = np.vstack(
            [osm_points[::7], rng.uniform(0.0, 1.0, size=(64, 2))]
        )
        got = cluster.point_queries(probes)
        want = reference.point_queries(probes)
        np.testing.assert_array_equal(np.asarray(got), np.asarray(want))

    def test_window_parity_bit_identical(self, cluster, reference, osm_points):
        rng = np.random.default_rng(6)
        windows = [
            Rect.centered(osm_points[rng.integers(len(osm_points))],
                          float(rng.uniform(0.02, 0.3)))
            for _ in range(12)
        ]
        got = cluster.window_queries(windows)
        want = reference.window_queries(windows)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(_canon(g), _canon(w))

    def test_knn_parity_bit_identical(self, cluster, reference, osm_points):
        queries = osm_points[::211]
        for k in (1, 5, 16):
            got = cluster.knn_queries(queries, k)
            want = reference.knn_queries(queries, k)
            for g, w in zip(got, want):
                np.testing.assert_array_equal(_canon(g), _canon(w))

    def test_knn_k_larger_than_shard(self, cluster, reference, osm_points):
        # k close to a shard's whole population forces round two to widen
        # across every shard.
        got = cluster.knn_queries(osm_points[:1], 700)
        want = reference.knn_queries(osm_points[:1], 700)
        np.testing.assert_array_equal(_canon(got[0]), _canon(want[0]))

    def test_update_routing_parity(self, cluster, reference, osm_points):
        rng = np.random.default_rng(9)
        inserts = rng.uniform(0.0, 1.0, size=(24, 2))
        victims = osm_points[rng.choice(len(osm_points), 8, replace=False)]
        for p in inserts:
            cluster.insert(p)
            reference.insert(p)
        for p in victims:
            assert cluster.delete(p) == reference.delete(p)
        probes = np.vstack([inserts, victims])
        np.testing.assert_array_equal(
            cluster.point_queries(probes), reference.point_queries(probes)
        )
        window = Rect((0.0, 0.0), (1.0, 1.0))
        np.testing.assert_array_equal(
            _canon(cluster.window_queries([window])[0]),
            _canon(reference.window_queries([window])[0]),
        )

    def test_health_and_merged_stats(self, cluster):
        health = cluster.health_summary()
        assert health["overall"] == "healthy"
        assert len(health["shards"]) == 3
        stats = cluster.stats_snapshot()
        # Counters from all three workers summed into one series.
        completed = sum(e["value"] for e in stats["serve.requests_completed"])
        assert completed > 0
        # Histograms merged with buckets, so a fleet p99 exists.
        (latency,) = (
            e
            for e in stats["serve.request_latency_seconds"]
            if not e["labels"]
        )
        assert latency["value"]["count"] > 0
        assert sum(latency["value"]["buckets"]) == latency["value"]["count"]
        # Router-side counters ride along in the same view.
        assert "router.queries" in stats


# ----------------------------------------------------------------------
# Wedged-worker recovery end to end (real processes)
# ----------------------------------------------------------------------
class TestWedgedWorkerRecovery:
    def test_poisoned_handle_is_killed_and_respawned(self, osm_points, tmp_path):
        base = osm_points[:300]
        router = build_cluster(
            base, tmp_path, n_shards=1, elsi=_ELSI, serve=_SERVE
        )
        with router:
            handle = router.handles[0]
            old_pid = handle._proc.pid
            # Exactly the state a request timeout leaves behind: worker
            # process still running, handle refusing traffic.
            handle._poisoned = True
            assert handle._proc.is_alive() and not handle.alive()
            # Idempotent queries recover transparently: the wedged worker
            # is killed and the replacement comes back from disk.
            assert router.point_queries(base[:4]).all()
            assert handle.alive()
            assert handle._proc.pid != old_pid
            export = router.registry.export()
            assert sum(e["value"] for e in export["router.respawns"]) == 1


# ----------------------------------------------------------------------
# Env propagation into workers (satellite)
# ----------------------------------------------------------------------
class TestEnvPropagation:
    def test_capture_env_reads_current_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "index.query=error:1")
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        env = capture_env()
        assert env["REPRO_FAULTS"] == "index.query=error:1"
        assert env["REPRO_DTYPE"] == "float32"
        assert capture_env({"REPRO_PARALLELISM": "serial"})[
            "REPRO_PARALLELISM"
        ] == "serial"

    def test_faults_armed_inside_shard_worker(self, osm_points, tmp_path):
        # The parent process has no faults armed; the spec's env must arm
        # the site inside the worker regardless of start-method inheritance.
        assert "REPRO_FAULTS" not in os.environ
        router = build_cluster(
            osm_points[:400],
            tmp_path,
            n_shards=1,
            elsi=_ELSI,
            serve=_SERVE,
            env={"REPRO_FAULTS": "index.query=error:1"},
        )
        with router:
            with pytest.raises(InjectedFault):
                router.point_queries(osm_points[:4])
            # times=1: the armed fault fired once and disarmed itself.
            assert router.point_queries(osm_points[:4]).all()
            stats = router.stats_snapshot()
            fired = sum(
                e["value"]
                for e in stats.get("faults.triggered", [])
                if e["labels"].get("site") == "index.query"
            )
            assert fired == 1


# ----------------------------------------------------------------------
# Kill one shard mid-stream: zero acknowledged-update loss (satellite)
# ----------------------------------------------------------------------
class TestKillOneShardMidStream:
    def test_router_recovers_with_zero_acked_loss(self, osm_points, tmp_path):
        base = osm_points[:400]
        router = build_cluster(
            base, tmp_path, n_shards=2, elsi=_ELSI, serve=_SERVE
        )
        schedule = make_schedule(base, 40, seed=0)
        live = [np.asarray(p, dtype=np.float64) for p in base]
        owners_of = lambda p: int(  # noqa: E731
            router.shard_map.shard_of_points(np.asarray(p)[None, :])[0]
        )
        with router:
            acked = 0
            for i, (op, point) in enumerate(schedule):
                if i == len(schedule) // 2:
                    # Kill shard 0's worker process mid-stream (os._exit,
                    # no flushes) — acknowledged ops must survive.
                    router.handles[0].crash()
                    assert not router.handles[0].alive()
                    # The surviving shard keeps serving while 0 is down:
                    shard1_points = [
                        p for p in live if owners_of(p) == 1
                    ][:8]
                    assert router.point_queries(
                        np.asarray(shard1_points)
                    ).all()
                    assert router.health_summary()["shards"][0][
                        "health"
                    ] == "down"
                if op == "insert":
                    router.insert(point)
                else:
                    router.delete(point)
                _apply_op(live, op, point)
                acked += 1
            assert acked == len(schedule)
            # Shard 0 was respawned from snapshots + WAL along the way.
            export = router.registry.export()
            assert sum(e["value"] for e in export["router.respawns"]) >= 1
            # Zero acknowledged loss: the fleet's state is exactly
            # base + every acknowledged op.
            everything = router.window_queries([Rect.unit()])[0]
            np.testing.assert_array_equal(_canon(everything), _canon(live))
            # And per-point membership agrees for all acked inserts.
            inserted = [p for op, p in schedule if op == "insert"]
            survivors = [
                p for p in inserted if any(np.array_equal(p, q) for q in live)
            ]
            assert router.point_queries(np.asarray(survivors)).all()

        # Multi-directory recovery: reopen the whole cluster from disk and
        # the acknowledged state is still there.
        reopened = open_cluster(tmp_path)
        with reopened:
            everything = reopened.window_queries([Rect.unit()])[0]
            np.testing.assert_array_equal(_canon(everything), _canon(live))
