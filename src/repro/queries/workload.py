"""Query workload generators (Section VII-G).

All generators *follow the data distribution*, as the paper's experiments
do: query anchors are sampled from the indexed points themselves, so dense
regions receive proportionally more queries.

Window sizes are expressed as a fraction of the data-space area (the
paper's 0.01 % default, swept from 0.0006 % to 0.16 % in Figure 13(b)).
"""

from __future__ import annotations

import numpy as np

from repro.queries.types import KNNQuery, PointQuery, WindowQuery
from repro.spatial.rect import Rect

__all__ = ["knn_workload", "point_workload", "window_workload"]


def point_workload(
    points: np.ndarray, n_queries: int | None = None, seed: int = 0
) -> list[PointQuery]:
    """Point queries over indexed points.

    The paper queries *every* point; pass ``n_queries`` to subsample for
    time-boxed runs (queries remain distribution-following either way).
    """
    pts = np.asarray(points, dtype=np.float64)
    if len(pts) == 0:
        raise ValueError("need at least one point")
    if n_queries is None or n_queries >= len(pts):
        chosen = pts
    else:
        rng = np.random.default_rng(seed)
        chosen = pts[rng.choice(len(pts), size=n_queries, replace=False)]
    return [PointQuery(tuple(float(v) for v in p)) for p in chosen]


def window_workload(
    points: np.ndarray,
    n_queries: int = 1_000,
    area_fraction: float = 1e-4,
    bounds: Rect | None = None,
    seed: int = 0,
) -> list[WindowQuery]:
    """Square windows centred on data points, covering ``area_fraction``
    of the data space (0.01 % = 1e-4, the Figure 12 default)."""
    pts = np.asarray(points, dtype=np.float64)
    if len(pts) == 0:
        raise ValueError("need at least one point")
    if not 0.0 < area_fraction <= 1.0:
        raise ValueError(f"area_fraction must lie in (0, 1], got {area_fraction}")
    if bounds is None:
        bounds = Rect.bounding(pts)
    d = bounds.ndim
    side = (bounds.area() * area_fraction) ** (1.0 / d)
    rng = np.random.default_rng(seed)
    centers = pts[rng.integers(0, len(pts), size=n_queries)]
    return [WindowQuery(Rect.centered(c, side)) for c in centers]


def knn_workload(
    points: np.ndarray, n_queries: int = 1_000, k: int = 25, seed: int = 0
) -> list[KNNQuery]:
    """kNN queries at data points, k = 25 per Section VII-G3."""
    pts = np.asarray(points, dtype=np.float64)
    if len(pts) == 0:
        raise ValueError("need at least one point")
    rng = np.random.default_rng(seed)
    centers = pts[rng.integers(0, len(pts), size=n_queries)]
    return [KNNQuery(tuple(float(v) for v in c), k=k) for c in centers]
