"""CART decision trees (regression and classification), from scratch.

Figure 6(b) of the paper compares ELSI's FFN method selector against
decision-tree and random-forest selectors, in regression (DTR/RFR) and
classification (DTC/RFC) variants.  scikit-learn is not available offline,
so this module implements the CART algorithm directly: greedy binary splits
minimising MSE (regression) or Gini impurity (classification).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]


@dataclass
class _Node:
    """A tree node; leaves have ``feature is None``."""

    value: np.ndarray | float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _best_split_mse(
    x: np.ndarray, y: np.ndarray, features: np.ndarray, min_leaf: int
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, score) split by MSE reduction, or None.

    Uses prefix sums over sorted feature values so each feature costs
    O(n log n).  The returned score is the *weighted child impurity*; lower
    is better.
    """
    n = len(y)
    best: tuple[int, float, float] | None = None
    y_sum = y.sum()
    y_sq = (y * y).sum()
    for f in features:
        order = np.argsort(x[:, f], kind="stable")
        xs = x[order, f]
        ys = y[order]
        csum = np.cumsum(ys)
        csq = np.cumsum(ys * ys)
        # Candidate split after position i (left = [0..i]); need distinct values.
        idx = np.arange(min_leaf - 1, n - min_leaf)
        if len(idx) == 0:
            continue
        valid = xs[idx] < xs[idx + 1]
        idx = idx[valid]
        if len(idx) == 0:
            continue
        n_left = idx + 1.0
        n_right = n - n_left
        sse_left = csq[idx] - csum[idx] ** 2 / n_left
        sum_right = y_sum - csum[idx]
        sse_right = (y_sq - csq[idx]) - sum_right**2 / n_right
        scores = sse_left + sse_right
        i = int(np.argmin(scores))
        if best is None or scores[i] < best[2]:
            pos = idx[i]
            threshold = 0.5 * (xs[pos] + xs[pos + 1])
            best = (int(f), float(threshold), float(scores[i]))
    return best


def _best_split_gini(
    x: np.ndarray, y: np.ndarray, n_classes: int, features: np.ndarray, min_leaf: int
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, score) split by weighted Gini impurity."""
    n = len(y)
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), y] = 1.0
    best: tuple[int, float, float] | None = None
    total = onehot.sum(axis=0)
    for f in features:
        order = np.argsort(x[:, f], kind="stable")
        xs = x[order, f]
        counts = np.cumsum(onehot[order], axis=0)
        idx = np.arange(min_leaf - 1, n - min_leaf)
        if len(idx) == 0:
            continue
        valid = xs[idx] < xs[idx + 1]
        idx = idx[valid]
        if len(idx) == 0:
            continue
        left = counts[idx]
        right = total - left
        n_left = left.sum(axis=1)
        n_right = right.sum(axis=1)
        gini_left = n_left - (left**2).sum(axis=1) / n_left
        gini_right = n_right - (right**2).sum(axis=1) / n_right
        scores = gini_left + gini_right
        i = int(np.argmin(scores))
        if best is None or scores[i] < best[2]:
            pos = idx[i]
            threshold = 0.5 * (xs[pos] + xs[pos + 1])
            best = (int(f), float(threshold), float(scores[i]))
    return best


class _BaseTree:
    """Shared fit/predict plumbing for the two CART variants."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("min_samples_leaf >= 1 and min_samples_split >= 2")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: _Node | None = None
        self.n_features_: int | None = None

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self._rng.choice(n_features, size=self.max_features, replace=False)

    def _leaf_value(self, y: np.ndarray):  # pragma: no cover - abstract
        raise NotImplementedError

    def _split(self, x, y, features):  # pragma: no cover - abstract
        raise NotImplementedError

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=self._leaf_value(y))
        if depth >= self.max_depth or len(y) < self.min_samples_split:
            return node
        if np.all(y == y[0]):
            return node
        split = self._split(x, y, self._candidate_features(x.shape[1]))
        if split is None:
            return node
        feature, threshold, _score = split
        mask = x[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def fit(self, x: np.ndarray, y: np.ndarray) -> "_BaseTree":
        """Grow the tree on (x, y).  Returns self for chaining."""
        x2 = np.asarray(x, dtype=np.float64)
        if x2.ndim == 1:
            x2 = x2[:, None]
        y2 = self._prepare_targets(np.asarray(y))
        if len(x2) == 0:
            raise ValueError("cannot fit a tree on an empty data set")
        if len(x2) != len(y2):
            raise ValueError(f"x has {len(x2)} rows but y has {len(y2)}")
        self.n_features_ = x2.shape[1]
        self._root = self._grow(x2, y2, depth=0)
        return self

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _predict_row(self, row: np.ndarray):
        node = self._root
        assert node is not None
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node.value

    def depth(self) -> int:
        """Maximum depth of the grown tree (0 for a single leaf)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)


class DecisionTreeRegressor(_BaseTree):
    """CART regression tree minimising within-leaf squared error."""

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(y, dtype=np.float64).ravel()

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def _split(self, x, y, features):
        return _best_split_mse(x, y, features, self.min_samples_leaf)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted mean target for each row of ``x``."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x2 = np.asarray(x, dtype=np.float64)
        if x2.ndim == 1:
            x2 = x2[:, None]
        return np.array([self._predict_row(row) for row in x2])


class DecisionTreeClassifier(_BaseTree):
    """CART classification tree minimising Gini impurity."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.classes_: np.ndarray | None = None

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        counts = np.bincount(y, minlength=len(self.classes_))
        return counts / counts.sum()

    def _split(self, x, y, features):
        assert self.classes_ is not None
        return _best_split_gini(x, y, len(self.classes_), features, self.min_samples_leaf)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-probability matrix, one row per input row."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x2 = np.asarray(x, dtype=np.float64)
        if x2.ndim == 1:
            x2 = x2[:, None]
        return np.stack([self._predict_row(row) for row in x2])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely class label for each row of ``x``."""
        assert self.classes_ is not None or self._root is None
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]
