"""Brute-force ground truth and recall measurement (Figures 12(b), 14(b), 16(b)).

Recall is "the ratio of ground truth points in the returned query results";
for kNN the paper's equivalent is matching the true k-th distance, so a
returned point counts as correct when its distance does not exceed the true
k-th nearest distance (ties included).
"""

from __future__ import annotations

import numpy as np

from repro.spatial.rect import Rect

__all__ = [
    "brute_force_knn",
    "brute_force_window",
    "knn_recall",
    "window_recall",
]


def brute_force_window(points: np.ndarray, window: Rect) -> np.ndarray:
    """All points inside ``window`` by linear scan."""
    pts = np.asarray(points, dtype=np.float64)
    if len(pts) == 0:
        return pts
    return pts[window.contains_points(pts)]


def brute_force_knn(points: np.ndarray, query: np.ndarray, k: int) -> np.ndarray:
    """The true k nearest points by linear scan."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pts = np.asarray(points, dtype=np.float64)
    q = np.asarray(query, dtype=np.float64)
    if len(pts) == 0:
        return pts
    diff = pts - q
    dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    order = np.argsort(dist, kind="stable")
    return pts[order[: min(k, len(order))]]


def window_recall(returned: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of ground-truth points present in the returned set.

    An empty ground truth counts as perfect recall (nothing to miss).
    Duplicate coordinates are matched with multiplicity.
    """
    if len(truth) == 0:
        return 1.0
    returned_keys: dict[tuple, int] = {}
    for p in np.asarray(returned, dtype=np.float64):
        key = tuple(float(v) for v in p)
        returned_keys[key] = returned_keys.get(key, 0) + 1
    found = 0
    for p in np.asarray(truth, dtype=np.float64):
        key = tuple(float(v) for v in p)
        if returned_keys.get(key, 0) > 0:
            returned_keys[key] -= 1
            found += 1
    return found / len(truth)


def knn_recall(
    returned: np.ndarray, points: np.ndarray, query: np.ndarray, k: int
) -> float:
    """Fraction of returned neighbours within the true k-th distance."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pts = np.asarray(points, dtype=np.float64)
    q = np.asarray(query, dtype=np.float64)
    if len(pts) == 0:
        return 1.0
    diff = pts - q
    dist = np.sort(np.sqrt(np.einsum("ij,ij->i", diff, diff)), kind="stable")
    kth = dist[min(k, len(dist)) - 1]
    if len(returned) == 0:
        return 0.0
    rdiff = np.asarray(returned, dtype=np.float64) - q
    rdist = np.sqrt(np.einsum("ij,ij->i", rdiff, rdiff))
    correct = int((rdist <= kth + 1e-12).sum())
    return correct / min(k, len(dist))
