"""Tests for index persistence (save/load round-trips)."""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import FloodIndex, LISAIndex, MLIndex, PGMBuilder, RSMIIndex, ZMIndex
from repro.spatial.rect import Rect
from repro.storage.persist import (
    load_index,
    load_zm_index,
    save_index,
    save_zm_index,
)


@pytest.fixture()
def built_index(osm_points):
    config = ELSIConfig(train_epochs=80)
    return ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)


class TestRoundTrip:
    def test_point_queries_identical(self, built_index, osm_points, tmp_path):
        path = tmp_path / "zm.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        for p in osm_points[::50]:
            assert loaded.point_query(p) == built_index.point_query(p)

    def test_window_queries_identical(self, built_index, osm_points, tmp_path):
        path = tmp_path / "zm.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        window = Rect.centered(np.array([0.5, 0.5]), 0.1)
        a = built_index.window_query(window)
        b = loaded.window_query(window)
        assert len(a) == len(b)

    def test_predictions_bitwise_equal(self, built_index, tmp_path):
        path = tmp_path / "zm.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        keys = built_index.store.keys[::37]
        np.testing.assert_array_equal(
            built_index.model.stage1.predict_positions(keys),
            loaded.model.stage1.predict_positions(keys),
        )
        assert loaded.model.stage1.err_l == built_index.model.stage1.err_l
        assert loaded.model.stage1.err_u == built_index.model.stage1.err_u

    def test_metadata_preserved(self, built_index, tmp_path):
        path = tmp_path / "zm.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        assert loaded.n_points == built_index.n_points
        assert loaded.bits == built_index.bits
        assert loaded.bounds == built_index.bounds
        assert loaded.model.stage1.method_name == "SP"

    def test_two_stage_round_trip(self, osm_points, tmp_path):
        config = ELSIConfig(train_epochs=60)
        index = ZMIndex(
            builder=ELSIModelBuilder(config, method="SP"), branching=4
        ).build(osm_points)
        path = tmp_path / "zm2.npz"
        save_zm_index(index, path)
        loaded = load_zm_index(path)
        assert loaded.model.is_two_stage == index.model.is_two_stage
        for p in osm_points[::100]:
            assert loaded.point_query(p)

    def test_pla_model_round_trip(self, osm_points, tmp_path):
        index = ZMIndex(builder=PGMBuilder(epsilon_positions=32)).build(osm_points)
        path = tmp_path / "zm_pgm.npz"
        save_zm_index(index, path)
        loaded = load_zm_index(path)
        assert loaded.model.stage1.err_l == index.model.stage1.err_l
        for p in osm_points[::100]:
            assert loaded.point_query(p)

    def test_native_inserts_preserved(self, built_index, tmp_path):
        extra = np.array([0.123, 0.456])
        built_index.insert(extra)
        path = tmp_path / "zm3.npz"
        save_zm_index(built_index, path)
        loaded = load_zm_index(path)
        assert loaded.point_query(extra)
        assert loaded.n_points == built_index.n_points


ALL_PERSISTABLE = (ZMIndex, MLIndex, LISAIndex, FloodIndex, RSMIIndex)


class TestGenericDispatch:
    """save_index/load_index round-trips for every supported index type."""

    @pytest.mark.parametrize("cls", ALL_PERSISTABLE, ids=lambda c: c.name)
    def test_round_trip_equality(self, cls, osm_points, tmp_path):
        config = ELSIConfig(train_epochs=80)
        index = cls(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)
        path = tmp_path / f"{cls.name}.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert type(loaded) is cls
        assert loaded.n_points == index.n_points
        assert loaded.bounds == index.bounds
        # Point membership must agree everywhere: hits and misses.
        rng = np.random.default_rng(3)
        probes = np.vstack([osm_points[::40], rng.random((30, 2)) + 1.5])
        np.testing.assert_array_equal(
            loaded.point_queries(probes), index.point_queries(probes)
        )
        # Window answers must be set-equal.
        window = Rect.centered(np.array([0.5, 0.5]), 0.2)
        a = np.asarray(sorted(map(tuple, index.window_query(window))))
        b = np.asarray(sorted(map(tuple, loaded.window_query(window))))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("cls", ALL_PERSISTABLE, ids=lambda c: c.name)
    def test_round_trip_knn(self, cls, osm_points, tmp_path):
        config = ELSIConfig(train_epochs=80)
        index = cls(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)
        path = tmp_path / f"{cls.name}-knn.npz"
        save_index(index, path)
        loaded = load_index(path)
        for q in osm_points[::500]:
            np.testing.assert_array_equal(
                loaded.knn_query(q, 5), index.knn_query(q, 5)
            )

    def test_unsupported_type_clear_error(self, tmp_path):
        with pytest.raises(TypeError, match="supported index types"):
            save_index(object(), tmp_path / "other.npz")

    def test_rsmi_round_trip_after_inserts(self, osm_points, tmp_path):
        """RSMI persists including insertion-widened leaves and new subtrees."""
        config = ELSIConfig(train_epochs=60)
        rsmi = RSMIIndex(
            builder=ELSIModelBuilder(config, method="SP"), leaf_capacity=200
        )
        rsmi.build(osm_points[:1500])
        rng = np.random.default_rng(7)
        extra = rng.random((40, 2))
        for p in extra:
            rsmi.insert(p)
        path = tmp_path / "rsmi.npz"
        save_index(rsmi, path)
        loaded = load_index(path)
        assert type(loaded) is RSMIIndex
        assert loaded.n_points == rsmi.n_points
        assert loaded.depth() == rsmi.depth()
        assert loaded.n_models() == rsmi.n_models()
        probes = np.vstack([osm_points[:1500:30], extra, rng.random((20, 2)) + 1.5])
        np.testing.assert_array_equal(
            loaded.point_queries(probes), rsmi.point_queries(probes)
        )
        windows = [Rect.centered(np.array([0.4, 0.6]), 0.15)]
        for a, b in zip(rsmi.window_queries(windows), loaded.window_queries(windows)):
            np.testing.assert_array_equal(a, b)

    def test_zm_specific_loader_still_works(self, built_index, tmp_path):
        path = tmp_path / "generic-zm.npz"
        save_index(built_index, path)
        loaded = load_zm_index(path)
        assert loaded.n_points == built_index.n_points


class TestErrors:
    def test_unbuilt_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_zm_index(ZMIndex(), tmp_path / "x.npz")

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, meta=np.frombuffer(b'{"format": "other"}', dtype=np.uint8))
        with pytest.raises(ValueError):
            load_zm_index(path)

    def test_unknown_format_rejected_by_dispatch(self, tmp_path):
        path = tmp_path / "junk2.npz"
        np.savez(path, meta=np.frombuffer(b'{"format": "other"}', dtype=np.uint8))
        with pytest.raises(ValueError, match="other"):
            load_index(path)
