"""Tests for the parallel build executor (repro.perf.executor / fused)."""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import ZMIndex
from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig, train_regressor
from repro.perf.executor import (
    ENV_VAR,
    MapExecutor,
    resolve_executor,
    serial_nested,
)
from repro.perf.fused import can_fuse, train_regressors_fused


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


def _cube(x):
    return x * x * x


def _resolved_backend(spec):
    """Worker helper: what resolve_executor yields inside this task."""
    return resolve_executor(spec).backend


# ----------------------------------------------------------------------
# MapExecutor
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "thread", "process", "fused"])
def test_map_preserves_input_order(backend):
    ex = MapExecutor(backend=backend, max_workers=2)
    items = list(range(37))
    assert ex.map(_square, items) == [x * x for x in items]


@pytest.mark.parametrize("chunk_size", [1, 3, 100])
def test_map_order_stable_across_chunk_sizes(chunk_size):
    ex = MapExecutor(backend="thread", max_workers=3, chunk_size=chunk_size)
    items = list(range(25))
    assert ex.map(_square, items) == [x * x for x in items]


def test_map_empty_and_singleton():
    ex = MapExecutor(backend="process", max_workers=2)
    assert ex.map(_square, []) == []
    assert ex.map(_square, [7]) == [49]


def test_chunking_covers_all_jobs():
    ex = MapExecutor(backend="thread", max_workers=2, chunk_size=4)
    chunks = ex._chunked(list(range(10)))
    assert [len(c) for c in chunks] == [4, 4, 2]
    assert [x for c in chunks for x in c] == list(range(10))


def test_invalid_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        MapExecutor(backend="gpu")
    with pytest.raises(ValueError, match="max_workers"):
        MapExecutor(backend="thread", max_workers=0)


def test_from_spec_parses_workers():
    ex = MapExecutor.from_spec("thread:4")
    assert ex.backend == "thread"
    assert ex.max_workers == 4
    assert MapExecutor.from_spec("serial").max_workers is None
    with pytest.raises(ValueError, match="integer"):
        MapExecutor.from_spec("thread:many")


# ----------------------------------------------------------------------
# submit_many: heterogeneous tasks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "thread", "process", "fused"])
def test_submit_many_mixed_functions_in_order(backend):
    ex = MapExecutor(backend=backend, max_workers=2)
    tasks = [(_square, (i,)) if i % 2 else (_cube, (i,)) for i in range(11)]
    expected = [i * i if i % 2 else i * i * i for i in range(11)]
    assert ex.submit_many(tasks) == expected


def test_submit_many_empty():
    assert MapExecutor(backend="thread").submit_many([]) == []


def test_submit_many_propagates_exceptions():
    def boom(x):
        raise RuntimeError(f"task {x}")

    with pytest.raises(RuntimeError, match="task 1"):
        MapExecutor(backend="serial").submit_many([(boom, (1,))])


# ----------------------------------------------------------------------
# serial_nested: no pools inside pool workers
# ----------------------------------------------------------------------
def test_serial_nested_forces_serial_resolution(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "process:4")
    with serial_nested():
        assert resolve_executor(None).backend == "serial"
        assert resolve_executor("thread:2").backend == "serial"
        # Re-entrant.
        with serial_nested():
            assert resolve_executor(MapExecutor(backend="fused")).backend == "serial"
        assert resolve_executor(None).backend == "serial"
    assert resolve_executor(None).backend == "process"


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_serial_nested_inside_workers(backend, monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    ex = MapExecutor(backend=backend, max_workers=2)

    def guarded(spec):
        with serial_nested():
            return _resolved_backend(spec)

    # Without the guard workers resolve normally; with it, always serial.
    assert ex.map(_resolved_backend, ["thread:2", "process:2"]) == [
        "thread",
        "process",
    ]
    if backend == "thread":  # closures don't pickle for the process backend
        assert ex.map(guarded, ["thread:2", "process:2"]) == ["serial", "serial"]


# ----------------------------------------------------------------------
# resolve_executor + environment override
# ----------------------------------------------------------------------
def test_resolve_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_executor(None).backend == "serial"
    assert resolve_executor("thread:2").backend == "thread"
    passed = MapExecutor(backend="fused")
    assert resolve_executor(passed) is passed


def test_env_variable_wins(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "thread:3")
    ex = resolve_executor(MapExecutor(backend="process", max_workers=8))
    assert ex.backend == "thread"
    assert ex.max_workers == 3


def test_config_validates_parallelism():
    assert ELSIConfig(parallelism="thread").parallelism == "thread"
    with pytest.raises(ValueError, match="parallelism"):
        ELSIConfig(parallelism="gpu")
    with pytest.raises(ValueError, match="parallel_workers"):
        ELSIConfig(parallel_workers=0)


# ----------------------------------------------------------------------
# Backend-identical builds
# ----------------------------------------------------------------------
def _build(points, backend):
    config = ELSIConfig(train_epochs=60, parallelism=backend, parallel_workers=2)
    return ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=4
    ).build(points)


def _model_state(index):
    return [
        (m.err_l, m.err_u, [w.copy() for w in m.net.weights])
        for m in index.model.models
    ]


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_build_bit_identical_to_serial(osm_points, backend, monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    serial = _model_state(_build(osm_points, "serial"))
    other = _model_state(_build(osm_points, backend))
    assert len(serial) == len(other)
    for (el_a, eu_a, ws_a), (el_b, eu_b, ws_b) in zip(serial, other):
        assert el_a == el_b and eu_a == eu_b
        for wa, wb in zip(ws_a, ws_b):
            np.testing.assert_array_equal(wa, wb)


def test_fused_build_answers_queries(osm_points, monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    index = _build(osm_points, "fused")
    assert index.point_queries(osm_points[:300]).all()
    assert not index.point_queries(osm_points[:50] + 2.0).any()


# ----------------------------------------------------------------------
# Fused trainer
# ----------------------------------------------------------------------
def test_fused_training_close_to_serial():
    rng = np.random.default_rng(3)
    config = TrainConfig(epochs=120)
    xs = [np.sort(rng.random(200 + 30 * i)) for i in range(3)]
    ys = [np.linspace(0.0, 1.0, len(x)) for x in xs]

    fused_nets = [FFN([1, 16, 1], seed=i) for i in range(3)]
    assert can_fuse(fused_nets, config)
    result = train_regressors_fused(fused_nets, xs, ys, config)
    assert len(result.final_losses) == 3

    for i, (x, y) in enumerate(zip(xs, ys)):
        serial_net = FFN([1, 16, 1], seed=i)
        train_regressor(serial_net, x, y, config)
        np.testing.assert_allclose(
            fused_nets[i].predict(x), serial_net.predict(x), atol=1e-6
        )


def test_can_fuse_rejects_mixed_architectures():
    config = TrainConfig(epochs=10)
    assert not can_fuse([FFN([1, 16, 1])], config)
    assert not can_fuse([FFN([1, 16, 1]), FFN([1, 8, 1])], config)
    assert not can_fuse(
        [FFN([1, 16, 1]), FFN([1, 16, 1])], TrainConfig(epochs=10, batch_size=32)
    )
