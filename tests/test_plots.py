"""Tests for the terminal plotting helpers."""

import pytest

from repro.bench.plots import bar_chart, line_chart


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart(["ML", "ML-F"], [2.5, 0.1], title="build", unit="s")
        lines = text.splitlines()
        assert lines[0] == "build"
        assert "ML-F" in lines[2]
        assert "2.5s" in lines[1]

    def test_longest_bar_is_max(self):
        text = bar_chart(["a", "b"], [10.0, 5.0], width=20)
        a_line, b_line = text.splitlines()
        assert a_line.count("█") > b_line.count("█")

    def test_zero_values(self):
        text = bar_chart(["a"], [0.0])
        assert "0" in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            bar_chart([], [])


class TestLineChart:
    def test_basic_render(self):
        series = {
            "ML-F": [(0.0, 1.0), (0.5, 0.6), (1.0, 0.5)],
            "RR*": [(0.0, 0.8), (1.0, 0.8)],
        }
        text = line_chart(series, title="build vs lambda")
        assert "build vs lambda" in text
        assert "o ML-F" in text
        assert "x RR*" in text

    def test_log_scale(self):
        series = {"a": [(0.0, 1.0), (1.0, 1000.0)]}
        text = line_chart(series, log_y=True)
        assert "1e+03" in text or "1000" in text

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart({"a": [(0.0, 0.0)]}, log_y=True)

    def test_constant_series(self):
        text = line_chart({"flat": [(0.0, 5.0), (1.0, 5.0)]})
        assert "flat" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})
