"""Profile the batch-query kernels: where does the 1e6-point wall-clock go?

This is the flame-graph-driven methodology behind the kernel passes (see
docs/performance.md, "How to pick the next kernel"): build a 1e6-point ZM
index, drive the batch point- and window-query paths, and capture both

- a :class:`~repro.obs.flame.SamplingProfiler` folded profile
  (``<prefix>.sampling.folded``) — function-level hotspots, the view that
  showed scan refinement and ``searchsorted`` dominating after inference
  fusion, and
- when ``REPRO_TRACE`` is set, the span trace for ``repro obs flame``
  (``python -m repro obs flame <trace> --output flame.svg --folded ...``).

Run from the repo root:

    PYTHONPATH=src python benchmarks/profile_kernels.py --output-prefix flame_kernels

``REPRO_SCALE=smoke`` shrinks the data set for CI.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.bench.harness import ExperimentScale
from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import ZMIndex
from repro.obs.flame import SamplingProfiler, render_folded, top_paths
from repro.spatial.rect import Rect

#: Workload sizes: a serving-sized point batch and a window batch, repeated
#: until the profile has enough samples to be stable.
POINT_BATCH = 4096
WINDOW_BATCH = 256
PROFILE_SECONDS = 8.0


def _windows(points: np.ndarray, count: int, rng: np.random.Generator) -> list[Rect]:
    centers = points[rng.integers(0, len(points), size=count)]
    sides = rng.uniform(0.001, 0.01, size=count)
    return [Rect.centered(c, float(s)) for c, s in zip(centers, sides)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output-prefix", default="flame_kernels")
    parser.add_argument("--n", type=int, default=1_000_000)
    parser.add_argument("--dtype", default="float64", choices=("float64", "float32"))
    args = parser.parse_args()

    scale = ExperimentScale.from_env(default="default")
    n = scale.n if scale.name == "smoke" else args.n
    from repro.data import load_dataset

    points = load_dataset("OSM1", n)
    rng = np.random.default_rng(19)

    config = ELSIConfig(train_epochs=150, dtype=args.dtype)
    started = time.perf_counter()
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=128
    ).build(points)
    print(f"built ZM n={n} dtype={args.dtype} in {time.perf_counter() - started:.1f}s")

    batch = points[rng.integers(0, len(points), size=POINT_BATCH)]
    windows = _windows(points, WINDOW_BATCH, rng)
    # Warm up both paths so the profile sees steady-state kernels only.
    index.point_queries(batch[:64])
    index.window_queries(windows[:8])

    point_seconds = 0.0
    window_seconds = 0.0
    rounds = 0
    with SamplingProfiler(interval=0.002) as prof:
        deadline = time.perf_counter() + PROFILE_SECONDS
        while time.perf_counter() < deadline:
            t0 = time.perf_counter()
            index.point_queries(batch)
            t1 = time.perf_counter()
            index.window_queries(windows)
            t2 = time.perf_counter()
            point_seconds += t1 - t0
            window_seconds += t2 - t1
            rounds += 1

    folded = render_folded(prof.stacks())
    out = f"{args.output_prefix}.sampling.folded"
    with open(out, "w") as fh:
        fh.write(folded + "\n")
    print(
        f"{rounds} rounds: point_queries[{POINT_BATCH}] "
        f"{point_seconds / rounds * 1e3:.1f} ms/round, "
        f"window_queries[{WINDOW_BATCH}] {window_seconds / rounds * 1e3:.1f} ms/round"
    )
    print(f"wrote {out}")
    print(f"cpus={os.cpu_count()} dtype={args.dtype}")
    for path, seconds in top_paths(prof.stacks(), limit=12):
        leaf = path.split(";")[-1]
        print(f"  {seconds:7.3f}s  {leaf}  [{path[:110]}]")


if __name__ == "__main__":
    main()
