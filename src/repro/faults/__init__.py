"""Fault injection and chaos scenarios for the serving stack.

:mod:`repro.faults.registry` declares named injection sites across the
snapshot, WAL, rebuild, and dispatch paths and lets tests arm
exception/delay/torn-write faults against them deterministically;
:mod:`repro.faults.chaos` packages the kill-and-recover, torn-snapshot,
and rebuild-crash-retry scenarios the chaos harness and ``repro chaos``
CLI run.
"""

from repro.faults.registry import (
    ENV_FAULTS,
    FAULT_KINDS,
    FAULT_SITES,
    FaultRegistry,
    FaultSpec,
    InjectedFault,
    fault_check,
    get_fault_registry,
    parse_fault_spec,
)

__all__ = [
    "ENV_FAULTS",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultRegistry",
    "FaultSpec",
    "InjectedFault",
    "fault_check",
    "get_fault_registry",
    "parse_fault_spec",
]
