"""ML-Index (Davitkova et al., EDBT 2020): iDistance keys + learned CDF.

Map-and-sort: each point maps to ``j * c + dist(p, o_j)`` for its nearest
reference point ``o_j`` (the iDistance transform), and points are stored in
key order.  Predict-and-scan: an RMI predicts the storage address.

ML-Index answers window and kNN queries *exactly* (the paper: "By design,
ML offers accurate results"): a window is circumscribed by a ball, the
iDistance annulus filter yields one candidate key interval per reference
partition, and each interval is scanned with model-predicted, gallop-refined
boundaries.
"""

from __future__ import annotations

import time

import numpy as np

from repro.indices.base import LearnedSpatialIndex, ModelBuilder
from repro.indices.rmi import RMIModel
from repro.indices.zm import locate_rank
from repro.obs.query_obs import record_range_widths
from repro.obs.trace import span as _span
from repro.perf.batching import batch_point_membership, cast_boundaries, merge_ranges
from repro.spatial.idistance import IDistanceMapping
from repro.spatial.rect import Rect
from repro.storage.blocks import BlockStore

__all__ = ["MLIndex"]


class MLIndex(LearnedSpatialIndex):
    """The ML-Index learned spatial index.

    Parameters
    ----------
    n_references:
        Number of iDistance reference points (k-means centroids of the
        data, per the original design).
    branching:
        Stage-2 fan-out of the RMI (1 = a single model).
    """

    name = "ML"

    def __init__(
        self,
        builder: ModelBuilder | None = None,
        block_size: int = 100,
        n_references: int = 16,
        branching: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(builder, block_size)
        self.n_references = n_references
        self.branching = branching
        self.seed = seed
        self.mapping: IDistanceMapping | None = None
        self.store: BlockStore | None = None
        self.model: RMIModel | None = None
        #: Built-in insertions since the build ("extra data pages" in the
        #: paper); scan ranges widen by this count.
        self._native_inserts = 0

    # ------------------------------------------------------------------
    def map(self, points: np.ndarray) -> np.ndarray:
        """The base index's ``map()``: iDistance keys, in the key dtype.

        The cast happens here so build-time store keys and query-time probe
        keys are bit-identical for equal coordinates; error bounds are
        measured over the cast keys.
        """
        if self.mapping is None:
            raise RuntimeError("ML index is not built yet")
        return self.mapping.keys(points).astype(self.key_dtype, copy=False)

    def build(self, points: np.ndarray) -> "MLIndex":
        pts = self._prepare_points(points)
        started = time.perf_counter()
        self.bounds = Rect.bounding(pts)
        self.n_points = len(pts)
        self.mapping = IDistanceMapping.fit(
            pts, n_references=self.n_references, seed=self.seed
        )
        keys = self.map(pts)
        self.store = BlockStore(pts, keys, block_size=self.block_size)
        self.build_stats.prepare_seconds += time.perf_counter() - started

        self.model = RMIModel(self.builder, branching=self.branching)
        self.model.fit(
            self.store.keys, self.store.points, self.build_stats, map_fn=self.map
        )
        return self

    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> None:
        self._check_built()
        assert self.store is not None
        q = np.asarray(point, dtype=np.float64)
        key = float(self.map(q[None, :])[0])
        self.store.insert(q, key)
        self._native_inserts += 1
        self.n_points += 1

    def point_query(self, point: np.ndarray) -> bool:
        self._check_built()
        assert self.store is not None and self.model is not None
        q = np.asarray(point, dtype=np.float64)
        key = float(self.map(q[None, :])[0])
        lo, hi = self.model.search_range(key)
        # Clamp like the batch path: inserts near rank 0 would otherwise
        # push `lo` negative (harmless for scan, wrong for accounting).
        lo = max(lo - self._native_inserts, 0)
        hi += self._native_inserts
        pts, keys, _ids = self.store.scan(lo, hi)
        self.query_stats.queries += 1
        self.query_stats.model_invocations += 1
        self.query_stats.points_scanned += len(pts)
        # iDistance keys are floats; match on coordinates within the range.
        match = np.isclose(keys, key, rtol=0.0, atol=self.KEY_ATOL)
        return bool(np.any(match & np.all(pts == q, axis=1)))

    #: iDistance keys are floats; candidates match within this tolerance.
    KEY_ATOL = 1e-12

    def point_queries(self, points: np.ndarray) -> np.ndarray:
        """Vectorised batch lookup: one model forward pass for all keys and
        one fused gather per group of overlapping scan ranges."""
        self._check_built()
        assert self.store is not None and self.model is not None
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        with _span("query.point_batch", index=self.name, queries=len(pts)):
            with _span("query.model_predict", index=self.name, queries=len(pts)):
                keys = self.map(pts)
                lo, hi = self.model.search_ranges(keys)
            lo = np.maximum(lo - self._native_inserts, 0)
            hi = np.minimum(hi + self._native_inserts, len(self.store))
            record_range_widths(self.name, lo, hi)
            self.query_stats.queries += len(pts)
            self.query_stats.model_invocations += len(pts)
            self.query_stats.points_scanned += int(np.maximum(hi - lo, 0).sum())
            with _span("query.refine", index=self.name, queries=len(pts)):
                return batch_point_membership(
                    self.store, lo, hi, keys, pts, atol=self.KEY_ATOL
                )

    def _scan_key_interval(self, key_lo: float, key_hi: float) -> np.ndarray:
        """Scan all points whose *stored* key lies in the cast interval.

        Boundaries go through the key-dtype cast: for quantised key columns
        a raw float64 boundary could fall above a stored key whose true
        (pre-cast) value is inside the interval, so the monotone cast —
        which brackets a superset of the true candidates — is required for
        correctness, not just speed.  Downstream exact coordinate/distance
        filters remove the extras.
        """
        assert self.store is not None and self.model is not None
        key_lo = self.key_dtype.type(key_lo)
        key_hi = self.key_dtype.type(key_hi)
        lo = locate_rank(self.store.keys, key_lo, self.model.search_range(key_lo), "left")
        hi = locate_rank(self.store.keys, key_hi, self.model.search_range(key_hi), "right")
        pts, _keys, _ids = self.store.scan(lo, hi)
        self.query_stats.model_invocations += 2
        self.query_stats.points_scanned += len(pts)
        return pts

    def window_query(self, window: Rect) -> np.ndarray:
        self._check_built()
        assert self.mapping is not None
        self.query_stats.queries += 1
        center = window.center
        radius = float(np.linalg.norm(window.extents) / 2.0)
        results = []
        for key_lo, key_hi in self.mapping.annulus_keys(center, radius):
            pts = self._scan_key_interval(key_lo, key_hi)
            if len(pts):
                inside = pts[window.contains_points(pts)]
                if len(inside):
                    results.append(inside)
        if not results:
            d = window.ndim
            return np.empty((0, d))
        return np.vstack(results)

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        """Exact kNN by iDistance radius expansion.

        Grows the search radius until k candidates are found *and* the k-th
        candidate distance is within the certified radius, the original
        iDistance termination condition.
        """
        self._check_built()
        assert self.mapping is not None and self.bounds is not None
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        q = np.asarray(point, dtype=np.float64)
        self.query_stats.queries += 1
        volume = self.bounds.area()
        d = self.bounds.ndim
        density = self.n_points / volume if volume > 0 else self.n_points
        radius = 0.5 * (k / max(density, 1e-12)) ** (1.0 / d)
        max_radius = float(np.linalg.norm(self.bounds.extents)) + 1e-9
        while True:
            results = []
            for key_lo, key_hi in self.mapping.annulus_keys(q, radius):
                pts = self._scan_key_interval(key_lo, key_hi)
                if len(pts):
                    results.append(pts)
            if results:
                candidates = np.vstack(results)
                diff = candidates - q
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                within = dist <= radius
                if within.sum() >= k:
                    order = np.argsort(dist, kind="stable")
                    return candidates[order[:k]]
            if radius > max_radius:
                # Fewer than k points indexed: return everything, nearest first.
                if not results:
                    return np.empty((0, d))
                candidates = np.vstack(results)
                diff = candidates - q
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                order = np.argsort(dist, kind="stable")
                return candidates[order[: min(k, len(order))]]
            radius *= 2.0

    def knn_queries(self, points: np.ndarray, k: int) -> list[np.ndarray]:
        """Vectorised batch kNN: the iDistance annulus filter and radius
        doubling of :meth:`knn_query`, run for the whole batch at once.

        The per-query radius loop becomes one loop over expansion *rounds*
        shared by all still-active queries.  Each round locates every
        (query, partition) annulus interval in the sorted key array with
        two batched ``searchsorted`` calls (the same exact ranks the scalar
        path's model-hinted galloping search converges to), gathers all
        candidate rows in one flattened indexing pass, ranks them with a
        stable owner-major / distance-minor lexsort (matching the scalar
        path's stable ``argsort`` over partition-ordered candidates), and
        retires the queries that meet the scalar termination condition —
        at least k candidates within the certified radius, or the radius
        exceeding the space diameter.  Results are exactly what looping
        :meth:`knn_query` returns, ties included.
        """
        self._check_built()
        assert self.mapping is not None and self.store is not None
        assert self.bounds is not None
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        b = len(pts)
        if b == 0:
            return []
        self.query_stats.queries += b
        with _span("query.knn_batch", index=self.name, queries=b, k=k):
            return self._knn_idistance_batch(pts, k)

    def _knn_idistance_batch(self, pts: np.ndarray, k: int) -> list[np.ndarray]:
        assert self.mapping is not None and self.store is not None
        assert self.bounds is not None
        b = len(pts)
        d = self.bounds.ndim
        volume = self.bounds.area()
        density = self.n_points / volume if volume > 0 else self.n_points
        radius = np.full(b, 0.5 * (k / max(density, 1e-12)) ** (1.0 / d))
        max_radius = float(np.linalg.norm(self.bounds.extents)) + 1e-9
        refs = self.mapping.references
        m = len(refs)
        # Query-to-reference distances: computed once, reused every round.
        diff = pts[:, None, :] - refs[None, :, :]
        ref_dist = np.sqrt(np.einsum("bmd,bmd->bm", diff, diff))
        base = np.arange(m) * self.mapping.stretch
        store_keys = self.store.keys
        results: list[np.ndarray | None] = [None] * b
        active = np.arange(b)
        while len(active):
            a = len(active)
            r = radius[active][:, None]
            rd = ref_dist[active]
            key_lo = base[None, :] + np.maximum(0.0, rd - r)
            key_hi = base[None, :] + rd + r
            # Boundaries pass through the same monotone key-dtype cast as
            # the scalar path, so both search the identical (superset)
            # candidate runs over quantised key columns.
            lo = np.searchsorted(
                store_keys,
                cast_boundaries(key_lo.ravel(), store_keys.dtype),
                side="left",
            )
            hi = np.searchsorted(
                store_keys,
                cast_boundaries(key_hi.ravel(), store_keys.dtype),
                side="right",
            )
            counts = hi - lo
            # Scalar-path accounting: two boundary locations per annulus
            # interval, every candidate row charged once; block reads are
            # charged once per merged interval group, vectorised.
            self.query_stats.model_invocations += 2 * a * m
            self.query_stats.points_scanned += int(counts.sum())
            self.store.charge_block_reads(*merge_ranges(lo, hi))
            total = int(counts.sum())
            per_query = counts.reshape(a, m).sum(axis=1)
            if total:
                # Flatten all candidate runs, grouped per query in partition
                # order — the same candidate order the scalar path vstacks.
                offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
                rows = (
                    np.arange(total)
                    - np.repeat(offsets, counts)
                    + np.repeat(lo, counts)
                )
                owner = np.repeat(
                    np.repeat(np.arange(a), m), counts.reshape(a, m).ravel()
                )
                cand = self.store.points[rows]
                cdiff = cand - pts[active][owner]
                dist = np.sqrt(np.einsum("ij,ij->i", cdiff, cdiff))
                within = np.bincount(
                    owner, weights=(dist <= radius[active][owner]), minlength=a
                )
                order = np.lexsort((dist, owner))
                cand = cand[order]
            else:
                within = np.zeros(a)
            starts = np.concatenate(([0], np.cumsum(per_query)))
            still: list[int] = []
            for j, qi in enumerate(active):
                c = int(per_query[j])
                s0 = int(starts[j])
                if within[j] >= k:
                    results[qi] = cand[s0 : s0 + k].copy()
                elif radius[qi] > max_radius:
                    # Fewer than k reachable: return everything, nearest
                    # first (empty when nothing was gathered at all).
                    results[qi] = (
                        cand[s0 : s0 + min(k, c)].copy() if c else np.empty((0, d))
                    )
                else:
                    still.append(int(qi))
            if still:
                radius[still] *= 2.0
            active = np.array(still, dtype=np.int64)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def indexed_points(self) -> np.ndarray:
        """Every indexed point in storage (key) order."""
        self._check_built()
        assert self.store is not None
        return self.store.points

    # ------------------------------------------------------------------
    @property
    def error_width(self) -> int:
        """Worst-model ``err_l + err_u`` (Table I)."""
        self._check_built()
        assert self.model is not None
        return self.model.max_error_width
