"""Performance subsystem: parallel build execution and batch-query kernels.

ELSI's contribution is shrinking the training set behind each index model;
this package makes the surrounding *system* costs match — per-partition
model builds dispatch through a configurable :class:`MapExecutor`
(serial / thread / process / fused backends), batch point lookups run
through vectorised gather kernels instead of per-query Python loops, and
multi-model batch prediction runs through one stacked-parameter compute
path (:class:`FusedInferenceEngine`) instead of one FFN call per leaf.
"""

from repro.perf.executor import MapExecutor, resolve_executor
from repro.perf.fused_infer import (
    FusedInferenceEngine,
    fusion_rejection_reason,
    record_fusion_rejected,
    resolve_dtype,
)

__all__ = [
    "FusedInferenceEngine",
    "MapExecutor",
    "fusion_rejection_reason",
    "record_fusion_rejected",
    "resolve_dtype",
    "resolve_executor",
]
