"""Unit tests for the FFN training loop."""

import numpy as np
import pytest

from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig, train_regressor


def test_fits_linear_function():
    x = np.linspace(0, 1, 100)
    y = 2 * x - 1
    net = FFN([1, 16, 1], seed=0)
    result = train_regressor(net, x, y, TrainConfig(epochs=400))
    assert result.final_loss < 1e-3
    pred = net.predict(np.array([0.25, 0.75]))
    np.testing.assert_allclose(pred, [-0.5, 0.5], atol=0.1)


def test_result_metadata():
    x = np.linspace(0, 1, 20)
    net = FFN([1, 4, 1])
    result = train_regressor(net, x, x, TrainConfig(epochs=50, patience=1000))
    assert result.epochs_run == 50
    assert len(result.loss_history) == 50
    assert result.elapsed_seconds > 0


def test_early_stopping_on_plateau():
    # Constant targets from a zeroed network plateau instantly.
    x = np.linspace(0, 1, 20)
    y = np.zeros(20)
    net = FFN([1, 4, 1], seed=0)
    for w in net.weights:
        w[:] = 0.0
    result = train_regressor(net, x, y, TrainConfig(epochs=1000, patience=10))
    assert result.epochs_run <= 20


def test_minibatch_training():
    rng = np.random.default_rng(0)
    x = rng.random(200)
    y = 3 * x
    net = FFN([1, 16, 1], seed=0)
    result = train_regressor(net, x, y, TrainConfig(epochs=150, batch_size=32))
    assert result.final_loss < 0.05


def test_empty_data_rejected():
    with pytest.raises(ValueError):
        train_regressor(FFN([1, 2, 1]), np.empty(0), np.empty(0))


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        train_regressor(FFN([1, 2, 1]), np.zeros(3), np.zeros(4))


def test_training_cost_grows_with_set_size():
    """T(n) grows with n — the premise of ELSI's cost model (Section VI)."""
    small = np.linspace(0, 1, 50)
    large = np.linspace(0, 1, 5_000)
    config = TrainConfig(epochs=100, patience=1_000)
    r_small = train_regressor(FFN([1, 16, 1], seed=0), small, small, config)
    r_large = train_regressor(FFN([1, 16, 1], seed=0), large, large, config)
    assert r_large.elapsed_seconds > r_small.elapsed_seconds
