"""A configurable map-executor for embarrassingly parallel build jobs.

Per-partition model fits (RMI stage-2 leaves, Flood per-column models, the
ELSI error-bound measurement pass) are independent jobs today dispatched
from Python ``for`` loops.  :class:`MapExecutor` gives them one dispatch
point with interchangeable backends:

``serial``
    Plain in-process loop; the reference backend every other backend must
    reproduce bit-for-bit (job functions are pure, so dispatch order
    cannot change results).
``thread``
    A thread pool.  NumPy releases the GIL inside BLAS kernels, so
    training-heavy jobs overlap on multicore hosts.
``process``
    A process pool (fork-based on Linux).  Jobs and results must pickle;
    sidesteps the GIL entirely at the cost of serialisation.
``fused``
    Behaves like ``serial`` for generic :meth:`MapExecutor.map` calls, but
    signals batch-aware callers (``ModelBuilder.build_models``) to train
    all same-architecture models in one vectorised pass
    (:mod:`repro.perf.fused`) — the backend that pays off even on a single
    core, where thread/process parallelism cannot.

Results always come back in input order regardless of backend or chunking,
and chunked dispatch (``chunk_size``) amortises per-job overhead for large
fan-outs.

Backend selection: the ``REPRO_PARALLELISM`` environment variable
(``backend`` or ``backend:workers``, e.g. ``thread:4``) overrides
``ELSIConfig.parallelism``; see :func:`resolve_executor`.

Nested dispatch: a job running inside a pool worker must not open pools of
its own (a process-backed grid cell that builds an index would otherwise
fork ``workers``² processes).  Workers that dispatch further build work
wrap it in :func:`serial_nested`, which makes every ``resolve_executor``
call on that thread — including env-var overrides — resolve to the serial
backend until the context exits.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import trace as _trace

__all__ = [
    "BACKENDS",
    "ENV_VAR",
    "MapExecutor",
    "resolve_executor",
    "serial_nested",
]

ENV_VAR = "REPRO_PARALLELISM"
BACKENDS = ("serial", "thread", "process", "fused")
_SPEC_FORMS = "'backend' or 'backend:workers' (e.g. 'thread:4')"

T = TypeVar("T")
R = TypeVar("R")

_NESTED = threading.local()


@contextmanager
def serial_nested():
    """Force every :func:`resolve_executor` call on this thread to serial.

    Thread-local (and therefore process-local in fork workers), so wrapping
    a worker's body suppresses nested pool creation without touching other
    threads or the environment.  Re-entrant: the outermost exit restores
    normal resolution.
    """
    previous = getattr(_NESTED, "force_serial", False)
    _NESTED.force_serial = True
    try:
        yield
    finally:
        _NESTED.force_serial = previous


def _apply_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    """Module-level chunk worker so the process backend can pickle it."""
    return [fn(item) for item in chunk]


def _call_task(task: "tuple[Callable[..., R], tuple]") -> R:
    """Module-level task trampoline for :meth:`MapExecutor.submit_many`."""
    fn, args = task
    return fn(*args)


def _traced_thread_chunk(
    fn: Callable[[T], R],
    chunk: Sequence[T],
    parent_id: "str | None",
    trace_id: "str | None" = None,
) -> tuple[list[R], float]:
    """Thread-backend chunk with a ``perf.chunk`` span parented under the
    dispatching ``perf.map`` span; returns (results, busy seconds)."""
    tracer = _trace.get_tracer()
    started = time.perf_counter()
    with tracer.ambient(parent_id, trace_id=trace_id):
        with tracer.span("perf.chunk", jobs=len(chunk)):
            results = [fn(item) for item in chunk]
    return results, time.perf_counter() - started


def _traced_process_chunk(
    fn: Callable[[T], R], chunk: Sequence[T]
) -> tuple[list[R], float, list[dict]]:
    """Process-backend chunk: capture worker spans and ship them back as
    plain dicts (picklable) for the parent to adopt into its trace."""
    tracer = _trace.get_tracer()
    started = time.perf_counter()
    with tracer.capture() as captured:
        with tracer.span("perf.chunk", jobs=len(chunk)):
            results = [fn(item) for item in chunk]
    busy = time.perf_counter() - started
    return results, busy, [record.to_dict() for record in captured]


class MapExecutor:
    """Deterministic, order-stable ``map`` over independent jobs.

    Parameters
    ----------
    backend:
        One of :data:`BACKENDS`.
    max_workers:
        Pool size for thread/process backends (default ``os.cpu_count()``).
    chunk_size:
        Jobs per dispatched chunk; ``None`` picks ``ceil(len / (4 *
        workers))`` so each worker sees a few chunks (load balancing)
        without per-job dispatch overhead.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "MapExecutor":
        """Parse ``"backend"`` or ``"backend:workers"`` (e.g. ``thread:4``)."""
        text = spec.strip().lower()
        if not text:
            raise ValueError(
                f"empty parallelism spec; accepted forms are {_SPEC_FORMS} "
                f"with backend one of {BACKENDS}"
            )
        name, sep, workers = text.partition(":")
        if name not in BACKENDS:
            raise ValueError(
                f"unknown backend {name!r} in spec {spec!r}; accepted forms "
                f"are {_SPEC_FORMS} with backend one of {BACKENDS}"
            )
        max_workers = None
        if sep:
            try:
                max_workers = int(workers)
            except ValueError as exc:
                raise ValueError(
                    f"worker count in {spec!r} must be an integer; accepted "
                    f"forms are {_SPEC_FORMS}"
                ) from exc
            if max_workers < 1:
                raise ValueError(
                    f"worker count in {spec!r} must be a positive integer"
                )
        return cls(backend=name, max_workers=max_workers)

    @property
    def workers(self) -> int:
        """Effective pool size."""
        if self.backend in ("serial", "fused"):
            return 1
        return self.max_workers or os.cpu_count() or 1

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]`` with the configured backend.

        Results are returned in input order for every backend; a job that
        raises propagates its exception to the caller.
        """
        jobs = list(items)
        if not jobs:
            return []
        if _trace._TRACER._enabled:
            return self._map_traced(fn, jobs)
        if self.backend in ("serial", "fused") or len(jobs) == 1 or self.workers == 1:
            return [fn(item) for item in jobs]

        chunks = self._chunked(jobs)
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                chunk_results = list(
                    pool.map(lambda c: _apply_chunk(fn, c), chunks)
                )
        else:  # process
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                chunk_results = list(
                    pool.map(_apply_chunk, [fn] * len(chunks), chunks)
                )
        return [result for chunk in chunk_results for result in chunk]

    def submit_many(
        self, tasks: Iterable[tuple[Callable[..., R], tuple]]
    ) -> list[R]:
        """Run heterogeneous ``(fn, args)`` tasks; results in input order.

        The per-task functions may all differ (unlike :meth:`map`), which is
        what a grid of unlike measurement cells needs.  Backend semantics
        are identical to :meth:`map`: order-stable results, exceptions
        propagate, and the process backend requires every ``fn`` and its
        ``args`` to pickle.
        """
        return self.map(_call_task, [(fn, tuple(args)) for fn, args in tasks])

    def _map_traced(self, fn: Callable[[T], R], jobs: list[T]) -> list[R]:
        """The :meth:`map` dispatch wrapped in ``perf.map`` / ``perf.chunk``
        spans.  Thread chunks parent directly under the map span via the
        tracer's ambient mechanism; process chunks capture their spans in
        the worker and the parent adopts them afterwards.  Worker
        utilisation (busy time / (elapsed * workers)) lands as an attribute
        on the ``perf.map`` span."""
        tracer = _trace.get_tracer()
        inline = (
            self.backend in ("serial", "fused")
            or len(jobs) == 1
            or self.workers == 1
        )
        if inline:
            with tracer.span(
                "perf.map", backend=self.backend, jobs=len(jobs), chunks=1, workers=1
            ):
                return [fn(item) for item in jobs]

        chunks = self._chunked(jobs)
        with tracer.span(
            "perf.map",
            backend=self.backend,
            jobs=len(jobs),
            chunks=len(chunks),
            workers=self.workers,
        ) as map_span:
            elapsed_t0 = time.perf_counter()
            if self.backend == "thread":
                parent_id, trace_id = map_span.span_id, map_span.trace_id
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    outcomes = list(
                        pool.map(
                            lambda c: _traced_thread_chunk(
                                fn, c, parent_id, trace_id
                            ),
                            chunks,
                        )
                    )
                chunk_results = [results for results, _busy in outcomes]
                busy = sum(b for _results, b in outcomes)
            else:  # process
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    outcomes = list(
                        pool.map(_traced_process_chunk, [fn] * len(chunks), chunks)
                    )
                chunk_results = [results for results, _busy, _spans in outcomes]
                busy = sum(b for _results, b, _spans in outcomes)
                for _results, _busy, span_dicts in outcomes:
                    tracer.adopt(
                        span_dicts,
                        parent_id=map_span.span_id,
                        trace_id=map_span.trace_id,
                    )
            elapsed = time.perf_counter() - elapsed_t0
            if elapsed > 0:
                map_span.set(
                    utilisation=round(busy / (elapsed * self.workers), 4)
                )
        return [result for chunk in chunk_results for result in chunk]

    def _chunked(self, jobs: list[T]) -> list[list[T]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(jobs) // (4 * self.workers)))
        return [jobs[i : i + size] for i in range(0, len(jobs), size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MapExecutor(backend={self.backend!r}, max_workers={self.max_workers},"
            f" chunk_size={self.chunk_size})"
        )


def resolve_executor(
    executor: "MapExecutor | str | None" = None,
    *,
    default_workers: int | None = None,
) -> MapExecutor:
    """Resolve the executor to use, honouring the environment override.

    Precedence: ``REPRO_PARALLELISM`` environment variable (highest), then
    ``executor`` (a :class:`MapExecutor`, a backend spec string such as
    ``"thread:4"``, or ``None``), then the serial default.  This is how
    ``ELSIConfig.parallelism`` and the env override interact: the config
    value is passed as ``executor`` and loses to the env variable, so a
    deployment can force a backend without touching code.

    Inside a :func:`serial_nested` section (a pool worker that itself
    dispatches build work) every resolution — env override included —
    yields the serial backend, preventing nested pools.
    """
    if getattr(_NESTED, "force_serial", False):
        return MapExecutor(backend="serial")
    spec = os.environ.get(ENV_VAR)
    if spec:
        try:
            return MapExecutor.from_spec(spec)
        except ValueError as exc:
            raise ValueError(f"invalid {ENV_VAR}={spec!r}: {exc}") from exc
    if isinstance(executor, MapExecutor):
        return executor
    if isinstance(executor, str):
        parsed = MapExecutor.from_spec(executor)
        if parsed.max_workers is None and default_workers is not None:
            parsed.max_workers = default_workers
        return parsed
    return MapExecutor(backend="serial")
